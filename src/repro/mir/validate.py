"""Structural validation of MIR bodies.

Lowering bugs tend to manifest as dangling block targets, out-of-range
locals, or type-less places.  The validator catches these early so the
dataflow analyses can assume a well-formed CFG.  It is used by the test
suite on every lowered function of the corpus.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import LoweringError
from repro.mir.ir import (
    Aggregate,
    BasicBlock,
    BinaryOp,
    Body,
    CallTerminator,
    Constant,
    Goto,
    Operand,
    Place,
    Ref,
    Return,
    Rvalue,
    Statement,
    StatementKind,
    SwitchBool,
    UnaryOp,
    Unreachable,
    Use,
)


def validate_body(body: Body) -> List[str]:
    """Return a list of structural problems (empty when the body is valid)."""
    problems: List[str] = []
    num_blocks = len(body.blocks)
    num_locals = len(body.locals)

    if num_blocks == 0:
        return ["body has no basic blocks"]
    if num_locals == 0:
        problems.append("body has no locals (missing return place)")
    if body.arg_count >= num_locals:
        problems.append(
            f"arg_count {body.arg_count} inconsistent with {num_locals} locals"
        )

    def check_place(place: Place, context: str) -> None:
        if place.local < 0 or place.local >= num_locals:
            problems.append(f"{context}: place references unknown local _{place.local}")
            return
        if body.place_ty(place) is None:
            problems.append(
                f"{context}: projection {place.pretty(body)} does not match the local's type"
            )

    def check_operand(operand: Operand, context: str) -> None:
        place = operand.place()
        if place is not None:
            check_place(place, context)

    def check_rvalue(rvalue: Rvalue, context: str) -> None:
        if isinstance(rvalue, Use):
            check_operand(rvalue.operand, context)
        elif isinstance(rvalue, Ref):
            check_place(rvalue.referent, context)
        elif isinstance(rvalue, (BinaryOp, UnaryOp, Aggregate)):
            for operand in rvalue.operands():
                check_operand(operand, context)

    for block_idx, block in enumerate(body.blocks):
        for stmt_idx, stmt in enumerate(block.statements):
            context = f"bb{block_idx}[{stmt_idx}]"
            if stmt.kind is StatementKind.ASSIGN:
                if stmt.place is None or stmt.rvalue is None:
                    problems.append(f"{context}: assign statement missing place or rvalue")
                    continue
                check_place(stmt.place, context)
                check_rvalue(stmt.rvalue, context)

        terminator = block.terminator
        context = f"bb{block_idx}[terminator]"
        for successor in terminator.successors():
            if successor < 0 or successor >= num_blocks:
                problems.append(f"{context}: jump to unknown block bb{successor}")
        if isinstance(terminator, SwitchBool):
            check_operand(terminator.discr, context)
        elif isinstance(terminator, CallTerminator):
            for operand in terminator.args:
                check_operand(operand, context)
            check_place(terminator.destination, context)
        elif isinstance(terminator, Unreachable):
            problems.append(f"{context}: reachable block ends in 'unreachable'")

    if not any(isinstance(block.terminator, Return) for block in body.blocks):
        problems.append("body has no return block")

    return problems


def span_problems(body: Body) -> List[str]:
    """Flag instructions and locals that lost their source position.

    Lowering is expected to attach the nearest enclosing source span to
    every statement and terminator (and a definition span to every named
    local): a ``DUMMY_SPAN`` here means some span-precise query (the focus
    engine, slice rendering) will silently drop that instruction from its
    highlights.  Returns a list of problems, empty when span-clean.
    """
    problems: List[str] = []
    for local in body.locals:
        if local.name is not None and local.span.is_dummy():
            problems.append(f"local {local.name!r} (_{local.index}) has a dummy span")
    for block_idx, block in enumerate(body.blocks):
        for stmt_idx, stmt in enumerate(block.statements):
            if stmt.span.is_dummy():
                problems.append(
                    f"bb{block_idx}[{stmt_idx}]: {stmt.pretty(body)} has a dummy span"
                )
        terminator = block.terminator
        if getattr(terminator, "span", None) is None or terminator.span.is_dummy():
            problems.append(
                f"bb{block_idx}[terminator]: {terminator.pretty(body)} has a dummy span"
            )
    return problems


def validate_program(
    lowered, check_spans: bool = False, local_only: bool = False
) -> Dict[str, List[str]]:
    """Validate every lowered body of a program at once.

    Returns a mapping from function name to its problem list, containing only
    functions with problems (empty dict == fully valid).  With ``local_only``
    dependency-crate bodies are skipped — the shape the fuzzing oracle needs,
    since generated dependency crates are signature-only anyway.  The
    per-body semantics match :func:`validate_body` (+ :func:`span_problems`
    when ``check_spans`` is set).
    """
    problems: Dict[str, List[str]] = {}
    bodies = lowered.local_bodies() if local_only else list(lowered.bodies.values())
    for body in bodies:
        found = validate_body(body)
        if check_spans:
            found = found + span_problems(body)
        if found:
            problems[body.fn_name] = found
    return problems


def assert_valid(body: Body, check_spans: bool = False) -> None:
    """Raise :class:`LoweringError` when ``body`` is structurally invalid.

    With ``check_spans`` the span-fidelity pass runs too, so lowering
    regressions that drop source positions fail loudly instead of degrading
    focus results.
    """
    problems = validate_body(body)
    if check_spans:
        problems = problems + span_problems(body)
    if problems:
        summary = "; ".join(problems)
        raise LoweringError(f"invalid MIR for {body.fn_name!r}: {summary}")
