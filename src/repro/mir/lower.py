"""Lowering from the MiniRust AST to MIR.

The lowering mirrors rustc's HIR→MIR translation closely enough that the
information flow analysis sees the same shape of program as Flowistry does
(compare Figure 1 of the paper):

* expressions are flattened into temporaries ``_n``,
* ``if``/``while`` become ``switch`` terminators over boolean discriminants,
* function calls become block terminators with an explicit destination place
  and continuation block,
* field accesses through references insert explicit ``Deref`` projections
  (surface auto-deref is resolved here).

Logical ``&&``/``||`` are lowered as strict binary operations rather than as
short-circuiting branches; this is a sound over-approximation for information
flow (the result still depends on both operands) and keeps the CFG small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import LoweringError, Span
from repro.lang import ast
from repro.obs import stage as obs_stage
from repro.lang.typeck import CheckedProgram
from repro.lang.types import (
    BOOL,
    Mutability,
    RefType,
    StructType,
    TupleType,
    Type,
    U32,
    UNIT,
)
from repro.mir.ir import (
    Aggregate,
    AggregateKind,
    BasicBlock,
    BinaryOp,
    Body,
    CallTerminator,
    Constant,
    Copy,
    Goto,
    Local,
    Move,
    Operand,
    Place,
    Ref,
    Return,
    Rvalue,
    Statement,
    SwitchBool,
    Terminator,
    UnaryOp,
    Unreachable,
    Use,
    RETURN_LOCAL,
)


@dataclass
class LoweredProgram:
    """All lowered function bodies of a checked program."""

    checked: CheckedProgram
    bodies: Dict[str, Body] = field(default_factory=dict)

    def body(self, name: str) -> Optional[Body]:
        return self.bodies.get(name)

    def local_bodies(self) -> List[Body]:
        """Bodies of functions defined in the local crate."""
        local = self.checked.program.local_crate
        return [body for body in self.bodies.values() if body.crate == local]

    def bodies_in_crate(self, crate: str) -> List[Body]:
        return [body for body in self.bodies.values() if body.crate == crate]


class _LoopContext:
    """Targets for ``break``/``continue`` inside the innermost loop."""

    def __init__(self, break_target: int, continue_target: int):
        self.break_target = break_target
        self.continue_target = continue_target


class FunctionLowerer:
    """Lowers a single function body into a :class:`Body`."""

    def __init__(self, checked: CheckedProgram, decl: ast.FnDecl):
        if decl.body is None:
            raise LoweringError(f"cannot lower extern function {decl.name!r}", decl.span)
        self.checked = checked
        self.decl = decl
        self.registry = checked.registry
        self.locals: List[Local] = []
        self.blocks: List[BasicBlock] = []
        self.scopes: List[Dict[str, int]] = [{}]
        self.loop_stack: List[_LoopContext] = []
        self.current_block = 0
        self.return_block = 0

    # -- local and block management --------------------------------------------

    def _new_local(
        self,
        ty: Type,
        name: Optional[str] = None,
        is_arg: bool = False,
        mutable: bool = True,
        span: Span = None,
    ) -> int:
        index = len(self.locals)
        self.locals.append(
            Local(
                index=index,
                ty=ty,
                name=name,
                is_arg=is_arg,
                mutable=mutable,
                span=span or self.decl.span,
            )
        )
        return index

    def _new_block(self) -> int:
        self.blocks.append(BasicBlock())
        return len(self.blocks) - 1

    def _block(self, index: Optional[int] = None) -> BasicBlock:
        return self.blocks[self.current_block if index is None else index]

    def _emit(self, place: Place, rvalue: Rvalue, span: Span) -> None:
        self._block().statements.append(Statement.assign(place, rvalue, span))

    def _terminate(self, terminator: Terminator, block: Optional[int] = None) -> None:
        self._block(block).terminator = terminator

    def _switch_to(self, block: int) -> None:
        self.current_block = block

    # -- scope management ----------------------------------------------------------

    def _push_scope(self) -> None:
        self.scopes.append({})

    def _pop_scope(self) -> None:
        self.scopes.pop()

    def _declare(self, name: str, local: int) -> None:
        self.scopes[-1][name] = local

    def _lookup(self, name: str, span: Span) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise LoweringError(f"unbound variable {name!r} during lowering", span)

    # -- entry point -------------------------------------------------------------------

    def lower(self) -> Body:
        signature = self.checked.signatures[self.decl.name]
        ret_ty = self.registry.resolve(self.decl.ret_type)
        self._new_local(ret_ty, name=None, span=self.decl.span)

        for param in self.decl.params:
            index = self._new_local(
                self.registry.resolve(param.ty),
                name=param.name,
                is_arg=True,
                mutable=False,
                span=param.span,
            )
            self._declare(param.name, index)

        entry = self._new_block()
        self.return_block = self._new_block()
        assert self.decl.body is not None
        body_end = self.decl.body.span.end_point()
        self._terminate(Return(span=body_end), block=self.return_block)
        self._switch_to(entry)

        result = self._lower_block_expr(self.decl.body)
        if not isinstance(ret_ty, type(UNIT)) or result is not None:
            if result is not None:
                tail = self.decl.body.tail
                tail_span = tail.span if tail is not None else self.decl.body.span.end_point()
                self._emit(Place.from_local(RETURN_LOCAL), Use(result), tail_span)
        self._terminate(Goto(target=self.return_block, span=body_end))

        body = Body(
            fn_name=self.decl.name,
            locals=self.locals,
            arg_count=len(self.decl.params),
            blocks=self.blocks,
            signature=signature,
            crate=self.decl.crate or self.checked.fn_crates.get(self.decl.name, "main"),
            span=self.decl.span,
        )
        _prune_unreachable(body)
        return body

    # -- blocks ---------------------------------------------------------------------------

    def _lower_block_expr(self, block: ast.Block) -> Optional[Operand]:
        """Lower a block; return the operand holding its tail value (or None)."""
        self._push_scope()
        try:
            for stmt in block.stmts:
                self._lower_stmt(stmt)
            if block.tail is not None:
                return self._lower_to_operand(block.tail)
            return None
        finally:
            self._pop_scope()

    def _lower_block_into(self, block: ast.Block, dest: Place) -> None:
        """Lower a block whose value should be stored into ``dest``."""
        self._push_scope()
        try:
            for stmt in block.stmts:
                self._lower_stmt(stmt)
            if block.tail is not None:
                self._lower_into(dest, block.tail)
            else:
                self._emit(dest, Use(Constant(None, UNIT)), block.span)
        finally:
            self._pop_scope()

    # -- statements ------------------------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LetStmt):
            ty = stmt.declared_ty
            if ty is None and stmt.init is not None and stmt.init.ty is not None:
                ty = stmt.init.ty
            if ty is None:
                ty = UNIT
            name_span = stmt.name_span if not stmt.name_span.is_dummy() else stmt.span
            local = self._new_local(
                self.registry.resolve(ty),
                name=stmt.name,
                mutable=stmt.mutable,
                span=name_span,
            )
            if stmt.init is not None:
                self._lower_into(Place.from_local(local), stmt.init, span=stmt.span)
            self._declare(stmt.name, local)
            return

        if isinstance(stmt, ast.AssignStmt):
            place = self._lower_to_place(stmt.target)
            self._lower_into(place, stmt.value, span=stmt.span)
            return

        if isinstance(stmt, ast.ExprStmt):
            self._lower_to_operand(stmt.expr)
            return

        if isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
            return

        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._lower_into(Place.from_local(RETURN_LOCAL), stmt.value)
            self._terminate(Goto(target=self.return_block, span=stmt.span))
            # Anything after a return in the same surface block is dead code;
            # keep lowering it into a fresh (unreachable) block.
            self._switch_to(self._new_block())
            return

        if isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise LoweringError("'break' outside of a loop", stmt.span)
            self._terminate(Goto(target=self.loop_stack[-1].break_target, span=stmt.span))
            self._switch_to(self._new_block())
            return

        if isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise LoweringError("'continue' outside of a loop", stmt.span)
            self._terminate(Goto(target=self.loop_stack[-1].continue_target, span=stmt.span))
            self._switch_to(self._new_block())
            return

        raise LoweringError(f"unsupported statement {type(stmt).__name__}", stmt.span)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        cond_block = self._new_block()
        body_block = self._new_block()
        exit_block = self._new_block()

        self._terminate(Goto(target=cond_block, span=stmt.cond.span))
        self._switch_to(cond_block)
        cond_operand = self._lower_to_operand(stmt.cond)
        self._terminate(
            SwitchBool(
                discr=cond_operand,
                true_target=body_block,
                false_target=exit_block,
                span=stmt.cond.span,
            )
        )

        self._switch_to(body_block)
        self.loop_stack.append(_LoopContext(exit_block, cond_block))
        try:
            self._lower_block_expr(stmt.body)
        finally:
            self.loop_stack.pop()
        self._terminate(Goto(target=cond_block, span=stmt.body.span.end_point()))

        self._switch_to(exit_block)

    # -- expression lowering ---------------------------------------------------------------

    def _expr_ty(self, expr: ast.Expr) -> Type:
        if expr.ty is None:
            raise LoweringError(
                f"expression of kind {expr.kind.value} was not type checked", expr.span
            )
        return self.registry.resolve(expr.ty)

    def _temp(self, ty: Type, span: Span) -> Place:
        return Place.from_local(self._new_local(ty, span=span))

    def _operand_for_place(self, place: Place, ty: Type) -> Operand:
        if ty.is_copy():
            return Copy(place)
        return Move(place)

    def _lower_to_operand(self, expr: ast.Expr) -> Operand:
        """Lower ``expr`` and return an operand holding its value."""
        if isinstance(expr, ast.Literal):
            return Constant(expr.value, self._expr_ty(expr))
        if expr.is_place():
            place = self._lower_to_place(expr)
            return self._operand_for_place(place, self._expr_ty(expr))
        dest = self._temp(self._expr_ty(expr), expr.span)
        self._lower_into(dest, expr)
        return self._operand_for_place(dest, self._expr_ty(expr))

    def _lower_to_place(self, expr: ast.Expr) -> Place:
        """Lower a place expression to a MIR place (inserting auto-derefs)."""
        if isinstance(expr, ast.Var):
            return Place.from_local(self._lookup(expr.name, expr.span))
        if isinstance(expr, ast.Deref):
            base = self._lower_place_or_temp(expr.base)
            return base.project_deref()
        if isinstance(expr, ast.FieldAccess):
            base = self._lower_place_or_temp(expr.base)
            base_ty = self._expr_ty(expr.base)
            while isinstance(base_ty, RefType):
                base = base.project_deref()
                base_ty = base_ty.pointee
            index = expr.field_index
            if index is None:
                if isinstance(expr.fld, int):
                    index = expr.fld
                else:
                    raise LoweringError(
                        f"unresolved field {expr.fld!r} during lowering", expr.span
                    )
            return base.project_field(index)
        raise LoweringError(
            f"expression of kind {expr.kind.value} is not a place", expr.span
        )

    def _lower_place_or_temp(self, expr: ast.Expr) -> Place:
        """Lower an expression used as the base of a projection."""
        if expr.is_place():
            return self._lower_to_place(expr)
        dest = self._temp(self._expr_ty(expr), expr.span)
        self._lower_into(dest, expr)
        return dest

    def _lower_into(
        self, dest: Place, expr: ast.Expr, span: Optional[Span] = None
    ) -> None:
        """Lower ``expr`` so that its value ends up stored in ``dest``.

        ``span`` overrides the span of the final assignment into ``dest`` —
        used by ``let``/assignment statements so the defining write carries
        the whole statement's source range (the way rustc's MIR does),
        rather than just the initialiser expression's.  Sub-expression
        temporaries keep their own precise spans either way.
        """
        into_span = span if span is not None else expr.span
        if isinstance(expr, ast.Literal):
            self._emit(dest, Use(Constant(expr.value, self._expr_ty(expr))), into_span)
            return

        if expr.is_place():
            place = self._lower_to_place(expr)
            self._emit(
                dest, Use(self._operand_for_place(place, self._expr_ty(expr))), into_span
            )
            return

        if isinstance(expr, ast.Unary):
            operand = self._lower_to_operand(expr.operand)
            self._emit(dest, UnaryOp(expr.op, operand), into_span)
            return

        if isinstance(expr, ast.Binary):
            lhs = self._lower_to_operand(expr.lhs)
            rhs = self._lower_to_operand(expr.rhs)
            self._emit(dest, BinaryOp(expr.op, lhs, rhs), into_span)
            return

        if isinstance(expr, ast.Borrow):
            place = self._lower_to_place(expr.place)
            mutability = Mutability.MUT if expr.mutable else Mutability.SHARED
            self._emit(dest, Ref(mutability, place), into_span)
            return

        if isinstance(expr, ast.Call):
            args = [self._lower_to_operand(arg) for arg in expr.args]
            continuation = self._new_block()
            self._terminate(
                CallTerminator(
                    func=expr.func,
                    args=args,
                    destination=dest,
                    target=continuation,
                    span=into_span,
                )
            )
            self._switch_to(continuation)
            return

        if isinstance(expr, ast.TupleExpr):
            ops = tuple(self._lower_to_operand(element) for element in expr.elements)
            self._emit(dest, Aggregate(AggregateKind.TUPLE, ops), into_span)
            return

        if isinstance(expr, ast.StructLit):
            struct = self.registry.lookup(expr.struct_name)
            if struct is None:
                raise LoweringError(f"unknown struct {expr.struct_name!r}", expr.span)
            by_name = {name: value for name, value in expr.fields}
            ops = tuple(
                self._lower_to_operand(by_name[field_name])
                for field_name in struct.field_names()
            )
            self._emit(
                dest,
                Aggregate(AggregateKind.STRUCT, ops, struct_name=struct.name),
                into_span,
            )
            return

        if isinstance(expr, ast.If):
            self._lower_if(dest, expr)
            return

        if isinstance(expr, ast.BlockExpr):
            self._lower_block_into(expr.block, dest)
            return

        raise LoweringError(f"unsupported expression {type(expr).__name__}", expr.span)

    def _lower_if(self, dest: Place, expr: ast.If) -> None:
        cond = self._lower_to_operand(expr.cond)
        then_block = self._new_block()
        else_block = self._new_block()
        join_block = self._new_block()

        self._terminate(
            SwitchBool(
                discr=cond,
                true_target=then_block,
                false_target=else_block,
                span=expr.cond.span,
            )
        )

        self._switch_to(then_block)
        self._lower_block_into(expr.then_block, dest)
        self._terminate(Goto(target=join_block, span=expr.then_block.span.end_point()))

        self._switch_to(else_block)
        if expr.else_block is not None:
            self._lower_block_into(expr.else_block, dest)
            else_end = expr.else_block.span.end_point()
        else:
            self._emit(dest, Use(Constant(None, UNIT)), expr.span)
            else_end = expr.span.end_point()
        self._terminate(Goto(target=join_block, span=else_end))

        self._switch_to(join_block)


def _prune_unreachable(body: Body) -> None:
    """Remove blocks not reachable from the entry block and remap targets.

    Lowering `return`/`break` statements leaves behind empty unreachable
    blocks; removing them keeps the dominator and dataflow computations clean.
    """
    reachable: List[int] = []
    seen = {0}
    stack = [0]
    while stack:
        block = stack.pop()
        reachable.append(block)
        for successor in body.blocks[block].terminator.successors():
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    reachable.sort()
    remap = {old: new for new, old in enumerate(reachable)}

    new_blocks = [body.blocks[old] for old in reachable]
    for block in new_blocks:
        terminator = block.terminator
        if isinstance(terminator, Goto):
            terminator.target = remap[terminator.target]
        elif isinstance(terminator, SwitchBool):
            terminator.true_target = remap[terminator.true_target]
            terminator.false_target = remap[terminator.false_target]
        elif isinstance(terminator, CallTerminator):
            terminator.target = remap[terminator.target]
    body.blocks = new_blocks


def lower_function(checked: CheckedProgram, name: str) -> Body:
    """Lower a single named function of ``checked`` to MIR."""
    decl = checked.program.function(name)
    if decl is None:
        raise LoweringError(f"unknown function {name!r}")
    return FunctionLowerer(checked, decl).lower()


def lower_program(checked: CheckedProgram) -> LoweredProgram:
    """Lower every function with a body (in every crate) to MIR."""
    with obs_stage("mir_lower") as sp:
        lowered = LoweredProgram(checked=checked)
        for crate in checked.program.crates:
            for decl in crate.functions():
                if decl.body is None:
                    continue
                lowered.bodies[decl.name] = FunctionLowerer(checked, decl).lower()
        if sp is not None:
            sp.set(bodies=len(lowered.bodies))
        return lowered
