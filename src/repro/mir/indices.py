"""Per-body interning tables: dense integer indices for places and locations.

The reference implementation gets its speed from rustc-style indexed
collections (``IndexedDomain``/``IndexMatrix``): every domain object a
function body can name is assigned a small dense integer once, and all the
hot set operations of the dataflow analysis become bitwise arithmetic over
machine words instead of hashing and re-allocating ``frozenset`` objects.
This module is the interning layer of that substrate:

* :class:`PlaceDomain` interns :class:`~repro.mir.ir.Place` values.  It is
  **append-only and extensible**: the obvious places of a body (locals,
  written places, operand reads, borrow referents) are seeded up front, and
  anything discovered later — field projections of aggregates, deref
  expansions produced by the alias oracle, conflict-reachable sub-places —
  interns on demand.  Alongside the table it maintains, per place, bitmasks
  of its interned ancestors and descendants under the paper's prefix
  relation, so the conflict queries of Section 2.1 (``π1 ⊓ π2``) are a
  single mask test instead of a projection-path walk.
* :class:`LocationDomain` interns :class:`~repro.mir.ir.Location` values.
  Indices are assigned monotone in the (total) location order — synthetic
  per-argument tags (``block == -2``) first, then body locations in
  ``(block, statement)`` order — so iterating a bitset from the lowest bit
  upward yields locations already sorted, with no per-call ``sorted()``.
* :class:`BodyIndex` bundles both tables for one body and is what the
  indexed analysis stack (theta, transfer, focus, loans, cache) shares.

Both tables expose a stable :meth:`digest` so cache fingerprints can include
the interning table itself: two processes that intern the same body obtain
the same tables, and a summary serialised in index form is only ever decoded
against the table it was encoded with.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.mir.ir import (
    Aggregate,
    Body,
    CallTerminator,
    Location,
    Place,
    Ref,
    StatementKind,
    SwitchBool,
)


class PlaceDomain:
    """An append-only interning table of places with conflict bitmasks.

    ``index(place)`` is the only mutating operation: it assigns the next
    dense integer to an unseen place and incrementally updates the
    ancestor/descendant masks of every already-interned place (O(n) per
    intern, with n the handful of places a single body names).  Masks are
    therefore always exact, and the read/write-over-conflicts operations of
    the dependency context reduce to ``mask >> i & 1`` tests.
    """

    __slots__ = (
        "_places",
        "_index",
        "_ancestors",
        "_descendants",
        "_proj_len",
        "_by_local",
        "_field_proj",
        "_deref_proj",
        "_base_index",
    )

    def __init__(self, places: Iterable[Place] = ()):
        self._places: List[Place] = []
        self._index: Dict[Place, int] = {}
        # Masks over place indices; entry i includes bit i itself (the prefix
        # relation is reflexive).
        self._ancestors: List[int] = []
        self._descendants: List[int] = []
        self._proj_len: List[int] = []
        # Indices grouped by base local: only same-local places can be
        # prefix-related, so interning scans one bucket, not the table.
        self._by_local: Dict[int, List[int]] = {}
        # Memoised structural projections between interned places.
        self._field_proj: Dict[Tuple[int, int], int] = {}
        self._deref_proj: Dict[int, int] = {}
        self._base_index: Dict[int, int] = {}
        for place in places:
            self.index(place)

    def __len__(self) -> int:
        return len(self._places)

    def __iter__(self) -> Iterator[Place]:
        return iter(self._places)

    def __contains__(self, place: Place) -> bool:
        return place in self._index

    def get(self, place: Place) -> Optional[int]:
        """The index of ``place`` if already interned, else ``None``."""
        return self._index.get(place)

    def index(self, place: Place) -> int:
        """The dense index of ``place``, interning it on first sight."""
        idx = self._index.get(place)
        if idx is not None:
            return idx
        idx = len(self._places)
        bit = 1 << idx
        ancestors = bit
        descendants = bit
        bucket = self._by_local.setdefault(place.local, [])
        places = self._places
        for other_idx in bucket:
            other = places[other_idx]
            if other.is_prefix_of(place):
                ancestors |= 1 << other_idx
                self._descendants[other_idx] |= bit
            if place.is_prefix_of(other):
                descendants |= 1 << other_idx
                self._ancestors[other_idx] |= bit
        bucket.append(idx)
        self._index[place] = idx
        places.append(place)
        self._ancestors.append(ancestors)
        self._descendants.append(descendants)
        self._proj_len.append(len(place.projection))
        return idx

    def place_of(self, idx: int) -> Place:
        return self._places[idx]

    def places_of(self, indices: Iterable[int]) -> List[Place]:
        return [self._places[i] for i in indices]

    # -- structural projections --------------------------------------------------

    def base_index(self, local: int) -> int:
        """Index of the bare local's place, memoised (no Place allocation)."""
        idx = self._base_index.get(local)
        if idx is None:
            idx = self.index(Place(local, ()))
            self._base_index[local] = idx
        return idx

    def project_field_index(self, idx: int, field_index: int) -> int:
        """Index of ``place_of(idx).field(field_index)``, memoised."""
        key = (idx, field_index)
        out = self._field_proj.get(key)
        if out is None:
            out = self.index(self._places[idx].project_field(field_index))
            self._field_proj[key] = out
        return out

    def project_deref_index(self, idx: int) -> int:
        """Index of ``*place_of(idx)``, memoised."""
        out = self._deref_proj.get(idx)
        if out is None:
            out = self.index(self._places[idx].project_deref())
            self._deref_proj[idx] = out
        return out

    # -- conflict masks ----------------------------------------------------------

    def ancestors_mask(self, idx: int) -> int:
        """Interned places of which ``idx`` is a (non-strict) extension."""
        return self._ancestors[idx]

    def descendants_mask(self, idx: int) -> int:
        """Interned places extending ``idx`` (including ``idx`` itself)."""
        return self._descendants[idx]

    def conflicts_mask(self, idx: int) -> int:
        """Interned places conflicting with ``idx`` (Section 2.1's ``⊓``)."""
        return self._ancestors[idx] | self._descendants[idx]

    def projection_len(self, idx: int) -> int:
        """Projection-path length (nearest-ancestor tie-breaking)."""
        return self._proj_len[idx]

    # -- fingerprinting ----------------------------------------------------------

    def digest(self) -> str:
        """A stable digest of the table: index order is part of the content."""
        joined = "|".join(
            f"{p.local}:" + ",".join(e.pretty() for e in p.projection)
            for p in self._places
        )
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


class LocationDomain:
    """An interning table of locations with order-preserving indices.

    When locations are interned in ascending :class:`Location` order (the
    constructor from :func:`index_body` guarantees this: argument tags sort
    before real locations because their block is negative), index order *is*
    location order, and :meth:`locations_of` can walk a bitset from the
    lowest set bit upward to produce a sorted list with no ``sorted()``
    call.  Interning out of order afterwards is allowed — the table notices
    and falls back to sorting.
    """

    __slots__ = ("_locations", "_index", "_monotone", "arg_tag_mask")

    def __init__(self, locations: Iterable[Location] = ()):
        self._locations: List[Location] = []
        self._index: Dict[Location, int] = {}
        self._monotone = True
        # Bits of the synthetic per-argument tag locations (block == -2):
        # lets consumers strip or count seed tags without iterating.
        self.arg_tag_mask = 0
        for location in locations:
            self.index(location)

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[Location]:
        return iter(self._locations)

    def __contains__(self, location: Location) -> bool:
        return location in self._index

    def index(self, location: Location) -> int:
        """The dense index of ``location``, interning it on first sight."""
        idx = self._index.get(location)
        if idx is not None:
            return idx
        idx = len(self._locations)
        if idx and location < self._locations[-1]:
            self._monotone = False
        self._index[location] = idx
        self._locations.append(location)
        if location.block == ARG_BLOCK:
            self.arg_tag_mask |= 1 << idx
        return idx

    def get(self, location: Location) -> Optional[int]:
        return self._index.get(location)

    def location_of(self, idx: int) -> Location:
        return self._locations[idx]

    @property
    def is_monotone(self) -> bool:
        return self._monotone

    # -- bitset bridging ---------------------------------------------------------

    def mask(self, locations: Iterable[Location]) -> int:
        """The bitset with exactly the bits of ``locations`` set."""
        bits = 0
        for location in locations:
            bits |= 1 << self.index(location)
        return bits

    def locations_of(self, bits: int) -> List[Location]:
        """The locations of a bitset, in ascending location order."""
        out: List[Location] = []
        locations = self._locations
        while bits:
            lsb = bits & -bits
            out.append(locations[lsb.bit_length() - 1])
            bits ^= lsb
        if not self._monotone:
            out.sort()
        return out

    def frozenset_of(self, bits: int) -> frozenset:
        """The locations of a bitset as a frozenset (order-free boundary)."""
        out = set()
        locations = self._locations
        while bits:
            lsb = bits & -bits
            out.add(locations[lsb.bit_length() - 1])
            bits ^= lsb
        return frozenset(out)

    # -- fingerprinting ----------------------------------------------------------

    def digest(self) -> str:
        """A stable digest of the table: index order is part of the content."""
        joined = "|".join(f"{l.block}:{l.statement}" for l in self._locations)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


class BodyIndex:
    """The pair of interning tables the indexed analysis stack shares."""

    __slots__ = ("body", "places", "locations")

    def __init__(self, body: Body, places: PlaceDomain, locations: LocationDomain):
        self.body = body
        self.places = places
        self.locations = locations

    def digest(self) -> str:
        """Digest of both tables, included in cache fingerprints so index-form
        serialisations stay content-addressed."""
        return hashlib.sha256(
            f"{self.places.digest()}|{self.locations.digest()}".encode("utf-8")
        ).hexdigest()[:16]


# Synthetic block index tagging "argument i" pseudo-locations.  Kept equal to
# repro.core.theta.ARG_BLOCK (asserted there) without importing core from mir.
ARG_BLOCK = -2


def _seed_operand_places(domain: PlaceDomain, operand) -> None:
    place = operand.place()
    if place is not None:
        domain.index(place)


def index_body(
    body: Body,
    arg_seed_places: Sequence[Place] = (),
    seed_statements: bool = False,
) -> BodyIndex:
    """Build the interning tables for ``body``.

    Seeds the locals and the caller-provided ``arg_seed_places`` (the
    deref-reachable argument pointees the analysis driver tags at entry;
    computed by the caller so :mod:`mir` stays below :mod:`borrowck` in the
    layering).  The location table gets one argument tag per parameter, then
    every body location in order, so indices are monotone in location order.

    With ``seed_statements`` every place the body syntactically names —
    written places (with per-field projections of aggregate destinations),
    operand reads, borrow referents, call arguments and destinations — is
    interned eagerly as well; the cache's fingerprint index uses this to
    digest a body's canonical tables without analysing it.  The analysis
    itself leaves it off: both tables intern on demand (the transfer
    compiler touches every named place anyway, plus whatever the alias
    oracle conjures — deref expansions, conflict-reachable sub-places), so
    eager seeding would only duplicate work on the per-function hot path.
    """
    places = PlaceDomain()
    for local in body.locals:
        places.index(Place.from_local(local.index))
    for place in arg_seed_places:
        places.index(place)
    if seed_statements:
        for block in body.blocks:
            for stmt in block.statements:
                if stmt.kind is not StatementKind.ASSIGN:
                    continue
                assert stmt.place is not None and stmt.rvalue is not None
                places.index(stmt.place)
                rvalue = stmt.rvalue
                if isinstance(rvalue, Ref):
                    places.index(rvalue.referent)
                else:
                    for operand in rvalue.operands():
                        _seed_operand_places(places, operand)
                if isinstance(rvalue, Aggregate):
                    for field_index in range(len(rvalue.ops)):
                        places.index(stmt.place.project_field(field_index))
            terminator = block.terminator
            if isinstance(terminator, CallTerminator):
                places.index(terminator.destination)
                for arg in terminator.args:
                    _seed_operand_places(places, arg)
            elif isinstance(terminator, SwitchBool):
                _seed_operand_places(places, terminator.discr)

    locations = LocationDomain()
    for param_index in range(body.arg_count):
        locations.index(Location(ARG_BLOCK, param_index))
    for location in body.locations():
        locations.index(location)
    return BodyIndex(body, places, locations)
