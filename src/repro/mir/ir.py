"""MIR data types: places, rvalues, statements, terminators, and bodies.

The representation intentionally mirrors rustc's MIR as described in Section
4.1 of the paper and depicted in Figure 1:

* a **local** is a numbered slot (``_0`` is the return place, ``_1..=_n`` are
  the arguments, the rest are temporaries and user variables),
* a **place** is a local plus a projection path of field accesses and
  dereferences,
* **statements** assign rvalues to places,
* **terminators** end basic blocks: gotos, boolean switches, calls (calls are
  terminators exactly as in MIR, because the paper's transfer function for
  calls is tied to the call edge), and returns,
* a **location** is a (block, statement index) pair — these are the
  dependency labels ``ℓ`` the information flow analysis collects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import DUMMY_SPAN, Span
from repro.lang.ast import BinOp, FnSig, UnOp
from repro.lang.types import Mutability, Type


RETURN_LOCAL = 0


# ---------------------------------------------------------------------------
# Places
# ---------------------------------------------------------------------------


class ProjectionKind(Enum):
    """The two projection forms the analysis needs: fields and dereferences."""

    FIELD = "field"
    DEREF = "deref"


@dataclass(frozen=True)
class PlaceElem:
    """One step of a place's projection path."""

    kind: ProjectionKind
    index: int = 0  # field index; unused for derefs

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.kind, self.index)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @staticmethod
    def deref() -> "PlaceElem":
        return PlaceElem(ProjectionKind.DEREF)

    @staticmethod
    def fld(index: int) -> "PlaceElem":
        return PlaceElem(ProjectionKind.FIELD, index)

    def is_deref(self) -> bool:
        return self.kind is ProjectionKind.DEREF

    def pretty(self) -> str:
        return "*" if self.is_deref() else f".{self.index}"


@dataclass(frozen=True)
class Place:
    """A memory location: a local plus a projection path.

    ``Place(2, (Field(1),))`` is written ``_2.1`` and ``Place(3, (Deref,))``
    is written ``(*_3)``.  Places are hashable so they can key the dependency
    context Θ.
    """

    local: int
    projection: Tuple[PlaceElem, ...] = ()

    def __post_init__(self) -> None:
        # Places key the dependency context, the interning tables, and every
        # memo on the analysis hot path: compute the hash once.
        object.__setattr__(self, "_hash", hash((self.local, self.projection)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @staticmethod
    def from_local(local: int) -> "Place":
        return Place(local, ())

    def project_field(self, index: int) -> "Place":
        return Place(self.local, self.projection + (PlaceElem.fld(index),))

    def project_deref(self) -> "Place":
        return Place(self.local, self.projection + (PlaceElem.deref(),))

    def has_deref(self) -> bool:
        return any(elem.is_deref() for elem in self.projection)

    def is_local(self) -> bool:
        return not self.projection

    def base_local(self) -> "Place":
        return Place(self.local, ())

    def is_prefix_of(self, other: "Place") -> bool:
        """Whether ``self`` is a (non-strict) prefix of ``other``.

        Prefixes ignore the deref/field distinction only in the sense used by
        the conflict relation of Section 2.1: ``x`` is a prefix of ``x.0`` and
        of ``(*x)``.
        """
        if self.local != other.local:
            return False
        if len(self.projection) > len(other.projection):
            return False
        return other.projection[: len(self.projection)] == self.projection

    def conflicts_with(self, other: "Place") -> bool:
        """The conflict relation ``π1 ⊓ π2``: ancestor-or-descendant paths.

        Two places conflict when mutating one may change the value of the
        other — i.e. one's path is a prefix of the other's (Section 2.1).
        Siblings like ``x.0`` and ``x.1`` do not conflict.
        """
        return self.is_prefix_of(other) or other.is_prefix_of(self)

    def pretty(self, body: Optional["Body"] = None) -> str:
        name = f"_{self.local}"
        if body is not None:
            local = body.locals[self.local]
            if local.name:
                name = local.name
        out = name
        for elem in self.projection:
            if elem.is_deref():
                out = f"(*{out})"
            else:
                out = f"{out}.{elem.index}"
        return out

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.pretty()


# ---------------------------------------------------------------------------
# Operands and rvalues
# ---------------------------------------------------------------------------


class Operand:
    """Base class for operands: uses of places or constants."""

    def place(self) -> Optional[Place]:
        """The place read by this operand, if any."""
        return None

    def pretty(self, body: Optional["Body"] = None) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Copy(Operand):
    """Read a place, copying its value."""

    src: Place

    def place(self) -> Optional[Place]:
        return self.src

    def pretty(self, body: Optional["Body"] = None) -> str:
        return self.src.pretty(body)


@dataclass(frozen=True)
class Move(Operand):
    """Read a place, moving out of it (same dependencies as a copy)."""

    src: Place

    def place(self) -> Optional[Place]:
        return self.src

    def pretty(self, body: Optional["Body"] = None) -> str:
        return f"move {self.src.pretty(body)}"


@dataclass(frozen=True)
class Constant(Operand):
    """A literal constant."""

    value: Union[int, bool, None]
    ty: Optional[Type] = None

    def pretty(self, body: Optional["Body"] = None) -> str:
        if self.value is None:
            return "()"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


class Rvalue:
    """Base class for right-hand sides of assignments."""

    def operands(self) -> List[Operand]:
        return []

    def pretty(self, body: Optional["Body"] = None) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Use(Rvalue):
    """``place = operand``"""

    operand: Operand

    def operands(self) -> List[Operand]:
        return [self.operand]

    def pretty(self, body: Optional["Body"] = None) -> str:
        return self.operand.pretty(body)


@dataclass(frozen=True)
class Ref(Rvalue):
    """``place = &p`` or ``place = &mut p`` — a borrow of ``referent``."""

    mutability: Mutability
    referent: Place

    def operands(self) -> List[Operand]:
        return []

    def pretty(self, body: Optional["Body"] = None) -> str:
        m = "mut " if self.mutability is Mutability.MUT else ""
        return f"&{m}{self.referent.pretty(body)}"


@dataclass(frozen=True)
class BinaryOp(Rvalue):
    """``place = op(lhs, rhs)``"""

    op: BinOp
    lhs: Operand
    rhs: Operand

    def operands(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def pretty(self, body: Optional["Body"] = None) -> str:
        return f"{self.lhs.pretty(body)} {self.op.value} {self.rhs.pretty(body)}"


@dataclass(frozen=True)
class UnaryOp(Rvalue):
    """``place = op(operand)``"""

    op: UnOp
    operand: Operand

    def operands(self) -> List[Operand]:
        return [self.operand]

    def pretty(self, body: Optional["Body"] = None) -> str:
        return f"{self.op.value}{self.operand.pretty(body)}"


class AggregateKind(Enum):
    """What an aggregate rvalue builds."""

    TUPLE = "tuple"
    STRUCT = "struct"


@dataclass(frozen=True)
class Aggregate(Rvalue):
    """``place = (op0, op1, ...)`` or ``place = Struct { ... }``."""

    kind: AggregateKind
    ops: Tuple[Operand, ...]
    struct_name: Optional[str] = None

    def operands(self) -> List[Operand]:
        return list(self.ops)

    def pretty(self, body: Optional["Body"] = None) -> str:
        inner = ", ".join(op.pretty(body) for op in self.ops)
        if self.kind is AggregateKind.STRUCT and self.struct_name:
            return f"{self.struct_name} {{ {inner} }}"
        return f"({inner})"


# ---------------------------------------------------------------------------
# Statements and terminators
# ---------------------------------------------------------------------------


class StatementKind(Enum):
    ASSIGN = "assign"
    NOP = "nop"


@dataclass
class Statement:
    """A non-terminator MIR instruction."""

    kind: StatementKind
    place: Optional[Place] = None
    rvalue: Optional[Rvalue] = None
    span: Span = DUMMY_SPAN

    @staticmethod
    def assign(place: Place, rvalue: Rvalue, span: Span = DUMMY_SPAN) -> "Statement":
        return Statement(StatementKind.ASSIGN, place, rvalue, span)

    @staticmethod
    def nop(span: Span = DUMMY_SPAN) -> "Statement":
        return Statement(StatementKind.NOP, span=span)

    def pretty(self, body: Optional["Body"] = None) -> str:
        if self.kind is StatementKind.NOP:
            return "nop"
        assert self.place is not None and self.rvalue is not None
        return f"{self.place.pretty(body)} = {self.rvalue.pretty(body)}"


class Terminator:
    """Base class for block terminators.

    Every terminator carries a ``span`` (the nearest enclosing source
    construct) so that analysis results over terminator locations can be
    mapped back to character-precise source ranges, not just whole lines.
    """

    span: Span = DUMMY_SPAN

    def successors(self) -> List[int]:
        return []

    def pretty(self, body: Optional["Body"] = None) -> str:
        raise NotImplementedError


@dataclass
class Goto(Terminator):
    target: int = 0
    span: Span = DUMMY_SPAN

    def successors(self) -> List[int]:
        return [self.target]

    def pretty(self, body: Optional["Body"] = None) -> str:
        return f"goto -> bb{self.target}"


@dataclass
class SwitchBool(Terminator):
    """A two-way branch on a boolean operand (MIR's ``switchInt`` on bool)."""

    discr: Operand = None  # type: ignore[assignment]
    true_target: int = 0
    false_target: int = 0
    span: Span = DUMMY_SPAN

    def successors(self) -> List[int]:
        return [self.true_target, self.false_target]

    def pretty(self, body: Optional["Body"] = None) -> str:
        return (
            f"switch {self.discr.pretty(body)} -> "
            f"[true: bb{self.true_target}, false: bb{self.false_target}]"
        )


@dataclass
class CallTerminator(Terminator):
    """A function call: ``dest = func(args) -> bb_target``."""

    func: str = ""
    args: List[Operand] = field(default_factory=list)
    destination: Place = None  # type: ignore[assignment]
    target: int = 0
    span: Span = DUMMY_SPAN

    def successors(self) -> List[int]:
        return [self.target]

    def pretty(self, body: Optional["Body"] = None) -> str:
        args = ", ".join(a.pretty(body) for a in self.args)
        return (
            f"{self.destination.pretty(body)} = {self.func}({args}) -> bb{self.target}"
        )


@dataclass
class Return(Terminator):
    span: Span = DUMMY_SPAN

    def successors(self) -> List[int]:
        return []

    def pretty(self, body: Optional["Body"] = None) -> str:
        return "return"


@dataclass
class Unreachable(Terminator):
    span: Span = DUMMY_SPAN

    def successors(self) -> List[int]:
        return []

    def pretty(self, body: Optional["Body"] = None) -> str:
        return "unreachable"


# ---------------------------------------------------------------------------
# Blocks, locals, bodies
# ---------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A basic block: straight-line statements ending in a terminator."""

    statements: List[Statement] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Unreachable)

    def num_locations(self) -> int:
        """Statement slots plus one slot for the terminator."""
        return len(self.statements) + 1


@dataclass
class Local:
    """A declared local slot with its type and optional user-facing name."""

    index: int
    ty: Type
    name: Optional[str] = None
    is_arg: bool = False
    mutable: bool = True
    span: Span = DUMMY_SPAN

    def pretty(self) -> str:
        label = self.name if self.name else f"_{self.index}"
        return f"{label}: {self.ty.pretty()}"


@dataclass(frozen=True, order=True)
class Location:
    """A point in the CFG: block index plus statement index.

    The statement index ``len(block.statements)`` denotes the terminator.
    Locations are the dependency labels collected by the analysis: they are
    hashed millions of times per fixpoint (as Θ set elements and interning
    keys), so the hash is computed once at construction.  The generated
    ordering (``(block, statement)`` lexicographic) is total, which lets the
    interning tables of :mod:`repro.mir.indices` assign indices monotone in
    location order and iterate bitsets deterministically without sorting.
    """

    block: int
    statement: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.block, self.statement)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def pretty(self) -> str:
        return f"bb{self.block}[{self.statement}]"

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.pretty()


@dataclass
class Body:
    """A lowered function body.

    ``locals[0]`` is the return place, ``locals[1..=arg_count]`` are the
    arguments, in declaration order, and the rest are user variables and
    compiler temporaries.
    """

    fn_name: str
    locals: List[Local]
    arg_count: int
    blocks: List[BasicBlock]
    signature: FnSig
    crate: str = "main"
    span: Span = DUMMY_SPAN

    # -- structure accessors --------------------------------------------------

    @property
    def return_place(self) -> Place:
        return Place.from_local(RETURN_LOCAL)

    def arg_locals(self) -> List[Local]:
        return self.locals[1 : 1 + self.arg_count]

    def arg_places(self) -> List[Place]:
        return [Place.from_local(local.index) for local in self.arg_locals()]

    def local_ty(self, index: int) -> Type:
        return self.locals[index].ty

    def user_locals(self) -> List[Local]:
        """Locals with a source-level name (arguments and ``let`` bindings)."""
        return [local for local in self.locals if local.name is not None]

    def local_by_name(self, name: str) -> Optional[Local]:
        for local in self.locals:
            if local.name == name:
                return local
        return None

    def num_instructions(self) -> int:
        """Total number of locations (statements + terminators)."""
        return sum(block.num_locations() for block in self.blocks)

    # -- location helpers --------------------------------------------------------

    def locations(self) -> Iterator[Location]:
        """Iterate every location in the body in (block, statement) order."""
        for block_idx, block in enumerate(self.blocks):
            for stmt_idx in range(block.num_locations()):
                yield Location(block_idx, stmt_idx)

    def statement_at(self, loc: Location) -> Optional[Statement]:
        block = self.blocks[loc.block]
        if loc.statement < len(block.statements):
            return block.statements[loc.statement]
        return None

    def terminator_location(self, block: int) -> Location:
        return Location(block, len(self.blocks[block].statements))

    def instruction_at(self, loc: Location) -> Union[Statement, Terminator]:
        block = self.blocks[loc.block]
        if loc.statement < len(block.statements):
            return block.statements[loc.statement]
        return block.terminator

    # -- CFG edges -----------------------------------------------------------------

    def successors(self, block: int) -> List[int]:
        return self.blocks[block].terminator.successors()

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {i: [] for i in range(len(self.blocks))}
        for index, block in enumerate(self.blocks):
            for successor in block.terminator.successors():
                preds[successor].append(index)
        return preds

    def return_blocks(self) -> List[int]:
        return [
            index
            for index, block in enumerate(self.blocks)
            if isinstance(block.terminator, Return)
        ]

    def place_ty(self, place: Place) -> Optional[Type]:
        """Compute the type of a place by walking its projections."""
        from repro.lang.types import RefType, projection_type

        ty: Optional[Type] = self.locals[place.local].ty
        for elem in place.projection:
            if ty is None:
                return None
            if elem.is_deref():
                if isinstance(ty, RefType):
                    ty = ty.pointee
                else:
                    return None
            else:
                ty = projection_type(ty, elem.index)
        return ty
