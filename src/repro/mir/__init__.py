"""MIR: the control-flow-graph intermediate representation.

Section 4.1 of the paper explains that Flowistry operates not on surface Rust
but on rustc's MIR — a CFG of basic blocks whose instructions assign to
*places* (a local plus a path of field/deref projections) and whose
terminators express branches, calls, and returns.  This package provides the
equivalent substrate for MiniRust:

* :mod:`repro.mir.ir` — the IR data types (places, rvalues, statements,
  terminators, bodies),
* :mod:`repro.mir.lower` — AST → MIR lowering,
* :mod:`repro.mir.pretty` — a printer that matches Figure 1's notation,
* :mod:`repro.mir.validate` — structural well-formedness checks,
* :mod:`repro.mir.callgraph` — the call graph used by the whole-program
  analysis and the evaluation harness.
"""

from repro.mir.ir import (
    Aggregate,
    AggregateKind,
    BasicBlock,
    BinaryOp,
    Body,
    CallTerminator,
    Constant,
    Copy,
    Goto,
    Local,
    Location,
    Move,
    Operand,
    Place,
    PlaceElem,
    ProjectionKind,
    Ref,
    Return,
    Rvalue,
    Statement,
    StatementKind,
    SwitchBool,
    Terminator,
    UnaryOp,
    Unreachable,
    Use,
    RETURN_LOCAL,
)
from repro.mir.lower import lower_function, lower_program, LoweredProgram
from repro.mir.pretty import pretty_body, pretty_place
from repro.mir.validate import validate_body
from repro.mir.callgraph import CallGraph, build_call_graph

__all__ = [
    "Aggregate",
    "AggregateKind",
    "BasicBlock",
    "BinaryOp",
    "Body",
    "CallGraph",
    "CallTerminator",
    "Constant",
    "Copy",
    "Goto",
    "Local",
    "Location",
    "LoweredProgram",
    "Move",
    "Operand",
    "Place",
    "PlaceElem",
    "ProjectionKind",
    "RETURN_LOCAL",
    "Ref",
    "Return",
    "Rvalue",
    "Statement",
    "StatementKind",
    "SwitchBool",
    "Terminator",
    "UnaryOp",
    "Unreachable",
    "Use",
    "build_call_graph",
    "lower_function",
    "lower_program",
    "pretty_body",
    "pretty_place",
    "validate_body",
]
