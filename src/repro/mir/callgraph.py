"""Call graph construction over lowered MIR bodies.

The whole-program analysis variant (Section 5's ``Whole-program`` condition)
recurses into callee definitions; the call graph provides the reachability
and cycle information needed to bound that recursion.  The evaluation harness
also uses it to build the deep-call-graph performance workload (the
``GameEngine::render`` style case from Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.mir.ir import Body, CallTerminator
from repro.mir.lower import LoweredProgram


@dataclass
class CallGraph:
    """A directed graph of function names with call-site multiplicity."""

    edges: Dict[str, List[str]] = field(default_factory=dict)
    nodes: Set[str] = field(default_factory=set)

    def add_node(self, name: str) -> None:
        self.nodes.add(name)
        self.edges.setdefault(name, [])

    def add_edge(self, caller: str, callee: str) -> None:
        self.add_node(caller)
        self.nodes.add(callee)
        self.edges[caller].append(callee)

    def callees(self, name: str) -> List[str]:
        return self.edges.get(name, [])

    def unique_callees(self, name: str) -> List[str]:
        return sorted(set(self.callees(name)))

    def callers(self, name: str) -> List[str]:
        return sorted(
            caller for caller, callees in self.edges.items() if name in callees
        )

    def reverse_edges(self) -> Dict[str, Set[str]]:
        """Callee → set of direct callers, built in one pass.

        The incremental service walks this map to find the functions whose
        whole-program results an edit can invalidate; building it once avoids
        the O(nodes × edges) cost of repeated :meth:`callers` queries.
        """
        reverse: Dict[str, Set[str]] = {name: set() for name in self.nodes}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        return reverse

    def transitive_callers(self, name: str) -> Set[str]:
        """All functions from which ``name`` is transitively reachable
        (excluding ``name`` itself unless it calls itself through a cycle)."""
        reverse = self.reverse_edges()
        seen: Set[str] = set()
        stack = list(reverse.get(name, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(reverse.get(current, ()))
        return seen

    def reachable_from(self, name: str) -> Set[str]:
        """All functions transitively reachable from ``name`` (including it)."""
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, []))
        return seen

    def transitive_call_count(self, name: str) -> int:
        """Number of distinct functions reachable from ``name`` (excluding it)."""
        return len(self.reachable_from(name)) - 1

    def in_cycle(self, name: str) -> bool:
        """Whether ``name`` participates in a call cycle (including self-recursion)."""
        for callee in self.edges.get(name, []):
            if callee == name:
                return True
            if name in self.reachable_from(callee):
                return True
        return False

    def topological_order(self) -> List[str]:
        """Callees-before-callers order; cycles are broken arbitrarily."""
        visited: Dict[str, int] = {}
        order: List[str] = []

        def visit(node: str) -> None:
            state = visited.get(node, 0)
            if state != 0:
                return
            visited[node] = 1
            for callee in self.edges.get(node, []):
                visit(callee)
            visited[node] = 2
            order.append(node)

        for node in sorted(self.nodes):
            visit(node)
        return order


def calls_in_body(body: Body) -> List[str]:
    """Names of functions called (syntactically) in ``body``."""
    return [
        block.terminator.func
        for block in body.blocks
        if isinstance(block.terminator, CallTerminator)
    ]


def build_call_graph(lowered: LoweredProgram) -> CallGraph:
    """Build the call graph over all lowered bodies.

    Extern functions appear as leaf nodes: they are part of the graph (so the
    evaluation can count crate-boundary crossings) but have no outgoing edges.
    """
    graph = CallGraph()
    for body in lowered.bodies.values():
        graph.add_node(body.fn_name)
        for callee in calls_in_body(body):
            graph.add_edge(body.fn_name, callee)
    return graph
