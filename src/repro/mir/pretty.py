"""Pretty printing of MIR bodies in the style of the paper's Figure 1."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mir.ir import Body, Place, Location


def pretty_place(place: Place, body: Optional[Body] = None) -> str:
    """Render a place using user-facing local names when available."""
    return place.pretty(body)


def pretty_body(body: Body, annotations: Optional[Dict[Location, str]] = None) -> str:
    """Render a whole body as text.

    ``annotations`` optionally maps locations to extra text printed beside the
    instruction — the evaluation and examples use this to show each
    instruction's dependency set, replicating the right-hand side of Figure 1.
    """
    lines: List[str] = []
    signature = body.signature.pretty() if body.signature else f"fn {body.fn_name}(...)"
    lines.append(f"// crate: {body.crate}")
    lines.append(signature + " {")

    for local in body.locals:
        role: str
        if local.index == 0:
            role = "return place"
        elif local.is_arg:
            role = "argument"
        elif local.name:
            role = "user variable"
        else:
            role = "temporary"
        lines.append(f"    let _{local.index}: {local.ty.pretty()};  // {role}"
                     + (f" `{local.name}`" if local.name else ""))

    for block_idx, block in enumerate(body.blocks):
        lines.append("")
        lines.append(f"    bb{block_idx}:")
        for stmt_idx, stmt in enumerate(block.statements):
            location = Location(block_idx, stmt_idx)
            suffix = ""
            if annotations and location in annotations:
                suffix = f"    // {annotations[location]}"
            lines.append(f"        {stmt.pretty(body)};{suffix}")
        term_location = Location(block_idx, len(block.statements))
        suffix = ""
        if annotations and term_location in annotations:
            suffix = f"    // {annotations[term_location]}"
        lines.append(f"        {block.terminator.pretty(body)};{suffix}")

    lines.append("}")
    return "\n".join(lines)


def pretty_location(body: Body, location: Location) -> str:
    """Render a single instruction at ``location``."""
    instruction = body.instruction_at(location)
    return f"{location.pretty()}: {instruction.pretty(body)}"
