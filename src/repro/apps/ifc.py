"""An information flow control (IFC) checker built on the analysis.

Reproduces the Figure 5b prototype.  In the paper, a library exposes
``Secure`` and ``Insecure`` traits; a compiler plugin then reports any flow
from a value whose type implements ``Secure`` into an operation marked
``Insecure``.  MiniRust has no traits, so the policy is expressed directly:

* *sources* are variables or struct types labelled ``SECRET``,
* *sinks* are functions labelled ``INSECURE`` (for example an
  ``insecure_print`` extern).

A violation is reported when any argument of a sink call — or the decision to
execute the sink call at all (an implicit flow through control dependence,
exactly the case in Figure 5b where the print is guarded by a password
comparison) — depends on a source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.analysis import FunctionFlowResult
from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.core.theta import is_arg_location
from repro.mir.ir import Body, CallTerminator, Location, Place
from repro.lang.types import RefType, StructType, Type


class SecurityLabel(Enum):
    """The two-point lattice used by the checker."""

    PUBLIC = "public"
    SECRET = "secret"


@dataclass
class IfcPolicy:
    """What counts as secret data and as an insecure operation.

    ``secret_types``: struct names whose values are secret (the paper's
    ``Secure`` trait impls, e.g. ``Password``).
    ``secret_variables``: ``(function, variable)`` pairs or ``("*", name)``
    wildcards marking specific locals as secret.
    ``insecure_functions``: names of sink functions (the paper's
    ``Insecure`` operations, e.g. ``insecure_print``).
    ``declassified_functions``: calls through which flows are permitted
    (an escape hatch, like ``declassify`` in classic IFC systems).
    """

    secret_types: Set[str] = field(default_factory=set)
    secret_variables: Set[Tuple[str, str]] = field(default_factory=set)
    insecure_functions: Set[str] = field(default_factory=set)
    declassified_functions: Set[str] = field(default_factory=set)

    def mark_type_secret(self, type_name: str) -> "IfcPolicy":
        self.secret_types.add(type_name)
        return self

    def mark_variable_secret(self, fn_name: str, variable: str) -> "IfcPolicy":
        self.secret_variables.add((fn_name, variable))
        return self

    def mark_function_insecure(self, fn_name: str) -> "IfcPolicy":
        self.insecure_functions.add(fn_name)
        return self

    def is_variable_secret(self, fn_name: str, variable: str) -> bool:
        return (fn_name, variable) in self.secret_variables or ("*", variable) in self.secret_variables

    def type_is_secret(self, ty: Optional[Type]) -> bool:
        if ty is None:
            return False
        for component in ty.walk():
            if isinstance(component, StructType) and component.name in self.secret_types:
                return True
            if isinstance(component, RefType) and self.type_is_secret(component.pointee):
                return True
        return False


@dataclass(frozen=True)
class IfcViolation:
    """One flow from secret data into an insecure operation."""

    fn_name: str
    sink_function: str
    sink_location: Location
    source_description: str
    via_control_flow: bool
    line: int = 0

    def render(self) -> str:
        kind = "implicit (control) flow" if self.via_control_flow else "explicit data flow"
        where = f" at line {self.line}" if self.line else ""
        return (
            f"[{self.fn_name}] {kind} from {self.source_description} "
            f"into insecure operation `{self.sink_function}`{where}"
        )


class IfcChecker:
    """Checks every function of a program against an :class:`IfcPolicy`."""

    def __init__(
        self,
        source: str,
        policy: IfcPolicy,
        config: Optional[AnalysisConfig] = None,
        engine: Optional[FlowEngine] = None,
    ):
        self.policy = policy
        # A caller that already holds a checked+lowered program (the analysis
        # service's session) passes its engine; otherwise the checker runs
        # the front end itself.
        self.engine = engine if engine is not None else FlowEngine.from_source(source, config=config)

    # -- secret seeds ---------------------------------------------------------------

    def _secret_places(self, result: FunctionFlowResult) -> Dict[Place, str]:
        """Places of the analysed function that hold secret data, with labels."""
        body = result.body
        fn_name = body.fn_name
        secrets: Dict[Place, str] = {}
        for local in body.locals:
            place = Place.from_local(local.index)
            if local.name and self.policy.is_variable_secret(fn_name, local.name):
                secrets[place] = f"variable `{local.name}`"
            elif self.policy.type_is_secret(local.ty):
                label = local.name or f"_{local.index}"
                secrets[place] = f"value `{label}` of secret type {local.ty.pretty()}"
        return secrets

    def _secret_locations(
        self, result: FunctionFlowResult, secrets: Dict[Place, str]
    ) -> Dict[Location, str]:
        """Locations whose results are secret: writes to secret places plus
        the argument tags of secret parameters."""
        out: Dict[Location, str] = {}
        body = result.body
        for location in body.locations():
            instruction = body.instruction_at(location)
            written = getattr(instruction, "place", None)
            if written is None and isinstance(instruction, CallTerminator):
                written = instruction.destination
            if written is None:
                continue
            for secret_place, description in secrets.items():
                if written.conflicts_with(secret_place):
                    out[location] = description
                    break
        from repro.core.theta import arg_location

        for param_index, local in enumerate(body.arg_locals()):
            place = Place.from_local(local.index)
            if place in secrets:
                out[arg_location(param_index)] = secrets[place]
        return out

    # -- checking ----------------------------------------------------------------------

    def check_function(self, fn_name: str) -> List[IfcViolation]:
        result = self.engine.analyze_function(fn_name)
        body = result.body
        secrets = self._secret_places(result)
        if not secrets:
            has_sink = any(
                isinstance(block.terminator, CallTerminator)
                and block.terminator.func in self.policy.insecure_functions
                for block in body.blocks
            )
            if not has_sink:
                return []
        secret_locations = self._secret_locations(result, secrets)

        violations: List[IfcViolation] = []
        for block_index, block in enumerate(body.blocks):
            terminator = block.terminator
            if not isinstance(terminator, CallTerminator):
                continue
            if terminator.func not in self.policy.insecure_functions:
                continue
            if terminator.func in self.policy.declassified_functions:
                continue
            call_location = body.terminator_location(block_index)
            theta = result.theta_at(call_location)

            # Explicit flows: any argument's dependencies intersect a secret.
            explicit_source = None
            for arg in terminator.args:
                arg_deps = result.transfer.deps_of_operand(theta, arg)
                for dep in arg_deps:
                    if dep in secret_locations:
                        explicit_source = secret_locations[dep]
                        break
                place = arg.place()
                if explicit_source is None and place is not None:
                    for secret_place, description in secrets.items():
                        if place.conflicts_with(secret_place):
                            explicit_source = description
                            break
                if explicit_source:
                    break

            # Implicit flows: the call is control-dependent on secret data.
            implicit_source = None
            control_deps = result.transfer.control_dependencies(theta, block_index)
            for dep in control_deps:
                if dep in secret_locations:
                    implicit_source = secret_locations[dep]
                    break

            line = terminator.span.start_line if not terminator.span.is_dummy() else 0
            if explicit_source is not None:
                violations.append(
                    IfcViolation(
                        fn_name=fn_name,
                        sink_function=terminator.func,
                        sink_location=call_location,
                        source_description=explicit_source,
                        via_control_flow=False,
                        line=line,
                    )
                )
            elif implicit_source is not None:
                violations.append(
                    IfcViolation(
                        fn_name=fn_name,
                        sink_function=terminator.func,
                        sink_location=call_location,
                        source_description=implicit_source,
                        via_control_flow=True,
                        line=line,
                    )
                )
        return violations

    def check_all(self) -> List[IfcViolation]:
        """Check every function of the local crate."""
        violations: List[IfcViolation] = []
        for name in self.engine.local_function_names():
            violations.extend(self.check_function(name))
        return violations

    def report(self) -> str:
        violations = self.check_all()
        if not violations:
            return "ifc: no insecure flows detected"
        lines = [f"ifc: {len(violations)} insecure flow(s) detected"]
        for violation in violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)
