"""Interprocedural information flow from modular procedure summaries.

Section 6 of the paper notes that its IFC prototype is purely
intraprocedural, "but future work could build an interprocedural analysis by
using Flowistry's output as procedure summaries in a larger information flow
graph".  This module implements that extension:

1. every local function is analysed once (modularly), and its result is
   condensed into parameter-level facts: which parameters flow into the
   return value, which parameters flow into which mutated reference
   parameters, and which parameters flow into each *call argument* inside the
   body;
2. those facts become edges of a program-wide :class:`FlowGraph` whose nodes
   are ``(function, parameter)`` and ``(function, return)``;
3. reachability queries over the graph answer interprocedural questions, and
   :class:`InterproceduralIfcChecker` uses them to find flows from secret
   data into insecure sinks across any number of calls.

The construction is modular in exactly the paper's sense: each function is
analysed once against callee *signatures*; the graph composes the summaries,
so no whole-program re-analysis is ever needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.apps.ifc import IfcPolicy
from repro.core.analysis import FunctionFlowResult
from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.core.theta import is_arg_location
from repro.mir.ir import Body, CallTerminator, Place


# A node of the interprocedural flow graph: (function name, slot) where slot
# is "param:<i>" or "ret".
Node = Tuple[str, str]


def param_node(fn_name: str, index: int) -> Node:
    return (fn_name, f"param:{index}")


def return_node(fn_name: str) -> Node:
    return (fn_name, "ret")


@dataclass
class FlowGraph:
    """A directed graph over parameter/return slots of every function."""

    edges: Dict[Node, Set[Node]] = field(default_factory=dict)
    nodes: Set[Node] = field(default_factory=set)

    def add_edge(self, src: Node, dst: Node) -> None:
        if src == dst:
            return
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges.setdefault(src, set()).add(dst)

    def successors(self, node: Node) -> Set[Node]:
        return self.edges.get(node, set())

    def reachable_from(self, node: Node) -> Set[Node]:
        """All nodes reachable from ``node`` (excluding unreachable self)."""
        seen: Set[Node] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for successor in self.successors(current):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    def reaches(self, src: Node, dst: Node) -> bool:
        return dst in self.reachable_from(src) or src == dst

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())


@dataclass
class InterproceduralFlows:
    """The flow graph plus the per-function analysis results used to build it."""

    graph: FlowGraph
    results: Dict[str, FunctionFlowResult]
    engine: FlowEngine

    def flows_to_return_of(self, fn_name: str, param_index: int) -> bool:
        return self.graph.reaches(param_node(fn_name, param_index), return_node(fn_name))

    def params_reaching(self, target: Node) -> List[Node]:
        return sorted(
            node
            for node in self.graph.nodes
            if node[1].startswith("param:") and self.graph.reaches(node, target)
        )


def _param_sources_of_deps(deps) -> Set[int]:
    return {loc.statement for loc in deps if is_arg_location(loc)}


def build_flow_graph(
    source_or_engine, config: Optional[AnalysisConfig] = None
) -> InterproceduralFlows:
    """Analyse every local function and compose the interprocedural graph.

    Accepts MiniRust source text or an existing :class:`FlowEngine`.
    """
    if isinstance(source_or_engine, FlowEngine):
        engine = source_or_engine
    else:
        engine = FlowEngine.from_source(source_or_engine, config=config)

    graph = FlowGraph()
    results: Dict[str, FunctionFlowResult] = {}

    for fn_name in engine.local_function_names():
        result = engine.analyze_function(fn_name)
        results[fn_name] = result
        body = result.body

        # Intraprocedural edges: parameters -> return value.
        for index in _param_sources_of_deps(result.deps_of_return()):
            graph.add_edge(param_node(fn_name, index), return_node(fn_name))

        # Parameters -> mutated reference parameters.
        for param_index, local in enumerate(body.arg_locals()):
            pointee = Place.from_local(local.index).project_deref()
            deps = result.exit_theta.read_conflicts(pointee)
            for source in _param_sources_of_deps(deps):
                if source != param_index:
                    graph.add_edge(
                        param_node(fn_name, source), param_node(fn_name, param_index)
                    )

        # Call-site edges.  ``callee_of_location`` lets a dependency on a call
        # location be translated into "the return value of that callee".
        callee_of_location = {
            body.terminator_location(index): block.terminator.func
            for index, block in enumerate(body.blocks)
            if isinstance(block.terminator, CallTerminator)
        }

        for block_index, block in enumerate(body.blocks):
            terminator = block.terminator
            if not isinstance(terminator, CallTerminator):
                continue
            call_location = body.terminator_location(block_index)
            theta = result.theta_at(call_location)
            callee = terminator.func
            for arg_index, arg in enumerate(terminator.args):
                arg_deps = result.transfer.deps_of_operand(theta, arg)
                # Caller parameters that flow into this argument.
                for source in _param_sources_of_deps(arg_deps):
                    graph.add_edge(
                        param_node(fn_name, source), param_node(callee, arg_index)
                    )
                # Return values of earlier calls that flow into this argument.
                for dep in arg_deps:
                    earlier_callee = callee_of_location.get(dep)
                    if earlier_callee is not None and dep != call_location:
                        graph.add_edge(
                            return_node(earlier_callee), param_node(callee, arg_index)
                        )

        # Return values of callees that flow into this function's return value.
        for dep in result.deps_of_return():
            upstream_callee = callee_of_location.get(dep)
            if upstream_callee is not None:
                graph.add_edge(return_node(upstream_callee), return_node(fn_name))

    return InterproceduralFlows(graph=graph, results=results, engine=engine)


@dataclass(frozen=True)
class InterproceduralViolation:
    """A secret-to-sink flow that crosses at least one function boundary."""

    source: Node
    sink_function: str
    sink_argument: int
    path_exists: bool = True

    def render(self) -> str:
        fn, slot = self.source
        return (
            f"interprocedural flow: {slot} of `{fn}` reaches argument "
            f"{self.sink_argument} of insecure operation `{self.sink_function}`"
        )


class InterproceduralIfcChecker:
    """IFC over the interprocedural flow graph (the Section 6 extension)."""

    def __init__(self, source: str, policy: IfcPolicy, config: Optional[AnalysisConfig] = None):
        self.policy = policy
        self.flows = build_flow_graph(source, config=config)

    def _secret_param_nodes(self) -> List[Node]:
        out: List[Node] = []
        for fn_name, result in self.flows.results.items():
            for index, local in enumerate(result.body.arg_locals()):
                if local.name and self.policy.is_variable_secret(fn_name, local.name):
                    out.append(param_node(fn_name, index))
                elif self.policy.type_is_secret(local.ty):
                    out.append(param_node(fn_name, index))
        return out

    def _sink_param_nodes(self) -> List[Tuple[str, int, Node]]:
        out: List[Tuple[str, int, Node]] = []
        for sink in sorted(self.policy.insecure_functions):
            if sink in self.policy.declassified_functions:
                continue
            signature = self.flows.engine.signatures.get(sink)
            arity = signature.arity() if signature is not None else 1
            for index in range(arity):
                out.append((sink, index, param_node(sink, index)))
        return out

    def check(self) -> List[InterproceduralViolation]:
        violations: List[InterproceduralViolation] = []
        secret_nodes = self._secret_param_nodes()
        sink_nodes = self._sink_param_nodes()
        for source in secret_nodes:
            reachable = self.flows.graph.reachable_from(source)
            for sink_fn, arg_index, node in sink_nodes:
                if node in reachable:
                    violations.append(
                        InterproceduralViolation(
                            source=source, sink_function=sink_fn, sink_argument=arg_index
                        )
                    )
        return violations

    def report(self) -> str:
        violations = self.check()
        if not violations:
            return "interprocedural ifc: no insecure flows detected"
        lines = [f"interprocedural ifc: {len(violations)} insecure flow(s) detected"]
        for violation in violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)
