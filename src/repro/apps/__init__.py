"""Applications built on the information flow analysis (Section 6, Figure 5).

The paper demonstrates Flowistry with two prototypes:

* a **program slicer** (Figure 5a) that highlights the lines relevant to a
  selected variable and can fade/remove the rest — :mod:`repro.apps.slicer`,
* an **IFC checker** (Figure 5b) that flags flows from values marked secure
  to operations marked insecure — :mod:`repro.apps.ifc`.

Both are intraprocedural, exactly like the paper's prototypes, and both are
thin layers over :class:`repro.core.engine.FlowEngine`.
"""

from repro.apps.slicer import ProgramSlicer, Slice, SliceDirection
from repro.apps.ifc import IfcChecker, IfcPolicy, IfcViolation, SecurityLabel
from repro.apps.interprocedural import (
    FlowGraph,
    InterproceduralIfcChecker,
    InterproceduralFlows,
    build_flow_graph,
)

__all__ = [
    "FlowGraph",
    "IfcChecker",
    "IfcPolicy",
    "IfcViolation",
    "InterproceduralFlows",
    "InterproceduralIfcChecker",
    "ProgramSlicer",
    "SecurityLabel",
    "Slice",
    "SliceDirection",
    "build_flow_graph",
]
