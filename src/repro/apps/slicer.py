"""A program slicer built on the modular information flow analysis.

Reproduces the Figure 5a prototype: given a *slicing criterion* (a variable
in a function, optionally at a particular location), compute the backward
slice — every instruction that may influence the criterion — or the forward
slice — every instruction the criterion may influence — and render the
result against the source text by fading the irrelevant lines.

Slices are served from per-function :class:`~repro.focus.table.FocusTable`
tabulations: the first query against a function pays one dataflow pass and
computes *every* variable's slice in both directions; subsequent queries are
dictionary lookups.  Because the analysis is modular, tables are
per-function and cheap; this is exactly the "lightweight slices of just
within a given function" use case the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.core.analysis import FunctionFlowResult
from repro.errors import AnalysisError, QueryError, Span
from repro.focus.table import FocusEntry, FocusTable
from repro.mir.ir import Body, Location, Place


def lines_of_locations(body: Body, locations: Iterable[Location]) -> FrozenSet[int]:
    """Source lines covered by ``locations`` of ``body``.

    Shared by the slicer and the analysis service so both render slices
    identically; synthetic locations (negative blocks) have no source span.
    """
    lines: Set[int] = set()
    for location in locations:
        if location.block < 0:
            continue
        instruction = body.instruction_at(location)
        span = getattr(instruction, "span", None)
        if span is not None and not span.is_dummy():
            for line in range(span.start_line, span.end_line + 1):
                lines.add(line)
    return frozenset(lines)


def forward_slice_locations(result: FunctionFlowResult, variable: str) -> FrozenSet[Location]:
    """Union of forward slices from every instruction that writes ``variable``.

    For parameters — which are never written inside the function — the
    criterion is the synthetic argument tag the analysis seeded at entry, so
    a cursor on a parameter still answers "where does this value flow?".
    """
    from repro.core.theta import arg_location

    local = result.body.local_by_name(variable)
    if local is None:
        raise AnalysisError(
            f"function {result.body.fn_name!r} has no variable {variable!r}"
        )
    target = Place.from_local(local.index)
    influenced: Set[Location] = set()
    if local.is_arg:
        influenced |= result.forward_slice(arg_location(local.index - 1))
        influenced.discard(arg_location(local.index - 1))
    for location in result.body.locations():
        instruction = result.body.instruction_at(location)
        written = getattr(instruction, "place", None) or getattr(
            instruction, "destination", None
        )
        if written is not None and written.conflicts_with(target):
            influenced |= result.forward_slice(location)
    return frozenset(influenced)


class SliceDirection(Enum):
    """Whether we slice backwards (influences of) or forwards (influenced by)."""

    BACKWARD = "backward"
    FORWARD = "forward"


@dataclass
class Slice:
    """The result of slicing one function on one criterion.

    ``relevant_spans`` carries the char-precise ranges the focus table
    computed; ``relevant_lines`` remains the line-level projection used by
    the Figure 5a fade rendering.
    """

    fn_name: str
    variable: str
    direction: SliceDirection
    locations: FrozenSet[Location]
    relevant_lines: FrozenSet[int]
    criterion_lines: FrozenSet[int]
    relevant_spans: Tuple[Span, ...] = ()

    def contains_line(self, line: int) -> bool:
        return line in self.relevant_lines

    def contains_position(self, line: int, col: int) -> bool:
        """Char-precise membership (falls back to lines when spans absent)."""
        if self.relevant_spans:
            return any(span.contains(line, col) for span in self.relevant_spans)
        return self.contains_line(line)

    def size(self) -> int:
        return len(self.locations)


class ProgramSlicer:
    """Compute intra-procedural slices of MiniRust programs."""

    def __init__(self, source: str, config: Optional[AnalysisConfig] = None):
        self.source = source
        self.engine = FlowEngine.from_source(source, config=config)
        self._results: Dict[str, FunctionFlowResult] = {}
        self._tables: Dict[str, FocusTable] = {}

    # -- helpers ---------------------------------------------------------------

    def _result(self, fn_name: str) -> FunctionFlowResult:
        if fn_name not in self._results:
            self._results[fn_name] = self.engine.analyze_function(fn_name)
        return self._results[fn_name]

    def _table(self, fn_name: str) -> FocusTable:
        """The function's focus table, built once per slicer."""
        if fn_name not in self._tables:
            self._tables[fn_name] = FocusTable.build(self._result(fn_name))
        return self._tables[fn_name]

    def _entry(self, fn_name: str, variable: str) -> FocusEntry:
        try:
            return self._table(fn_name).entry_for_variable(variable)
        except QueryError as error:
            raise AnalysisError(str(error)) from None

    def _lines_of_locations(
        self, result: FunctionFlowResult, locations: FrozenSet[Location]
    ) -> FrozenSet[int]:
        return lines_of_locations(result.body, locations)

    def _variable_definition_lines(self, result: FunctionFlowResult, variable: str) -> FrozenSet[int]:
        local = result.body.local_by_name(variable)
        if local is None or local.span.is_dummy():
            return frozenset()
        return frozenset(range(local.span.start_line, local.span.end_line + 1))

    # -- public API ------------------------------------------------------------------

    def backward_slice(self, fn_name: str, variable: str) -> Slice:
        """All code that may influence the final value of ``variable``."""
        result = self._result(fn_name)
        entry = self._entry(fn_name, variable)
        locations = frozenset(entry.backward)
        return Slice(
            fn_name=fn_name,
            variable=variable,
            direction=SliceDirection.BACKWARD,
            locations=locations,
            relevant_lines=self._lines_of_locations(result, locations),
            criterion_lines=self._variable_definition_lines(result, variable),
            relevant_spans=entry.backward_spans,
        )

    def forward_slice(self, fn_name: str, variable: str) -> Slice:
        """All code that the value of ``variable`` may influence.

        The criterion is taken to be every instruction that writes the
        variable; the forward slice is the union of their forward slices.
        """
        result = self._result(fn_name)
        entry = self._entry(fn_name, variable)
        influenced = frozenset(entry.forward)
        return Slice(
            fn_name=fn_name,
            variable=variable,
            direction=SliceDirection.FORWARD,
            locations=influenced,
            relevant_lines=self._lines_of_locations(result, influenced),
            criterion_lines=self._variable_definition_lines(result, variable),
            relevant_spans=entry.forward_spans,
        )

    # -- rendering ----------------------------------------------------------------------

    def render(self, slice_: Slice, fade_marker: str = "  ~ ", keep_marker: str = "    ") -> str:
        """Render the source with non-slice lines faded, Figure 5a style.

        Lines belonging to the sliced function that are not part of the slice
        are prefixed with ``fade_marker``; slice lines keep ``keep_marker``;
        the criterion's definition line is marked with ``>>> ``.
        """
        fn = self.engine.program.function(slice_.fn_name)
        fn_lines: Set[int] = set()
        if fn is not None and fn.body is not None and not fn.span.is_dummy():
            fn_lines = set(range(fn.span.start_line, fn.body.span.end_line + 1))

        out_lines: List[str] = []
        for line_number, text in enumerate(self.source.splitlines(), start=1):
            if line_number in slice_.criterion_lines:
                prefix = ">>> "
            elif line_number in slice_.relevant_lines:
                prefix = keep_marker
            elif line_number in fn_lines:
                prefix = fade_marker
            else:
                prefix = keep_marker
            out_lines.append(f"{prefix}{text}")
        return "\n".join(out_lines)

    def removable_lines(self, fn_name: str, variable: str) -> FrozenSet[int]:
        """Lines of ``fn_name`` that could be removed without affecting
        ``variable`` — the "comment out everything about timing" workflow
        from Figure 5a, expressed as the complement of the backward slice."""
        result = self._result(fn_name)
        slice_ = self.backward_slice(fn_name, variable)
        fn = self.engine.program.function(fn_name)
        if fn is None or fn.body is None or fn.span.is_dummy():
            return frozenset()
        body_lines = set(range(fn.body.span.start_line + 1, fn.body.span.end_line))
        all_instruction_lines = self._lines_of_locations(
            result, frozenset(loc for loc in result.body.locations())
        )
        candidate = body_lines & all_instruction_lines
        return frozenset(candidate - set(slice_.relevant_lines) - set(slice_.criterion_lines))
