"""Content-addressed summary cache: the persistence layer of the service.

Keys are *content fingerprints*, not positions: a function's cache key hashes
the text of everything its result can depend on.  Under the modular condition
that is just its own lowered body plus the **signatures** of its direct
callees (the paper's Section 2.3 rule: a call is approximated from the callee
type alone).  Under the whole-program condition it is the lowered bodies of
the function's entire reachable call-graph cone within the local crate.  An
edit therefore changes exactly the keys of the functions whose results could
change — stale entries become unreachable garbage rather than wrong answers,
and :mod:`repro.service.invalidate` exists to *reclaim* them, not to keep the
cache correct.

The store has two tiers: an in-memory LRU of JSON-serialisable values, and an
optional directory of JSON files that survives the process (one file per
entry, named by the SHA-256 of the key).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.analysis import FunctionFlowResult
from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine, RecursiveSummaryProvider
from repro.core.summaries import WholeProgramSummary
from repro.core.theta import is_arg_location
from repro.mir.callgraph import CallGraph
from repro.mir.indices import index_body
from repro.mir.ir import Body, Location, Place, RETURN_LOCAL
from repro.mir.lower import LoweredProgram
from repro.mir.pretty import pretty_body
from repro.obs import metrics as obs_metrics
from repro.obs import span as obs_span


# Cached-value kinds: a per-function analysis record served to queries, a
# parameter-level whole-program summary consumed by the recursive provider,
# and a precomputed all-places focus table served to cursor queries.
KIND_RECORD = "record"
KIND_SUMMARY = "summary"
KIND_FOCUS = "focus"

# On-disk / wire format version of cached values.  Bumped to 2 when records
# moved to the compact index form (a per-record location table plus integer
# indices) and body fingerprints started covering the interning-table digest;
# the version participates in every key digest, so entries written by an
# older release are simply unreachable rather than misdecoded.
CACHE_FORMAT_VERSION = 2


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def config_cache_key(config: AnalysisConfig) -> str:
    """A canonical, order-stable rendering of every field of ``config``.

    Derived from the dataclass itself so a future ``AnalysisConfig`` field
    automatically becomes part of the key instead of silently colliding
    results from different configurations.
    """
    parts = []
    for f in dataclasses.fields(AnalysisConfig):
        value = getattr(config, f.name)
        parts.append(f"{f.name}={int(value) if isinstance(value, bool) else value}")
    return ",".join(parts)


def condition_is_whole_program(condition: str) -> bool:
    """Whether a rendered condition key names the whole-program condition."""
    return "whole_program=1" in condition.split(",")


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached value."""

    kind: str
    fn_name: str
    fingerprint: str
    condition: str

    def file_name(self) -> str:
        """The disk-tier file name: a digest of the full key, ``.json``."""
        return _digest(
            f"v{CACHE_FORMAT_VERSION}|{self.kind}|{self.fn_name}|"
            f"{self.fingerprint}|{self.condition}"
        ) + ".json"

    def to_json_dict(self) -> Dict[str, str]:
        """The key's JSON form (stored next to the value for verification)."""
        return {
            "kind": self.kind,
            "fn_name": self.fn_name,
            "fingerprint": self.fingerprint,
            "condition": self.condition,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, str]) -> "CacheKey":
        """Rebuild a key from :meth:`to_json_dict` output."""
        return cls(
            kind=str(data["kind"]),
            fn_name=str(data["fn_name"]),
            fingerprint=str(data["fingerprint"]),
            condition=str(data["condition"]),
        )


class FingerprintIndex:
    """Fingerprints of every function of one checked+lowered program.

    ``signature_fingerprint`` covers extern and cross-crate functions (the
    modular analysis only ever sees their signatures); ``body_fingerprint``
    covers local bodies; ``shallow_fingerprint`` and ``cone_fingerprint`` are
    the per-condition cache keys described in the module docstring.
    """

    def __init__(
        self,
        lowered: LoweredProgram,
        signatures: Dict[str, object],
        local_crate: str,
        call_graph: CallGraph,
    ):
        self.lowered = lowered
        self.signatures = signatures
        self.local_crate = local_crate
        self.call_graph = call_graph
        self._sig: Dict[str, str] = {}
        self._body: Dict[str, Optional[str]] = {}
        self._shallow: Dict[str, str] = {}
        self._cone: Dict[str, str] = {}

    def signature_fingerprint(self, name: str) -> str:
        """Fingerprint of the function's rendered signature (any function)."""
        if name not in self._sig:
            sig = self.signatures.get(name)
            rendered = sig.pretty() if sig is not None else f"<unknown {name}>"
            self._sig[name] = _digest(rendered)
        return self._sig[name]

    def body_fingerprint(self, name: str) -> Optional[str]:
        """Fingerprint of the lowered body text, or ``None`` for extern fns.

        Covers the body's interning tables too (their digest is derived from
        the same body, so content addressing is unchanged): summaries and
        records are serialised in index form, and a value must never be
        decoded against tables other than the ones it was encoded with.
        """
        if name not in self._body:
            body = self.lowered.body(name)
            if body is None:
                self._body[name] = None
            else:
                tables = index_body(body, seed_statements=True)
                self._body[name] = _digest(
                    f"{body.crate}::{pretty_body(body)}|tables={tables.digest()}"
                )
        return self._body[name]

    def _node_fingerprint(self, name: str) -> str:
        """Body fingerprint for local-crate bodies, signature otherwise —
        mirroring which information the whole-program analysis may use."""
        body = self.lowered.body(name)
        if body is not None and body.crate == self.local_crate:
            return self.body_fingerprint(name) or self.signature_fingerprint(name)
        return self.signature_fingerprint(name)

    def shallow_fingerprint(self, name: str) -> str:
        """Modular-condition key: own body + direct callees' signatures."""
        if name not in self._shallow:
            parts = [self.body_fingerprint(name) or self.signature_fingerprint(name)]
            for callee in self.call_graph.unique_callees(name):
                parts.append(f"{callee}={self.signature_fingerprint(callee)}")
            self._shallow[name] = _digest("|".join(parts))
        return self._shallow[name]

    def cone_fingerprint(self, name: str) -> str:
        """Whole-program-condition key: the reachable call-graph cone."""
        if name not in self._cone:
            parts = []
            for node in sorted(self.call_graph.reachable_from(name) | {name}):
                parts.append(f"{node}={self._node_fingerprint(node)}")
            self._cone[name] = _digest("|".join(parts))
        return self._cone[name]

    def record_fingerprint(self, name: str, config: AnalysisConfig) -> str:
        """The content fingerprint a query under ``config`` is keyed by."""
        if config.whole_program:
            return self.cone_fingerprint(name)
        return self.shallow_fingerprint(name)

    def record_key(self, name: str, config: AnalysisConfig) -> CacheKey:
        """Store key for the function's query-facing analysis record."""
        return CacheKey(
            kind=KIND_RECORD,
            fn_name=name,
            fingerprint=self.record_fingerprint(name, config),
            condition=config_cache_key(config),
        )

    def focus_key(self, name: str, config: AnalysisConfig) -> CacheKey:
        """Key for the function's precomputed focus table.

        Focus tables derive from the same analysis result as records, so
        they share the record fingerprint — an edit that would change the
        record also orphans the table.
        """
        return CacheKey(
            kind=KIND_FOCUS,
            fn_name=name,
            fingerprint=self.record_fingerprint(name, config),
            condition=config_cache_key(config),
        )

    def summary_key(self, name: str, config: AnalysisConfig) -> CacheKey:
        """Store key for a callee's whole-program summary (cone-addressed)."""
        return CacheKey(
            kind=KIND_SUMMARY,
            fn_name=name,
            fingerprint=self.cone_fingerprint(name),
            condition=config_cache_key(config),
        )

    def snapshot(self) -> Dict[str, Tuple[str, Optional[str]]]:
        """(signature fp, body fp) per known function — the edit-diff input."""
        names = set(self.call_graph.nodes) | set(self.lowered.bodies) | set(self.signatures)
        return {
            name: (self.signature_fingerprint(name), self.body_fingerprint(name))
            for name in names
        }


@dataclass
class CacheStats:
    """Counters surfaced in service responses (`stats` blocks)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    invalidations: int = 0
    disk_hits: int = 0
    disk_writes: int = 0

    def to_dict(self) -> Dict[str, int]:
        """The counters as the JSON ``stats`` block responses carry."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
        }


class SummaryStore:
    """Two-tier (memory LRU + optional JSON directory) cache of JSON values.

    The store is thread-safe: every public operation holds an internal
    reentrant lock, so the concurrent server can share one store across many
    reader threads (LRU reordering and stats counters mutate on ``get``, so
    even logically read-only traffic needs the lock).
    """

    def __init__(self, max_entries: int = 4096, disk_dir: Optional[Path] = None):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, dict]" = OrderedDict()
        # Every key seen this process, per function name: the index used by
        # name-based invalidation (content addressing already guarantees that
        # stale entries can never be *served*; this lets us reclaim them).
        self._by_name: Dict[str, Set[CacheKey]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    # -- tiers -----------------------------------------------------------------

    def _disk_path(self, key: CacheKey) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / key.file_name()

    def _load_from_disk(self, key: CacheKey) -> Optional[dict]:
        path = self._disk_path(key)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("key") != key.to_json_dict():
            # Hash-prefix collision or foreign file: never serve it.
            return None
        value = payload.get("value")
        return value if isinstance(value, dict) else None

    def _write_to_disk(self, key: CacheKey, value: dict) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            path.write_text(
                json.dumps({"key": key.to_json_dict(), "value": value}, sort_keys=True),
                encoding="utf-8",
            )
            self.stats.disk_writes += 1
        except OSError:
            pass  # The disk tier is best-effort; memory stays authoritative.

    # -- public API -------------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[dict]:
        """The cached value for ``key``, consulting memory then disk.

        A memory hit refreshes the entry's LRU position; a disk hit promotes
        the entry back into the memory tier.  Returns ``None`` on a miss.
        """
        with obs_span("cache_get", kind=key.kind) as sp:
            tier = "miss"
            value: Optional[dict] = None
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    tier = "memory"
                    value = self._entries[key]
                else:
                    value = self._load_from_disk(key)
                    if value is not None:
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                        self._insert(key, value, write_disk=False)
                        tier = "disk"
                    else:
                        self.stats.misses += 1
            obs_metrics.get_registry().counter(
                "cache_get_total", kind=key.kind, tier=tier
            ).inc()
            if sp is not None:
                sp.set(tier=tier, fn=key.fn_name)
            return value

    def put(self, key: CacheKey, value: dict) -> None:
        """Store ``value`` under ``key`` in memory and (if enabled) on disk."""
        with obs_span("cache_put", kind=key.kind) as sp:
            with self._lock:
                self._insert(key, value, write_disk=True)
                self.stats.puts += 1
            obs_metrics.get_registry().counter("cache_put_total", kind=key.kind).inc()
            if sp is not None:
                sp.set(fn=key.fn_name)

    def _insert(self, key: CacheKey, value: dict, write_disk: bool) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._by_name.setdefault(key.fn_name, set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self.disk_dir is None:
                # Nothing left to reclaim for this key: drop its name-index
                # entry too, or a long-lived session leaks one key per edit.
                names = self._by_name.get(evicted_key.fn_name)
                if names is not None:
                    names.discard(evicted_key)
            # With a disk tier the entry stays on disk (and in the name
            # index, so invalidation can still unlink the file): the LRU
            # bounds memory, not persistence.
        if write_disk:
            self._write_to_disk(key, value)

    def invalidate_function(
        self, fn_name: str, predicate: Optional[Callable[[CacheKey], bool]] = None
    ) -> int:
        """Drop every known entry for ``fn_name`` (memory and disk).

        ``predicate`` restricts which keys are dropped (e.g. only
        whole-program conditions).  Returns the number of entries removed.
        """
        with self._lock:
            removed = 0
            keys = sorted(
                self._by_name.get(fn_name, ()),
                key=lambda k: (k.kind, k.condition, k.fingerprint),
            )
            for key in keys:
                if predicate is not None and not predicate(key):
                    continue
                self._by_name[fn_name].discard(key)
                in_memory = self._entries.pop(key, None) is not None
                on_disk = False
                path = self._disk_path(key)
                if path is not None and path.is_file():
                    try:
                        path.unlink()
                        on_disk = True
                    except OSError:
                        pass
                if in_memory or on_disk:
                    removed += 1
            self.stats.invalidations += removed
            return removed

    def clear(self) -> None:
        """Wipe both tiers: a cleared entry must not resurrect from disk."""
        with self._lock:
            self._entries.clear()
            self._by_name.clear()
            if self.disk_dir is not None:
                for path in self.disk_dir.glob("*.json"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def flush_to(self, disk_dir: Path) -> int:
        """Write every in-memory entry into ``disk_dir`` (the disk-tier format).

        Used by workspace persistence to snapshot a memory-only store into a
        directory that a future :class:`SummaryStore` can adopt as its disk
        tier.  When ``disk_dir`` is already this store's own disk tier the
        entries were written through on ``put`` and this is a cheap no-op
        refresh.  Returns the number of entries written.
        """
        with self._lock:
            disk_dir = Path(disk_dir)
            disk_dir.mkdir(parents=True, exist_ok=True)
            written = 0
            for key, value in self._entries.items():
                path = disk_dir / key.file_name()
                try:
                    path.write_text(
                        json.dumps(
                            {"key": key.to_json_dict(), "value": value}, sort_keys=True
                        ),
                        encoding="utf-8",
                    )
                    written += 1
                except OSError:
                    continue
            return written


@dataclass
class FunctionRecord:
    """The query-facing cached result of analysing one function.

    Serialised in the **compact index form** (cache format version
    {CACHE_FORMAT_VERSION}): the record carries one interning table —
    ``locations``, the sorted ``[block, statement]`` pairs the exit state
    mentions, with the synthetic argument tags in their in-engine encoding
    (``block == -2``) — and every per-variable dependency list is a list of
    integer indices into it.  Dependency sets overlap heavily across
    variables (that is what Θ's join produces), so the table is written once
    instead of per variable, and the record round-trips losslessly.
    """

    fn_name: str
    crate: str
    condition: str
    fingerprint: str
    dependency_sizes: Dict[str, int]
    exit_deps: Dict[str, List[Tuple[int, int]]]

    def to_json_dict(self) -> dict:
        """The record as the JSON value stored in the :class:`SummaryStore`."""
        table: List[Tuple[int, int]] = sorted(
            {loc for locs in self.exit_deps.values() for loc in locs}
        )
        index = {loc: i for i, loc in enumerate(table)}
        return {
            "format": CACHE_FORMAT_VERSION,
            "fn_name": self.fn_name,
            "crate": self.crate,
            "condition": self.condition,
            "fingerprint": self.fingerprint,
            "dependency_sizes": dict(self.dependency_sizes),
            "locations": [list(loc) for loc in table],
            "exit_deps": {
                var: [index[loc] for loc in locs]
                for var, locs in self.exit_deps.items()
            },
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FunctionRecord":
        """Rebuild a record from :meth:`to_json_dict` output (lossless)."""
        table = [(int(loc[0]), int(loc[1])) for loc in data["locations"]]
        return cls(
            fn_name=str(data["fn_name"]),
            crate=str(data["crate"]),
            condition=str(data["condition"]),
            fingerprint=str(data["fingerprint"]),
            dependency_sizes={str(k): int(v) for k, v in data["dependency_sizes"].items()},
            exit_deps={
                str(var): [table[int(i)] for i in indices]
                for var, indices in data["exit_deps"].items()
            },
        )

    @classmethod
    def from_result(
        cls, result: FunctionFlowResult, fingerprint: str, condition: str
    ) -> "FunctionRecord":
        """Serialise a fresh analysis result into its cacheable record."""
        body = result.body
        theta = result.exit_theta
        exit_deps: Dict[str, List[Tuple[int, int]]] = {}
        for local in body.locals:
            if local.index == RETURN_LOCAL:
                label = "<return>"
            else:
                label = local.name if local.name is not None else f"_{local.index}"
            deps = theta.read_conflicts(Place.from_local(local.index))
            exit_deps[label] = sorted((loc.block, loc.statement) for loc in deps)
        return cls(
            fn_name=body.fn_name,
            crate=body.crate,
            condition=condition,
            fingerprint=fingerprint,
            dependency_sizes=result.dependency_sizes(),
            exit_deps=exit_deps,
        )

    # -- derived views ----------------------------------------------------------

    def deps_of(self, variable: str) -> List[Location]:
        """The variable's exit-Θ dependency locations, deserialised."""
        if variable not in self.exit_deps:
            raise KeyError(f"function {self.fn_name!r} has no variable {variable!r}")
        return [Location(block, statement) for block, statement in self.exit_deps[variable]]

    def backward_slice_locations(self, variable: str) -> List[Location]:
        """Backward slice of ``variable`` at exit: its non-argument deps."""
        return [loc for loc in self.deps_of(variable) if not is_arg_location(loc)]


class StoreBackedSummaryProvider(RecursiveSummaryProvider):
    """Recursive whole-program provider that round-trips callee summaries
    through a :class:`SummaryStore`.

    Summary keys use the callee's *cone* fingerprint, so a stored summary is
    served only while every body it transitively depends on is unchanged.
    Each value also records the summary's computation height — the provider
    uses it to refuse hits that the current recursion's depth budget could
    not have computed fresh, keeping warm results byte-equal to cold ones.
    """

    def __init__(self, engine: FlowEngine, store: SummaryStore, fingerprints: FingerprintIndex):
        super().__init__(engine, root_crate=engine.local_crate)
        self.store = store
        self.fingerprints = fingerprints

    def lookup_summary(
        self, callee: str, body: Body
    ) -> Optional[Tuple[WholeProgramSummary, int]]:
        """A stored ``(summary, height)`` for ``callee``, or ``None`` on miss."""
        key = self.fingerprints.summary_key(callee, self.engine.config)
        data = self.store.get(key)
        if data is None or "summary" not in data:
            return None
        return (
            WholeProgramSummary.from_json_dict(data["summary"]),
            int(data.get("height", 1)),
        )

    def store_summary(
        self, callee: str, body: Body, summary: WholeProgramSummary, height: int
    ) -> None:
        """Persist a freshly computed callee summary with its height."""
        key = self.fingerprints.summary_key(callee, self.engine.config)
        self.store.put(key, {"summary": summary.to_json_dict(), "height": height})
