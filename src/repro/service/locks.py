"""Readers–writer locking for shared analysis sessions.

The concurrent server (:mod:`repro.service.server`) shares one
:class:`~repro.service.session.AnalysisSession` per workspace across every
connected client, so that all of them hit the same warm cache.  Queries
(``analyze``/``slice``/``focus``/...) only *read* the workspace and may run
concurrently; workspace mutations (``open``/``update``/``close``/``warm``)
rebuild derived state and must run alone.  :class:`RWLock` encodes exactly
that policy.

The lock is writer-preferring: once a writer is waiting, new readers queue
behind it, so a stream of focus queries cannot starve an edit indefinitely —
the interactive contract is that an edit lands promptly and the queries that
follow it see the new workspace generation.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry


class RWLock:
    """A writer-preferring readers–writer lock.

    Any number of readers may hold the lock simultaneously; a writer holds it
    exclusively.  Waiting writers block new readers (writer preference).  The
    lock is not reentrant in either mode and not upgradable: a reader must
    release before acquiring the write side.

    Every acquisition records its wait time and every release its hold time
    into ``lock_wait_seconds{mode}`` / ``lock_hold_seconds{mode}`` — the
    direct measurement of how much of a slow request was contention rather
    than analysis.  ``registry`` defaults to the process-global one; tests
    pass their own for isolation.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        registry = registry if registry is not None else get_registry()
        self._wait_hist = {
            "read": registry.histogram("lock_wait_seconds", mode="read"),
            "write": registry.histogram("lock_wait_seconds", mode="write"),
        }
        self._hold_hist = {
            "read": registry.histogram("lock_hold_seconds", mode="read"),
            "write": registry.histogram("lock_hold_seconds", mode="write"),
        }
        # thread ident -> (mode, acquired-at); the lock is not reentrant, so
        # one entry per holder.  Guarded by ``_cond``'s mutex.
        self._acquired_at: Dict[int, Tuple[str, float]] = {}

    # -- core protocol -----------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer holds or is waiting for the lock, then enter."""
        started = time.perf_counter()
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            now = time.perf_counter()
            self._acquired_at[threading.get_ident()] = ("read", now)
        self._wait_hist["read"].observe(now - started)

    def release_read(self) -> None:
        """Exit the read side; wakes waiters when the last reader leaves."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
            held = self._acquired_at.pop(threading.get_ident(), None)
        if held is not None:
            self._hold_hist[held[0]].observe(time.perf_counter() - held[1])

    def acquire_write(self) -> None:
        """Block until the lock is completely free, then enter exclusively."""
        started = time.perf_counter()
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            now = time.perf_counter()
            self._acquired_at[threading.get_ident()] = ("write", now)
        self._wait_hist["write"].observe(now - started)

    def release_write(self) -> None:
        """Exit the write side and wake every waiter."""
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()
            held = self._acquired_at.pop(threading.get_ident(), None)
        if held is not None:
            self._hold_hist[held[0]].observe(time.perf_counter() - held[1])

    # -- context managers --------------------------------------------------------

    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` — shared (query) access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` — exclusive (mutation) access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    @contextmanager
    def locked(self, write: bool):
        """Dispatching helper: read or write access by flag."""
        if write:
            with self.write_locked():
                yield self
        else:
            with self.read_locked():
                yield self
