"""Call-graph-aware invalidation: which results can an edit change?

This module encodes the paper's modularity payoff as executable policy.
Under the **modular** condition a function's result reads only its own body
and the *signatures* of its direct callees, so a body edit invalidates
exactly the edited function, and a signature edit additionally invalidates
its direct callers.  Under the **whole-program** condition results read
transitively into callee bodies, so an edit invalidates the edited function
plus its entire reverse-call-graph cone — the asymmetry the service's tests
assert, and the reason the modular analysis stays interactive while the
whole-program variant cannot.

Invalidation here is about *reclaiming* cache entries: the content-addressed
keys of :mod:`repro.service.cache` already guarantee that stale entries are
never served.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.mir.callgraph import CallGraph
from repro.service.cache import CacheKey, SummaryStore, condition_is_whole_program


REASON_EDITED = "edited"
REASON_SIGNATURE_CALLER = "caller-of-signature-change"
REASON_TRANSITIVE_CALLER = "transitive-caller"


@dataclass
class InvalidationPlan:
    """The eviction set for one edit under one condition family."""

    whole_program: bool
    body_changed: tuple
    sig_changed: tuple
    removed: tuple
    # function name -> why it is evicted (REASON_* constants).
    evict: Dict[str, str] = field(default_factory=dict)

    def evicted_functions(self) -> List[str]:
        """The names this plan evicts, sorted."""
        return sorted(self.evict)

    def to_json_dict(self) -> dict:
        """The plan as carried in ``open``/``update`` responses."""
        return {
            "whole_program": self.whole_program,
            "body_changed": sorted(self.body_changed),
            "sig_changed": sorted(self.sig_changed),
            "removed": sorted(self.removed),
            "evict": dict(sorted(self.evict.items())),
        }


def plan_invalidation(
    graph: CallGraph,
    *,
    body_changed: Iterable[str] = (),
    sig_changed: Iterable[str] = (),
    removed: Iterable[str] = (),
    whole_program: bool,
) -> InvalidationPlan:
    """Compute the exact eviction set for an edit.

    ``body_changed`` are functions whose body text changed but whose
    signature did not; ``sig_changed`` are functions whose signature changed
    (their body may or may not have); ``removed`` are functions deleted from
    the workspace.  The reverse call graph is the *old* one (edges as they
    were when the cached results were computed) — callers recorded under the
    previous program shape are exactly the entries at risk.
    """
    body_changed = tuple(sorted(set(body_changed)))
    sig_changed = tuple(sorted(set(sig_changed)))
    removed = tuple(sorted(set(removed)))
    plan = InvalidationPlan(
        whole_program=whole_program,
        body_changed=body_changed,
        sig_changed=sig_changed,
        removed=removed,
    )

    edited: Set[str] = set(body_changed) | set(sig_changed) | set(removed)
    for name in edited:
        plan.evict[name] = REASON_EDITED

    if whole_program:
        # Any edit can flow into every transitive caller's summary.
        reverse = graph.reverse_edges()
        stack = list(edited)
        while stack:
            current = stack.pop()
            for caller in reverse.get(current, ()):
                if caller not in plan.evict:
                    plan.evict[caller] = REASON_TRANSITIVE_CALLER
                    stack.append(caller)
    else:
        # Modular results read only direct callees' signatures: a pure body
        # edit stays local; a signature change reaches direct callers only.
        for name in set(sig_changed) | set(removed):
            for caller in graph.callers(name):
                if caller not in plan.evict:
                    plan.evict[caller] = REASON_SIGNATURE_CALLER
    return plan


def apply_invalidation(store: SummaryStore, plan: InvalidationPlan) -> int:
    """Evict the plan's functions from ``store``; returns entries removed.

    Only entries of the plan's condition family are touched, so the modular
    plan cannot over-evict whole-program entries and vice versa.
    """

    def matches(key: CacheKey) -> bool:
        return condition_is_whole_program(key.condition) == plan.whole_program

    removed = 0
    for fn_name in plan.evicted_functions():
        removed += store.invalidate_function(fn_name, predicate=matches)
    return removed


def plan_both_conditions(
    graph: CallGraph,
    *,
    body_changed: Iterable[str] = (),
    sig_changed: Iterable[str] = (),
    removed: Iterable[str] = (),
) -> Dict[bool, InvalidationPlan]:
    """Plans for the modular and whole-program condition families."""
    kwargs = dict(body_changed=body_changed, sig_changed=sig_changed, removed=removed)
    return {
        False: plan_invalidation(graph, whole_program=False, **kwargs),
        True: plan_invalidation(graph, whole_program=True, **kwargs),
    }
