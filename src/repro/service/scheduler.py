"""Batch scheduler: topological waves over the call graph, optionally fanned
out across a process pool.

Functions are grouped into *waves*: every function in a wave has all of its
in-batch callees in earlier waves, so summaries are available bottom-up (the
order that makes the serial whole-program pass linear instead of quadratic)
and the functions within one wave are mutually independent — the unit of
parallelism.  Small batches run serially: for the paper's ~370µs-median
per-function analyses, process start-up dwarfs the work until the batch is
reasonably large.

The parallel path re-parses the workspace once per worker process (MIR bodies
hold richly-linked AST/type objects; shipping source text is both cheaper and
version-proof), so it pays off for batch analysis of whole crates, which is
exactly what ``warm`` requests are.  Any pool failure — sandboxes that forbid
``fork``, pickling regressions — degrades to the serial path rather than
failing the request.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import AnalysisConfig
from repro.core.engine import FlowEngine
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.mir.callgraph import CallGraph
from repro.obs import metrics as obs_metrics
from repro.obs import remote as obs_remote
from repro.obs import span as obs_span
from repro.service.cache import (
    FingerprintIndex,
    FunctionRecord,
    SummaryStore,
    config_cache_key,
)


def _strongly_connected_components(deps: Dict[str, set]) -> Dict[str, int]:
    """Tarjan over the in-batch dependency graph; returns node → SCC id."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    component: Dict[str, int] = {}
    counter = [0]
    comp_counter = [0]

    def strongconnect(root: str) -> None:
        # Iterative Tarjan: (node, iterator position) frames.
        work = [(root, iter(sorted(deps[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(sorted(deps[succ]))))
                    advanced = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = comp_counter[0]
                    if member == node:
                        break
                comp_counter[0] += 1

    for name in sorted(deps):
        if name not in index:
            strongconnect(name)
    return component


def schedule_waves(graph: CallGraph, names: Sequence[str]) -> List[List[str]]:
    """Partition ``names`` into callees-first waves of independent functions.

    Only dependencies *within* ``names`` constrain the order; self-recursion
    is ignored (a function cannot wait on itself) and a call cycle collapses
    into a single wave entry while its callers still come later.
    """
    ordered = list(dict.fromkeys(names))
    in_set = set(ordered)
    deps = {
        name: {c for c in graph.unique_callees(name) if c in in_set and c != name}
        for name in ordered
    }
    component = _strongly_connected_components(deps)

    # Kahn levels over the SCC condensation.
    comp_members: Dict[int, List[str]] = {}
    for name in ordered:
        comp_members.setdefault(component[name], []).append(name)
    comp_deps: Dict[int, set] = {cid: set() for cid in comp_members}
    for name in ordered:
        for dep in deps[name]:
            if component[dep] != component[name]:
                comp_deps[component[name]].add(component[dep])

    waves: List[List[str]] = []
    remaining = set(comp_members)
    while remaining:
        ready = sorted(cid for cid in remaining if not (comp_deps[cid] & remaining))
        assert ready, "SCC condensation is acyclic"
        wave = sorted(name for cid in ready for name in comp_members[cid])
        waves.append(wave)
        remaining -= set(ready)
    return waves


def run_waves(
    worker,
    waves: Sequence[Sequence],
    *,
    max_workers: Optional[int] = None,
    chunk_size: int = 8,
    parallel: Optional[bool] = None,
    initializer=None,
    initargs: tuple = (),
    telemetry: Optional[obs_remote.FanoutTelemetry] = None,
):
    """Fan each wave of tasks across ONE persistent process pool, with a
    barrier between waves.

    The SCC-parallel fixpoint driver: ``waves`` come from
    :func:`schedule_waves` (or any condensation of a dependency graph), so
    tasks within a wave are mutually independent — the unit of parallelism —
    while the inter-wave barrier preserves the callees-first contract that
    makes bottom-up summaries sound.  The pool persists across waves, so
    worker start-up (re-parsing the workspace) is paid once per batch, not
    once per wave.

    ``worker``/``initializer`` follow :func:`map_shards`' conventions, and so
    does the degrade contract: any pool failure falls back to running the
    same chunks serially in-process.  Returns ``(mode, wave_results, error)``
    where ``wave_results`` has one list per wave concatenating its chunk
    results in task order.

    With a :class:`repro.obs.remote.FanoutTelemetry` collector, each pool
    task additionally ships a worker-telemetry envelope: worker span
    subtrees are grafted under the dispatching wave span (one clock base),
    worker metric deltas are folded into the parent registry under a
    ``worker`` label, and per-wave utilization/straggler statistics are
    accumulated in the collector.  Serial runs feed the same chunk
    accounting, so utilization is reported in every mode.
    """
    staged = [list(wave) for wave in waves]
    total = sum(len(wave) for wave in staged)
    size = max(1, chunk_size)

    def chunked(items: List) -> List[List]:
        return [items[i : i + size] for i in range(0, len(items), size)]

    def run_serial() -> List[List]:
        if initializer is not None:
            initializer(*initargs)
        out: List[List] = []
        for index, wave in enumerate(staged):
            wave_out: List = []
            wave_started = time.perf_counter()
            with obs_span("wave", index=index, size=len(wave)):
                for chunk in chunked(wave):
                    chunk_started = time.perf_counter()
                    wave_out.extend(worker(chunk))
                    if telemetry is not None:
                        telemetry.record_local(
                            index, len(chunk), time.perf_counter() - chunk_started
                        )
            if telemetry is not None:
                telemetry.end_group(
                    index, wall_seconds=time.perf_counter() - wave_started
                )
            out.append(wave_out)
        return out

    want_parallel = (
        parallel if parallel is not None else (max_workers or 0) > 1 and total > 1
    )
    if not want_parallel:
        if telemetry is not None:
            telemetry.mode = "serial"
        return "serial", run_serial(), None
    try:
        out: List[List] = []
        pool_worker = worker
        pool_initializer = initializer
        pool_initargs = initargs
        if telemetry is not None:
            # Wrap the consumer's worker so every task returns a telemetry
            # envelope beside its results (repro.obs.remote protocol).
            telemetry.arm()
            pool_worker = obs_remote.run_telemetry_chunk
            pool_initializer = obs_remote.telemetry_init
            pool_initargs = (worker, initializer, initargs, telemetry.carrier.to_dict())
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=pool_initializer,
            initargs=pool_initargs,
        ) as pool:
            for index, wave in enumerate(staged):
                wave_out: List = []
                wave_started = time.perf_counter()
                with obs_span("wave", index=index, size=len(wave), parallel=True) as wave_span:
                    if telemetry is not None:
                        payloads = [
                            telemetry.payload({"wave": index, "chunk": j}, chunk)
                            for j, chunk in enumerate(chunked(wave))
                        ]
                        for envelope, payload in pool.map(pool_worker, payloads):
                            telemetry.absorb(envelope, wave_span, index)
                            wave_out.extend(payload)
                    else:
                        for payload in pool.map(pool_worker, chunked(wave)):
                            wave_out.extend(payload)
                if telemetry is not None:
                    telemetry.end_group(
                        index, wall_seconds=time.perf_counter() - wave_started
                    )
                out.append(wave_out)
        if telemetry is not None:
            telemetry.mode = "parallel"
        return "parallel", out, None
    except Exception as error:  # pool unavailable: degrade, don't fail
        if telemetry is not None:
            telemetry.reset()
            telemetry.mode = "serial-fallback"
        return "serial-fallback", run_serial(), f"{type(error).__name__}: {error}"


def map_shards(
    worker,
    tasks: Sequence,
    *,
    max_workers: Optional[int] = None,
    chunk_size: int = 8,
    parallel: Optional[bool] = None,
    initializer=None,
    initargs: tuple = (),
    telemetry: Optional[obs_remote.FanoutTelemetry] = None,
):
    """Fan ``tasks`` across a process pool in order-preserving chunks.

    ``worker`` must be a module-level (picklable) function taking one chunk
    (a list of tasks) and returning a list of results; ``initializer`` runs
    once per worker process.  The degrade contract matches the batch
    scheduler's: any pool failure — sandboxes that forbid ``fork``, pickling
    regressions — falls back to running the same chunks serially in-process
    (calling ``initializer`` locally first) rather than failing the request.

    Returns ``(mode, results, error)`` where mode is ``"serial"`` /
    ``"parallel"`` / ``"serial-fallback"`` and results concatenate the
    chunk results in task order.  This is the corpus-level fan-out the
    mass-evaluation harness runs on; the function-level fan-out above
    shares its shape — including the optional ``telemetry`` collector,
    which grafts worker span subtrees under the per-chunk shard spans,
    folds worker metric deltas under a ``worker`` label, and accumulates
    the shard-level utilization/straggler statistics (all chunks form one
    barrier group, index 0).
    """
    items = list(tasks)
    chunks = [items[i : i + max(1, chunk_size)] for i in range(0, len(items), max(1, chunk_size))]

    def run_serial() -> List:
        if initializer is not None:
            initializer(*initargs)
        out: List = []
        started = time.perf_counter()
        for index, chunk in enumerate(chunks):
            chunk_started = time.perf_counter()
            with obs_span("shard", index=index, size=len(chunk)):
                out.extend(worker(chunk))
            if telemetry is not None:
                telemetry.record_local(
                    0, len(chunk), time.perf_counter() - chunk_started
                )
        if telemetry is not None:
            telemetry.end_group(
                0, wall_seconds=time.perf_counter() - started, kind="shards"
            )
        return out

    want_parallel = (
        parallel if parallel is not None else (max_workers or 0) > 1 and len(items) > 1
    )
    if not want_parallel:
        if telemetry is not None:
            telemetry.mode = "serial"
        return "serial", run_serial(), None
    try:
        results: List = []
        pool_worker = worker
        pool_initializer = initializer
        pool_initargs = initargs
        if telemetry is not None:
            telemetry.arm()
            pool_worker = obs_remote.run_telemetry_chunk
            pool_initializer = obs_remote.telemetry_init
            pool_initargs = (worker, initializer, initargs, telemetry.carrier.to_dict())
        started = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=pool_initializer,
            initargs=pool_initargs,
        ) as pool:
            if telemetry is not None:
                payloads = [
                    telemetry.payload({"shard": index}, chunk)
                    for index, chunk in enumerate(chunks)
                ]
                for index, (envelope, payload) in enumerate(
                    pool.map(pool_worker, payloads)
                ):
                    # The worker's span subtree grafts under this shard span,
                    # so the merged trace shows the chunk on its worker lane.
                    with obs_span("shard", index=index, parallel=True) as shard_span:
                        telemetry.absorb(envelope, shard_span, 0)
                        results.extend(payload)
            else:
                for index, payload in enumerate(pool.map(pool_worker, chunks)):
                    with obs_span("shard", index=index, parallel=True):
                        results.extend(payload)
        if telemetry is not None:
            telemetry.end_group(
                0, wall_seconds=time.perf_counter() - started, kind="shards"
            )
            telemetry.mode = "parallel"
        return "parallel", results, None
    except Exception as error:  # pool unavailable: degrade, don't fail
        if telemetry is not None:
            telemetry.reset()
            telemetry.mode = "serial-fallback"
        return "serial-fallback", run_serial(), f"{type(error).__name__}: {error}"


# -- process-pool worker ------------------------------------------------------
#
# Worker state is rebuilt per process from (source, local_crate, config):
# engines are not picklable, and content fingerprints recomputed from the same
# source are identical across processes, so records made by workers address
# the same cache slots the parent would use.

_WORKER_ENGINE: Optional[FlowEngine] = None
_WORKER_FP: Optional[FingerprintIndex] = None


def _init_worker(source: str, local_crate: str, config_kwargs: dict) -> None:
    global _WORKER_ENGINE, _WORKER_FP
    program = parse_program(source, local_crate=local_crate)
    checked = check_program(program)
    _WORKER_ENGINE = FlowEngine(checked, config=AnalysisConfig(**config_kwargs))
    _WORKER_FP = FingerprintIndex(
        _WORKER_ENGINE.lowered,
        _WORKER_ENGINE.signatures,
        _WORKER_ENGINE.local_crate,
        _WORKER_ENGINE.call_graph,
    )


def _analyze_batch(names: List[str]) -> List[dict]:
    assert _WORKER_ENGINE is not None and _WORKER_FP is not None
    condition = config_cache_key(_WORKER_ENGINE.config)
    out: List[dict] = []
    for name in names:
        result = _WORKER_ENGINE.analyze_function(name)
        fingerprint = _WORKER_FP.record_fingerprint(name, _WORKER_ENGINE.config)
        out.append(FunctionRecord.from_result(result, fingerprint, condition).to_json_dict())
    return out


def _render_batch(names: List[str]) -> List[tuple]:
    """Analyse + pretty-render a batch (the ``repro analyze --workers`` unit).

    Returns ``(name, rendered body, dependency sizes)`` tuples so the CLI can
    reassemble its serial output byte-for-byte regardless of wave order.
    """
    from repro.mir.pretty import pretty_body

    assert _WORKER_ENGINE is not None
    out: List[tuple] = []
    for name in names:
        result = _WORKER_ENGINE.analyze_function(name)
        out.append(
            (
                name,
                pretty_body(result.body, result.annotations()),
                dict(result.dependency_sizes()),
            )
        )
    return out


# -- corpus-level wave workers -------------------------------------------------
#
# The same wave protocol lifted to many crates at once: tasks are
# (crate index, function name) pairs, wave i merges wave i of every crate's
# own condensation, and worker state is the list of engines rebuilt from the
# crates' sources.  This is the fan-out the three-way engine benchmark and
# batch `repro analyze --workers` ride on.

_CORPUS_ENGINES: Optional[List[FlowEngine]] = None


def _init_corpus_worker(sources: List[tuple], config_kwargs: dict) -> None:
    global _CORPUS_ENGINES
    config = AnalysisConfig(**config_kwargs)
    engines: List[FlowEngine] = []
    for source, local_crate in sources:
        program = parse_program(source, local_crate=local_crate)
        engines.append(FlowEngine(check_program(program), config=config))
    _CORPUS_ENGINES = engines


def _corpus_sizes_batch(tasks: List[tuple]) -> List[tuple]:
    """Analyse ``(crate index, fn name)`` tasks; returns dependency sizes."""
    assert _CORPUS_ENGINES is not None
    out: List[tuple] = []
    for crate_index, fn_name in tasks:
        result = _CORPUS_ENGINES[crate_index].analyze_function(fn_name)
        out.append((crate_index, fn_name, result.dependency_sizes()))
    return out


def corpus_waves(engines: Sequence[FlowEngine]) -> List[List[tuple]]:
    """Merge each crate's SCC waves position-wise into global corpus waves.

    Wave ``i`` of the result holds wave ``i`` of every crate — sound because
    crates are independent of each other, so only the intra-crate
    callees-first order constrains scheduling.
    """
    per_crate = [
        schedule_waves(engine.call_graph, engine.local_function_names())
        for engine in engines
    ]
    depth = max((len(waves) for waves in per_crate), default=0)
    merged: List[List[tuple]] = []
    for level in range(depth):
        wave: List[tuple] = []
        for crate_index, waves in enumerate(per_crate):
            if level < len(waves):
                wave.extend((crate_index, name) for name in waves[level])
        merged.append(wave)
    return merged


@dataclass
class BatchResult:
    """Outcome of one scheduled batch."""

    mode: str  # "serial" | "parallel" | "serial-fallback"
    waves: List[List[str]]
    records: Dict[str, FunctionRecord] = field(default_factory=dict)
    cached: List[str] = field(default_factory=list)
    seconds: float = 0.0
    error: Optional[str] = None  # why a parallel request fell back, if it did
    # Worker attribution for fanned-out batches (utilization, per-worker
    # busy/cpu/rss, straggler skew) — None when no fan-out was attempted.
    fanout: Optional[dict] = None

    def computed(self) -> int:
        """How many functions were actually (re)analysed this batch."""
        return len(self.records)

    def to_json_dict(self) -> dict:
        """The batch outcome as carried in ``warm`` responses."""
        return {
            "mode": self.mode,
            "waves": [len(wave) for wave in self.waves],
            "computed": self.computed(),
            "cached": len(self.cached),
            "seconds": round(self.seconds, 6),
            "error": self.error,
            "fanout": self.fanout,
        }


class BatchScheduler:
    """Schedules batch analysis of many functions under one configuration."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        parallel_threshold: int = 24,
        chunk_size: int = 8,
    ):
        self.max_workers = max_workers
        self.parallel_threshold = parallel_threshold
        self.chunk_size = max(1, chunk_size)

    def run(
        self,
        engine: FlowEngine,
        *,
        names: Optional[Sequence[str]] = None,
        store: Optional[SummaryStore] = None,
        fingerprints: Optional[FingerprintIndex] = None,
        source: Optional[str] = None,
        parallel: Optional[bool] = None,
    ) -> BatchResult:
        """Analyse ``names`` (default: every local function) of ``engine``'s
        program, reusing and filling ``store`` when one is given.

        ``parallel=None`` auto-selects; ``True`` forces an attempt (still
        subject to fallback); ``False`` forces serial.  The parallel path
        needs ``source`` to rebuild the program inside workers.
        """
        start = time.perf_counter()
        if names is None:
            names = engine.local_function_names()
        condition = config_cache_key(engine.config)
        waves = schedule_waves(engine.call_graph, names)
        registry = obs_metrics.get_registry()
        wave_sizes = registry.histogram(
            "scheduler_wave_size", buckets=obs_metrics.COUNT_BUCKETS
        )
        for wave in waves:
            wave_sizes.observe(len(wave))

        result = BatchResult(mode="serial", waves=waves)

        # Serve what the store already has; only the rest is scheduled.
        to_compute: List[str] = []
        for wave in waves:
            for name in wave:
                if store is not None and fingerprints is not None:
                    key = fingerprints.record_key(name, engine.config)
                    data = store.get(key)
                    if data is not None:
                        result.cached.append(name)
                        continue
                to_compute.append(name)

        want_parallel = (
            parallel
            if parallel is not None
            else len(to_compute) >= self.parallel_threshold
        )
        can_parallel = source is not None and (self.max_workers or 2) > 1
        if want_parallel and can_parallel:
            try:
                mode, error = self._run_parallel(engine, source, waves, set(to_compute), result)
                result.mode = mode
                result.error = error
            except Exception as error:  # worker rebuild failed: degrade, don't fail
                result.records.clear()
                result.error = f"{type(error).__name__}: {error}"
                self._run_serial(engine, waves, to_compute, fingerprints, condition, result)
                result.mode = "serial-fallback"
        else:
            self._run_serial(engine, waves, to_compute, fingerprints, condition, result)
            if parallel is True and not can_parallel:
                # An explicit parallel request was dropped: say so instead of
                # looking like a deliberately serial run.
                result.mode = "serial-fallback"
                result.error = (
                    "parallel requested but unavailable: "
                    + ("no source provided" if source is None else "max_workers == 1")
                )

        if store is not None:
            for record in result.records.values():
                key = fingerprints.record_key(record.fn_name, engine.config) if fingerprints else None
                if key is not None:
                    store.put(key, record.to_json_dict())

        result.seconds = time.perf_counter() - start
        registry.counter("scheduler_batches_total", mode=result.mode).inc()
        registry.histogram("stage_seconds", stage="batch").observe(result.seconds)
        return result

    def _run_serial(
        self,
        engine: FlowEngine,
        waves: List[List[str]],
        to_compute: Sequence[str],
        fingerprints: Optional[FingerprintIndex],
        condition: str,
        result: BatchResult,
    ) -> None:
        pending = set(to_compute)
        for index, wave in enumerate(waves):
            scheduled = [name for name in wave if name in pending]
            if not scheduled:
                continue
            with obs_span("wave", index=index, size=len(scheduled)):
                for name in scheduled:
                    flow = engine.analyze_function(name)
                    fingerprint = (
                        fingerprints.record_fingerprint(name, engine.config)
                        if fingerprints is not None
                        else ""
                    )
                    result.records[name] = FunctionRecord.from_result(
                        flow, fingerprint, condition
                    )

    def _run_parallel(
        self,
        engine: FlowEngine,
        source: str,
        waves: List[List[str]],
        to_compute: set,
        result: BatchResult,
    ):
        """Fan the scheduled waves across :func:`run_waves`' persistent pool.

        Returns ``(mode, error)`` from the wave driver; a pool failure is
        absorbed there (the same chunks run serially in-process against a
        worker engine rebuilt from ``source``), so records are valid in every
        mode.
        """
        config_kwargs = dataclasses.asdict(engine.config)
        scheduled = [[n for n in wave if n in to_compute] for wave in waves]
        telemetry = obs_remote.FanoutTelemetry(max_workers=self.max_workers)
        mode, wave_results, error = run_waves(
            _analyze_batch,
            scheduled,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            parallel=True,
            initializer=_init_worker,
            initargs=(source, engine.local_crate, config_kwargs),
            telemetry=telemetry,
        )
        result.fanout = telemetry.to_json_dict()
        for payload in wave_results:
            for data in payload:
                record = FunctionRecord.from_json_dict(data)
                result.records[record.fn_name] = record
        return mode, error
