"""Incremental analysis service.

The paper's headline claim is that *modular* flow analysis is fast enough for
interactive use (median ~370µs per function).  This package turns the one-shot
library into a long-lived service that exploits that modularity:

* :mod:`repro.service.cache` — a content-addressed :class:`SummaryStore`
  keyed by (function fingerprint, analysis condition) with an in-memory LRU
  tier and an optional JSON-on-disk tier,
* :mod:`repro.service.invalidate` — call-graph-aware invalidation: an edit
  evicts exactly the functions whose results could change (just the edited
  function under the modular condition — the paper's modularity payoff),
* :mod:`repro.service.scheduler` — a topological batch scheduler that fans
  independent functions out over a process pool,
* :mod:`repro.service.session` — the :class:`AnalysisSession` façade owning a
  mutable workspace of MiniRust sources and answering analyze/slice/ifc
  queries through the cache,
* :mod:`repro.service.protocol` — a line-delimited JSON request/response
  protocol driving a session over stdio (``repro serve`` / ``repro query``),
* :mod:`repro.service.locks` — the readers–writer lock shared sessions use,
* :mod:`repro.service.persist` — on-disk workspace persistence (manifest +
  cache tier) so a restarted server answers its first query warm,
* :mod:`repro.service.server` — the concurrent front door: a thread-pool TCP
  server multiplexing NDJSON and JSON-RPC clients over shared, RW-locked,
  persistent sessions (``repro serve --port``).
"""

from repro.service.cache import (
    CacheKey,
    CacheStats,
    FingerprintIndex,
    FunctionRecord,
    StoreBackedSummaryProvider,
    SummaryStore,
    config_cache_key,
)
from repro.service.invalidate import InvalidationPlan, apply_invalidation, plan_invalidation
from repro.service.locks import RWLock
from repro.service.persist import (
    has_workspace,
    list_workspaces,
    load_workspace,
    open_or_create_workspace,
    save_workspace,
)
from repro.service.scheduler import BatchResult, BatchScheduler, schedule_waves
from repro.service.session import AnalysisSession
from repro.service.protocol import AnalysisService, serve
from repro.service.server import (
    ConnectionHandler,
    SessionHandle,
    ThreadedAnalysisServer,
    WorkspaceRegistry,
)

__all__ = [
    "AnalysisService",
    "AnalysisSession",
    "BatchResult",
    "BatchScheduler",
    "CacheKey",
    "CacheStats",
    "ConnectionHandler",
    "FingerprintIndex",
    "FunctionRecord",
    "InvalidationPlan",
    "RWLock",
    "SessionHandle",
    "StoreBackedSummaryProvider",
    "SummaryStore",
    "ThreadedAnalysisServer",
    "WorkspaceRegistry",
    "apply_invalidation",
    "config_cache_key",
    "has_workspace",
    "list_workspaces",
    "load_workspace",
    "open_or_create_workspace",
    "plan_invalidation",
    "save_workspace",
    "schedule_waves",
    "serve",
]
