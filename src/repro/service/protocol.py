"""Line-delimited JSON protocol for driving an :class:`AnalysisSession`.

One request per line, one response per line, ordered; this is the transport
behind ``repro serve``.  A request looks like::

    {"id": 1, "method": "analyze", "params": {"function": "get_count",
     "condition": {"whole_program": true}}}

and its response::

    {"id": 1, "ok": true, "result": {...}}

Errors never kill the loop: a malformed line or a failing query produces an
``{"ok": false, "error": ...}`` response and the service keeps reading.  The
``shutdown`` method ends the loop (EOF does too).

Methods: ``open``, ``update``, ``close``, ``analyze``, ``slice``, ``ifc``,
``warm``, ``stats``, ``ping``, ``shutdown``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Optional

from repro.core.config import AnalysisConfig
from repro.errors import ReproError
from repro.service.session import AnalysisSession


class ProtocolError(ReproError):
    """A malformed request (bad JSON, unknown method, missing params)."""


def condition_from_params(params: dict) -> Optional[AnalysisConfig]:
    """Build an :class:`AnalysisConfig` from a request's ``condition`` block."""
    condition = params.get("condition")
    if condition is None:
        return None
    if not isinstance(condition, dict):
        raise ProtocolError("`condition` must be an object of boolean flags")
    known = {f.name for f in dataclasses.fields(AnalysisConfig)}
    unknown = set(condition) - known
    if unknown:
        raise ProtocolError(f"unknown condition flags: {sorted(unknown)}")
    return AnalysisConfig(**condition)


class AnalysisService:
    """Dispatches protocol requests onto one session."""

    def __init__(self, session: Optional[AnalysisSession] = None):
        self.session = session or AnalysisSession()
        self.requests_handled = 0
        self.shutdown_requested = False

    # -- dispatch ----------------------------------------------------------------

    def handle_line(self, line: str) -> dict:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return {"id": None, "ok": False, "error": f"invalid JSON: {error}"}
        if not isinstance(request, dict):
            return {"id": None, "ok": False, "error": "request must be a JSON object"}
        return self.handle(request)

    def handle(self, request: dict) -> dict:
        request_id = request.get("id")
        self.requests_handled += 1
        try:
            method = request.get("method")
            if not isinstance(method, str):
                raise ProtocolError("missing `method`")
            handler = getattr(self, f"_method_{method}", None)
            if handler is None:
                raise ProtocolError(f"unknown method {method!r}")
            params = request.get("params", {})
            if not isinstance(params, dict):
                raise ProtocolError("`params` must be an object")
            result = handler(params)
            return {"id": request_id, "ok": True, "result": result}
        except ReproError as error:
            return {"id": request_id, "ok": False, "error": str(error)}
        except (KeyError, TypeError, ValueError) as error:
            return {"id": request_id, "ok": False, "error": f"bad request: {error}"}
        except Exception as error:  # the loop survives anything a query throws
            return {
                "id": request_id,
                "ok": False,
                "error": f"internal error: {type(error).__name__}: {error}",
            }

    # -- methods -----------------------------------------------------------------

    def _method_ping(self, params: dict) -> dict:
        return {"pong": True, "requests_handled": self.requests_handled}

    def _method_open(self, params: dict) -> dict:
        source = params.get("source")
        if not isinstance(source, str):
            raise ProtocolError("`open` needs a string `source`")
        unit = params.get("unit", "main")
        local_crate = params.get("local_crate")
        previous_crate = self.session.local_crate
        if local_crate is not None:
            self.session.local_crate = str(local_crate)
        try:
            return self.session.open_unit(str(unit), source)
        except Exception:
            # Keep the failed open fully transactional: the crate selection
            # must roll back along with the unit map.
            self.session.local_crate = previous_crate
            raise

    def _method_update(self, params: dict) -> dict:
        source = params.get("source")
        if not isinstance(source, str):
            raise ProtocolError("`update` needs a string `source`")
        return self.session.update_unit(str(params.get("unit", "main")), source)

    def _method_close(self, params: dict) -> dict:
        return self.session.close_unit(str(params.get("unit", "main")))

    def _method_analyze(self, params: dict) -> dict:
        return self.session.analyze(
            function=params.get("function"),
            config=condition_from_params(params),
        )

    def _method_slice(self, params: dict) -> dict:
        function = params.get("function")
        variable = params.get("variable")
        if not isinstance(function, str) or not isinstance(variable, str):
            raise ProtocolError("`slice` needs string `function` and `variable`")
        return self.session.slice(
            function,
            variable,
            direction=str(params.get("direction", "backward")),
            config=condition_from_params(params),
        )

    def _method_ifc(self, params: dict) -> dict:
        return self.session.ifc(
            secret_types=[str(t) for t in params.get("secret_types", [])],
            secret_variables=[str(v) for v in params.get("secret_variables", [])],
            sinks=[str(s) for s in params.get("sinks", [])],
            config=condition_from_params(params),
        )

    def _method_warm(self, params: dict) -> dict:
        parallel = params.get("parallel")
        if parallel is not None and not isinstance(parallel, bool):
            raise ProtocolError("`parallel` must be a boolean")
        return self.session.warm(config=condition_from_params(params), parallel=parallel)

    def _method_stats(self, params: dict) -> dict:
        return self.session.stats()

    def _method_shutdown(self, params: dict) -> dict:
        self.shutdown_requested = True
        return {"shutdown": True, "requests_handled": self.requests_handled}


def serve(in_stream: IO[str], out_stream: IO[str], session: Optional[AnalysisSession] = None) -> int:
    """Run the request/response loop until EOF or ``shutdown``; returns 0."""
    service = AnalysisService(session)
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        response = service.handle_line(line)
        out_stream.write(json.dumps(response, sort_keys=True) + "\n")
        try:
            out_stream.flush()
        except (AttributeError, OSError):
            pass
        if service.shutdown_requested:
            break
    return 0
