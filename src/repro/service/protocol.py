"""Line-delimited JSON protocol for driving an :class:`AnalysisSession`.

One request per line, one response per line, ordered; this is the transport
behind ``repro serve``.  A request looks like::

    {"id": 1, "method": "analyze", "params": {"function": "get_count",
     "condition": {"whole_program": true}}}

and its response::

    {"id": 1, "ok": true, "result": {...}}

Errors never kill the loop: a malformed line or a failing query produces an
``{"ok": false, "error": ..., "error_code": ...}`` response and the service
keeps reading.  ``error`` stays a human-readable string; ``error_code`` is a
stable machine-readable code (``unknown_function``, ``unknown_variable``,
``position_out_of_range``, ``protocol_error``, ...) that clients dispatch on
instead of parsing messages.  The ``shutdown`` method ends the loop (EOF
does too).

Methods: ``open``, ``update``, ``close``, ``analyze``, ``slice``, ``focus``,
``ifc``, ``warm``, ``stats``, ``metrics``, ``version``, ``ping``,
``shutdown``.  The concurrent front door (:mod:`repro.service.server`) adds
a mux-level ``workspace`` method and serves this dialect alongside JSON-RPC
on the same sockets.  ``docs/PROTOCOL.md`` documents every request/response
shape with replayable transcripts.

Telemetry: every response carries a ``trace_id``; any request may set
``"trace": true`` (top level, next to ``method``) to get the request's span
tree back under ``trace``, and ``"profile": true`` (optional
``"profile_hz"``) to sample the request with the span-stack profiler and
get the sample summary back under ``profile``; ``analyze`` accepts an
optional ``source`` param to open-and-analyze in one round trip.  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import IO, Optional

from repro.core.config import AnalysisConfig
from repro.errors import QueryError, ReproError
from repro.obs import get_registry, new_trace_id, start_trace
from repro.obs.profile import SamplingProfiler
from repro.service.session import AnalysisSession
from repro.version import __version__


class ProtocolError(ReproError):
    """A malformed request (bad JSON, unknown method, missing params)."""

    code = "protocol_error"


def condition_from_params(params: dict) -> Optional[AnalysisConfig]:
    """Build an :class:`AnalysisConfig` from a request's ``condition`` block."""
    condition = params.get("condition")
    if condition is None:
        return None
    if not isinstance(condition, dict):
        raise ProtocolError("`condition` must be an object of boolean flags")
    known = {f.name for f in dataclasses.fields(AnalysisConfig)}
    unknown = set(condition) - known
    if unknown:
        raise ProtocolError(f"unknown condition flags: {sorted(unknown)}")
    return AnalysisConfig(**condition)


class AnalysisService:
    """Dispatches protocol requests onto one session."""

    def __init__(self, session: Optional[AnalysisSession] = None):
        self.session = session or AnalysisSession()
        self.requests_handled = 0
        self.shutdown_requested = False

    # -- dispatch ----------------------------------------------------------------

    @staticmethod
    def _error_response(request_id, message: str, code: str) -> dict:
        return {"id": request_id, "ok": False, "error": message, "error_code": code}

    def handle_line(self, line: str) -> dict:
        """Parse one NDJSON request line and dispatch it; never raises."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return self._error_response(None, f"invalid JSON: {error}", "parse_error")
        if not isinstance(request, dict):
            return self._error_response(
                None, "request must be a JSON object", "parse_error"
            )
        return self.handle(request)

    def handle(self, request: dict) -> dict:
        """Dispatch one parsed request to its ``_method_*`` handler.

        Always returns a response object; every failure mode maps to an
        ``ok: false`` response with a stable ``error_code`` — the loop (and
        the server connection above it) survives anything a query throws.

        Telemetry contract: every response carries a ``trace_id`` (a
        client-supplied one is honoured, so the front-door server can stamp
        requests before dispatch); ``"trace": true`` on any request wraps
        the handler in a trace and returns the span tree under ``trace``;
        ``"profile": true`` additionally runs the sampling profiler for the
        request's duration (optional ``"profile_hz"``) and returns the
        sample summary under ``profile`` — profiling implies an internal
        trace, because samples attribute to span stacks; each request lands
        in ``requests_total``/``request_seconds``.
        """
        request_id = request.get("id")
        self.requests_handled += 1
        trace_id = request.get("trace_id")
        trace_id = str(trace_id) if trace_id else new_trace_id()
        method = request.get("method")
        started = time.perf_counter()
        trace = None
        want_trace = request.get("trace") is True
        profiler = None
        try:
            if not isinstance(method, str):
                raise ProtocolError("missing `method`")
            handler = getattr(self, f"_method_{method}", None)
            if handler is None:
                raise ProtocolError(f"unknown method {method!r}")
            params = request.get("params", {})
            if not isinstance(params, dict):
                raise ProtocolError("`params` must be an object")
            if request.get("profile") is True:
                hz = request.get("profile_hz")
                if hz is not None and not isinstance(hz, (int, float)):
                    raise ProtocolError("`profile_hz` must be a number")
                profiler = SamplingProfiler(hz=float(hz) if hz else 97.0)
            if profiler is not None:
                # Sampling must begin before the trace root opens: stack
                # publication only sees spans entered while a profiler is
                # attached, so a late start would attribute the request to
                # the method's children instead of the method span itself.
                profiler.start()
            try:
                if want_trace or profiler is not None:
                    with start_trace(method, trace_id=trace_id) as trace:
                        result = handler(params)
                else:
                    result = handler(params)
            finally:
                if profiler is not None:
                    profiler.stop()
            response = {"id": request_id, "ok": True, "result": result}
        except QueryError as error:
            response = self._error_response(request_id, str(error), error.code)
        except ProtocolError as error:
            response = self._error_response(request_id, str(error), error.code)
        except ReproError as error:
            response = self._error_response(request_id, str(error), "repro_error")
        except (KeyError, TypeError, ValueError) as error:
            response = self._error_response(request_id, f"bad request: {error}", "bad_request")
        except Exception as error:  # the loop survives anything a query throws
            response = self._error_response(
                request_id,
                f"internal error: {type(error).__name__}: {error}",
                "internal_error",
            )
        elapsed = time.perf_counter() - started
        method_label = method if isinstance(method, str) else "invalid"
        registry = get_registry()
        registry.histogram("request_seconds", method=method_label).observe(elapsed)
        registry.counter(
            "requests_total",
            method=method_label,
            protocol="ndjson",
            status="ok" if response.get("ok") else "error",
        ).inc()
        response["trace_id"] = trace_id
        if trace is not None and want_trace:
            response["trace"] = trace.to_dict()
        if profiler is not None:
            response["profile"] = profiler.profile.to_dict()
        return response

    # -- methods -----------------------------------------------------------------

    def _method_ping(self, params: dict) -> dict:
        return {
            "pong": True,
            "version": __version__,
            "requests_handled": self.requests_handled,
        }

    def _method_version(self, params: dict) -> dict:
        return {"name": "repro-flowistry", "version": __version__}

    def _method_open(self, params: dict) -> dict:
        source = params.get("source")
        if not isinstance(source, str):
            raise ProtocolError("`open` needs a string `source`")
        unit = params.get("unit", "main")
        local_crate = params.get("local_crate")
        previous_crate = self.session.local_crate
        if local_crate is not None:
            self.session.local_crate = str(local_crate)
        try:
            return self.session.open_unit(str(unit), source)
        except Exception:
            # Keep the failed open fully transactional: the crate selection
            # must roll back along with the unit map.
            self.session.local_crate = previous_crate
            raise

    def _method_update(self, params: dict) -> dict:
        source = params.get("source")
        if not isinstance(source, str):
            raise ProtocolError("`update` needs a string `source`")
        return self.session.update_unit(str(params.get("unit", "main")), source)

    def _method_close(self, params: dict) -> dict:
        return self.session.close_unit(str(params.get("unit", "main")))

    def _method_analyze(self, params: dict) -> dict:
        source = params.get("source")
        if source is not None:
            # Open-and-analyze in one request: the single round trip whose
            # trace covers the whole pipeline (parse → fixpoint → cache).
            # Callers routing through the concurrent server take the write
            # lock for it (see repro.service.server.is_write_request).
            if not isinstance(source, str):
                raise ProtocolError("`source` must be a string when present")
            self._method_open(params)
        return self.session.analyze(
            function=params.get("function"),
            config=condition_from_params(params),
        )

    def _method_slice(self, params: dict) -> dict:
        function = params.get("function")
        variable = params.get("variable")
        if not isinstance(function, str) or not isinstance(variable, str):
            raise ProtocolError("`slice` needs string `function` and `variable`")
        return self.session.slice(
            function,
            variable,
            direction=str(params.get("direction", "backward")),
            config=condition_from_params(params),
        )

    def _method_focus(self, params: dict) -> dict:
        line = params.get("line")
        col = params.get("col")
        function = params.get("function")
        variable = params.get("variable")
        by_cursor = line is not None and col is not None
        by_name = isinstance(function, str) and isinstance(variable, str)
        if not by_cursor and not by_name:
            raise ProtocolError(
                "`focus` needs integer `line` and `col`, or string `function` and `variable`"
            )
        if by_cursor and not (isinstance(line, int) and isinstance(col, int)):
            raise ProtocolError("`focus` positions must be 1-based integers")
        unit = params.get("unit")
        return self.session.focus(
            line=line if by_cursor else None,
            col=col if by_cursor else None,
            function=function if by_name else None,
            variable=variable if by_name else None,
            direction=str(params.get("direction", "both")),
            config=condition_from_params(params),
            unit=str(unit) if unit is not None else None,
        )

    def _method_ifc(self, params: dict) -> dict:
        return self.session.ifc(
            secret_types=[str(t) for t in params.get("secret_types", [])],
            secret_variables=[str(v) for v in params.get("secret_variables", [])],
            sinks=[str(s) for s in params.get("sinks", [])],
            config=condition_from_params(params),
        )

    def _method_warm(self, params: dict) -> dict:
        parallel = params.get("parallel")
        if parallel is not None and not isinstance(parallel, bool):
            raise ProtocolError("`parallel` must be a boolean")
        return self.session.warm(config=condition_from_params(params), parallel=parallel)

    def _method_stats(self, params: dict) -> dict:
        return self.session.stats()

    def _method_metrics(self, params: dict) -> dict:
        """The process-wide metrics registry snapshot (plus session counters).

        Counters/histograms are cumulative since process start; consumers
        wanting a window take two snapshots and diff
        (:func:`repro.obs.snapshot_delta`).
        """
        snapshot = get_registry().snapshot()
        snapshot["session"] = {
            "counters": dict(self.session.counters),
            "store": self.session.store.stats.to_dict(),
        }
        return snapshot

    def _method_shutdown(self, params: dict) -> dict:
        self.shutdown_requested = True
        return {"shutdown": True, "requests_handled": self.requests_handled}


def serve(in_stream: IO[str], out_stream: IO[str], session: Optional[AnalysisSession] = None) -> int:
    """Run the request/response loop until EOF or ``shutdown``; returns 0."""
    service = AnalysisService(session)
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        response = service.handle_line(line)
        out_stream.write(json.dumps(response, sort_keys=True) + "\n")
        try:
            out_stream.flush()
        except (AttributeError, OSError):
            pass
        if service.shutdown_requested:
            break
    return 0
