"""The :class:`AnalysisSession` façade: a mutable workspace served from cache.

A session owns named MiniRust source *units* (think open editor buffers or
crate files), keeps them parsed/checked/lowered, and answers ``analyze``,
``slice`` and ``ifc`` queries.  Every per-function answer flows through the
content-addressed :class:`~repro.service.cache.SummaryStore`, so a repeated
query over unchanged code is a cache lookup, and applying an edit re-runs
only what :mod:`repro.service.invalidate` says could have changed.

The interaction-time contract this encodes is the paper's: modular analysis
makes per-function results independent of other bodies, so in the common
(modular) configuration an edit costs one re-analysis regardless of
workspace size.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.apps.ifc import IfcChecker, IfcPolicy
from repro.apps.slicer import lines_of_locations
from repro.core.analysis import FunctionFlowResult
from repro.core.config import MODULAR, AnalysisConfig, condition_name
from repro.core.engine import FlowEngine
from repro.errors import QueryError, ReproError
from repro.focus.resolve import resolve_cursor
from repro.focus.table import FocusTable
from repro.lang.parser import parse_program
from repro.lang.typeck import check_program
from repro.mir.callgraph import CallGraph, build_call_graph
from repro.mir.ir import Body
from repro.mir.lower import lower_program
from repro.obs import metrics as obs_metrics
from repro.obs import span as obs_span
from repro.service.cache import (
    FingerprintIndex,
    FunctionRecord,
    StoreBackedSummaryProvider,
    SummaryStore,
    config_cache_key,
)
from repro.service.invalidate import InvalidationPlan, apply_invalidation, plan_both_conditions
from repro.service.scheduler import BatchScheduler


class AnalysisSession:
    """A long-lived, incremental analysis workspace."""

    def __init__(
        self,
        store: Optional[SummaryStore] = None,
        cache_dir: Optional[str] = None,
        max_entries: int = 4096,
        local_crate: str = "main",
        scheduler: Optional[BatchScheduler] = None,
    ):
        self.store = store if store is not None else SummaryStore(
            max_entries=max_entries, disk_dir=cache_dir
        )
        self.scheduler = scheduler or BatchScheduler()
        self.local_crate = local_crate
        self.generation = 0
        self.counters: Dict[str, int] = {
            "analyze_queries": 0,
            "slice_queries": 0,
            "focus_queries": 0,
            "ifc_queries": 0,
            "edits": 0,
            "memo_hits": 0,
        }
        self.last_plans: Optional[Dict[bool, InvalidationPlan]] = None
        self._units: "OrderedDict[str, str]" = OrderedDict()
        self._checked = None
        self._lowered = None
        self._call_graph: Optional[CallGraph] = None
        self._fingerprints: Optional[FingerprintIndex] = None
        self._engines: Dict[str, FlowEngine] = {}
        # (condition, fn_name, fingerprint) -> FunctionFlowResult; rich objects
        # for slice/forward queries, keyed by content so edits self-invalidate.
        self._result_memo: Dict[Tuple[str, str, str], FunctionFlowResult] = {}
        # Serialises cache-miss computation when the session is shared across
        # threads (the concurrent server's read path): warm queries are pure
        # store lookups and stay fully concurrent, but the dataflow engines
        # keep per-run state (the recursive summary provider's taint/height
        # tracking), so only one thread may be *computing* at a time.
        self._compute_lock = threading.RLock()
        # Counter increments happen on the concurrent query path too.
        self._counter_lock = threading.Lock()

    def _bump(self, counter: str) -> None:
        """Increment one stats counter without losing concurrent updates."""
        with self._counter_lock:
            self.counters[counter] += 1

    # -- workspace ---------------------------------------------------------------

    @property
    def source(self) -> str:
        """The joined workspace source (units concatenated with newlines)."""
        return "\n".join(self._units.values())

    def unit_names(self) -> List[str]:
        """The open units' names, in workspace (concatenation) order."""
        return list(self._units)

    def units(self) -> List[Tuple[str, str]]:
        """``(name, source)`` of every open unit, in workspace order.

        The snapshot that workspace persistence serialises into the manifest.
        """
        return list(self._units.items())

    def open_unit(self, name: str, source: str) -> dict:
        """Open (or replace — an *edit*) one source unit.

        Workspace changes are transactional: if the new workspace fails to
        parse/check/lower, the unit map and all derived state are left as
        they were and the error propagates to the caller.
        """
        existed = name in self._units
        previous = self._units.get(name)
        self._units[name] = source
        try:
            return self._rebuild()
        except Exception:
            if existed:
                self._units[name] = previous
            else:
                del self._units[name]
            raise

    def update_unit(self, name: str, source: str) -> dict:
        """Apply an edit to an already-open unit (errors on unknown units)."""
        if name not in self._units:
            raise QueryError(f"no open unit named {name!r}", code=QueryError.UNKNOWN_UNIT)
        return self.open_unit(name, source)

    def open_units(self, units: Iterable[Tuple[str, str]]) -> dict:
        """Open (or replace) several units with a *single* workspace rebuild.

        Units in one workspace may reference each other's functions, so
        opening them one at a time can fail on intermediate states that are
        not closed under calls.  This entry point — used by workspace
        restore — installs the whole batch and rebuilds once, with the same
        transactional guarantee as :meth:`open_unit`: on failure the unit map
        and derived state are exactly as before.
        """
        items = list(units)
        previous = OrderedDict(self._units)
        for name, source in items:
            self._units[str(name)] = source
        try:
            return self._rebuild()
        except Exception:
            self._units = previous
            raise

    def close_unit(self, name: str) -> dict:
        """Remove one unit from the workspace (transactional, like ``open``)."""
        if name not in self._units:
            raise QueryError(f"no open unit named {name!r}", code=QueryError.UNKNOWN_UNIT)
        previous = self._units[name]
        del self._units[name]
        try:
            return self._rebuild()
        except Exception:
            self._units[name] = previous
            raise

    def _require_workspace(self) -> None:
        if self._checked is None:
            raise QueryError(
                "no sources opened; send an `open` request first",
                code=QueryError.NO_WORKSPACE,
            )

    def _rebuild(self) -> dict:
        """Re-derive program state after a workspace change and evict exactly
        the cache entries the edit can have affected."""
        with obs_span("rebuild") as sp:
            out = self._rebuild_inner()
            if sp is not None:
                sp.set(
                    generation=out["generation"],
                    functions=out["functions"],
                    evicted_entries=out["evicted_entries"],
                )
            return out

    def _rebuild_inner(self) -> dict:
        old_snapshot = (
            self._fingerprints.snapshot() if self._fingerprints is not None else {}
        )
        old_graph = self._call_graph

        # Derive everything into locals first: if any stage fails, the
        # session keeps serving the previous workspace generation intact.
        program = parse_program(self.source, local_crate=self.local_crate)
        checked = check_program(program)
        lowered = lower_program(checked)
        call_graph = build_call_graph(lowered)
        self._checked = checked
        self._lowered = lowered
        self._call_graph = call_graph
        self._fingerprints = FingerprintIndex(
            lowered,
            checked.signatures,
            program.local_crate,
            call_graph,
        )
        self._engines.clear()
        self.generation += 1

        new_snapshot = self._fingerprints.snapshot()
        body_changed: Set[str] = set()
        sig_changed: Set[str] = set()
        removed: Set[str] = set(old_snapshot) - set(new_snapshot)
        for name, (new_sig, new_body) in new_snapshot.items():
            if name not in old_snapshot:
                continue
            old_sig, old_body = old_snapshot[name]
            if new_sig != old_sig:
                sig_changed.add(name)
            elif new_body != old_body:
                body_changed.add(name)

        evicted_entries = 0
        plans: Optional[Dict[bool, InvalidationPlan]] = None
        if old_graph is not None and (body_changed or sig_changed or removed):
            plans = plan_both_conditions(
                old_graph,
                body_changed=body_changed,
                sig_changed=sig_changed,
                removed=removed,
            )
            registry = obs_metrics.get_registry()
            for wp, plan in plans.items():
                evicted_entries += apply_invalidation(self.store, plan)
                self._purge_memo(plan)
                registry.histogram(
                    "invalidation_cone_size",
                    buckets=obs_metrics.COUNT_BUCKETS,
                    condition="whole_program" if wp else "modular",
                ).observe(len(plan.evict))
            registry.counter("invalidation_entries_total").inc(evicted_entries)
            self._bump("edits")
        self.last_plans = plans

        return {
            "generation": self.generation,
            "units": self.unit_names(),
            "functions": len(self._local_function_names()),
            "body_changed": sorted(body_changed),
            "sig_changed": sorted(sig_changed),
            "removed": sorted(removed),
            "evicted_entries": evicted_entries,
            "invalidation": {
                ("whole_program" if wp else "modular"): plan.to_json_dict()
                for wp, plan in (plans or {}).items()
            },
        }

    def _purge_memo(self, plan: InvalidationPlan) -> None:
        evicted = set(plan.evict)
        dead = [
            key
            for key in self._result_memo
            if key[1] in evicted
            and key[0].startswith(f"wp={int(plan.whole_program)}")
        ]
        for key in dead:
            del self._result_memo[key]

    # -- engines and results -----------------------------------------------------

    def _local_function_names(self) -> List[str]:
        if self._lowered is None:
            return []
        local = self._checked.program.local_crate
        return sorted(
            body.fn_name for body in self._lowered.bodies.values() if body.crate == local
        )

    def function_names(self) -> List[str]:
        """Names of the local-crate functions currently in the workspace."""
        return self._local_function_names()

    def variables_of(self, fn_name: str) -> List[str]:
        """Source-level variable names (args and lets) of one function."""
        body = self._body(fn_name)
        return [local.name for local in body.user_locals() if local.name is not None]

    def engine(self, config: AnalysisConfig) -> FlowEngine:
        """The (lazily created, per-condition) flow engine for ``config``.

        Whole-program engines are wired to the store-backed summary provider
        so their callee summaries round-trip through the cache.
        """
        self._require_workspace()
        key = config_cache_key(config)
        if key not in self._engines:
            with self._compute_lock:
                if key not in self._engines:
                    engine = FlowEngine(self._checked, lowered=self._lowered, config=config)
                    if config.whole_program:
                        engine.set_provider(
                            StoreBackedSummaryProvider(engine, self.store, self._fingerprints)
                        )
                    self._engines[key] = engine
        return self._engines[key]

    def _body(self, fn_name: str) -> Body:
        self._require_workspace()
        body = self._lowered.body(fn_name)
        if body is None:
            raise QueryError(
                f"no function named {fn_name!r} with a body",
                code=QueryError.UNKNOWN_FUNCTION,
            )
        return body

    def _result(self, fn_name: str, config: AnalysisConfig) -> Tuple[FunctionFlowResult, bool]:
        """A full (unserialised) flow result, memoised by content fingerprint."""
        engine = self.engine(config)
        fingerprint = self._fingerprints.record_fingerprint(fn_name, config)
        key = (config_cache_key(config), fn_name, fingerprint)
        # Single atomic .get(): a check-then-index here could race with the
        # memo clear below when the session is shared across threads.
        memoised = self._result_memo.get(key)
        if memoised is not None:
            self._bump("memo_hits")
            return memoised, True
        with self._compute_lock:
            memoised = self._result_memo.get(key)
            if memoised is not None:
                self._bump("memo_hits")
                return memoised, True
            if len(self._result_memo) > 2048:
                self._result_memo.clear()
            result = engine.analyze_function(fn_name)
            self._result_memo[key] = result
            return result, False

    def _record(self, fn_name: str, config: AnalysisConfig) -> Tuple[FunctionRecord, str]:
        """The cached record for one function, computing and storing on miss.

        Returns the record plus its cache label (``"hit"``/``"miss"``) — the
        single path through the store shared by ``analyze`` and ``slice``.
        """
        key = self._fingerprints.record_key(fn_name, config)
        data = self.store.get(key)
        if data is not None:
            return FunctionRecord.from_json_dict(data), "hit"
        with self._compute_lock:
            # Double-check under the lock: a concurrent thread may have just
            # computed and stored this record while we waited.
            data = self.store.get(key)
            if data is not None:
                return FunctionRecord.from_json_dict(data), "hit"
            result, _ = self._result(fn_name, config)
            record = FunctionRecord.from_result(result, key.fingerprint, key.condition)
            self.store.put(key, record.to_json_dict())
            return record, "miss"

    # -- queries -----------------------------------------------------------------

    def analyze(
        self, function: Optional[str] = None, config: Optional[AnalysisConfig] = None
    ) -> dict:
        """Dependency-set sizes per variable, served from the store when warm."""
        config = config or MODULAR
        self._bump("analyze_queries")
        engine = self.engine(config)
        if function is not None:
            self._body(function)  # raises ReproError for unknown functions
            names = [function]
        else:
            names = engine.local_function_names()

        functions: Dict[str, dict] = {}
        hits = 0
        for name in names:
            record, cache = self._record(name, config)
            if cache == "hit":
                hits += 1
            functions[name] = {
                "cache": cache,
                "dependency_sizes": record.dependency_sizes,
            }
        return {
            "condition": condition_name(config),
            "functions": functions,
            "cache_hits": hits,
            "cache_misses": len(names) - hits,
            "stats": self.store.stats.to_dict(),
        }

    def _unit_line_offset(self, unit: Optional[str]) -> int:
        """Line offset of ``unit`` within the joined workspace source.

        The workspace concatenates units with newlines, so a client that
        addresses positions within one document (the LSP model) needs its
        cursor shifted into — and response spans shifted out of — the joined
        coordinate space.
        """
        if unit is None:
            return 0
        if unit not in self._units:
            raise QueryError(f"no open unit named {unit!r}", code=QueryError.UNKNOWN_UNIT)
        offset = 0
        for name, source in self._units.items():
            if name == unit:
                return offset
            offset += source.count("\n") + 1
        return offset

    @staticmethod
    def _shift_focus_response(out: dict, delta: int) -> dict:
        """Shift every line number in a focus response by ``delta``."""
        if delta == 0:
            return out

        def shift_span(span):
            return [span[0] + delta, span[1], span[2] + delta, span[3]]

        for key in ("seed_span", "defining_span", "function_span"):
            if out.get(key):
                out[key] = shift_span(out[key])
        for direction in ("backward", "forward"):
            block = out.get(direction)
            if block:
                block["spans"] = [shift_span(span) for span in block["spans"]]
                block["lines"] = [line + delta for line in block["lines"]]
        return out

    def _focus_table(
        self, fn_name: str, config: AnalysisConfig
    ) -> Tuple[FocusTable, str]:
        """The function's precomputed focus table, served from the store.

        Focus tables go through the same content-addressed cache as analysis
        records: a warm query deserialises the table, a cold one runs the
        dataflow analysis once and tabulates every place, and an edit makes
        the key unreachable (the invalidation plan reclaims the entry).
        """
        key = self._fingerprints.focus_key(fn_name, config)
        data = self.store.get(key)
        if data is not None:
            # The fingerprint hashes the lowered MIR, not source positions:
            # a cached table's locations are valid whenever the key matches,
            # but its spans may predate a pure position shift (an edit above
            # the function).  Re-derive them from the current body.
            table = FocusTable.from_json_dict(data).respan(self._body(fn_name))
            return table, "hit"
        with self._compute_lock:
            data = self.store.get(key)
            if data is not None:
                table = FocusTable.from_json_dict(data).respan(self._body(fn_name))
                return table, "hit"
            result, _ = self._result(fn_name, config)
            table = FocusTable.build(
                result, fingerprint=key.fingerprint, condition=condition_name(config)
            )
            self.store.put(key, table.to_json_dict())
            # The result memo is fingerprint-keyed too, so after a pure position
            # shift it can hold the *old* body; serve current-text spans anyway.
            return table.respan(self._body(fn_name)), "miss"

    def slice(
        self,
        function: str,
        variable: str,
        direction: str = "backward",
        config: Optional[AnalysisConfig] = None,
    ) -> dict:
        """A backward or forward slice, rendered as source line numbers.

        Both directions are served from the function's focus table: the
        all-places tabulation already holds every variable's slice, so a
        repeated query in either direction is a cache hit.
        """
        if direction not in ("backward", "forward"):
            raise QueryError(
                f"unknown slice direction {direction!r}", code=QueryError.INVALID_PARAMS
            )
        config = config or MODULAR
        self._bump("slice_queries")
        body = self._body(function)
        if body.local_by_name(variable) is None:
            raise QueryError(
                f"function {function!r} has no variable {variable!r}",
                code=QueryError.UNKNOWN_VARIABLE,
            )
        table, cache = self._focus_table(function, config)
        entry = table.entry_for_variable(variable)
        locations = entry.backward if direction == "backward" else entry.forward

        return {
            "function": function,
            "variable": variable,
            "direction": direction,
            "condition": condition_name(config),
            "size": len(locations),
            "lines": sorted(lines_of_locations(body, locations)),
            "spans": [list(span.to_tuple()) for span in (
                entry.backward_spans if direction == "backward" else entry.forward_spans
            )],
            "cache": cache,
            "stats": self.store.stats.to_dict(),
        }

    def focus(
        self,
        line: Optional[int] = None,
        col: Optional[int] = None,
        function: Optional[str] = None,
        variable: Optional[str] = None,
        direction: str = "both",
        config: Optional[AnalysisConfig] = None,
        unit: Optional[str] = None,
    ) -> dict:
        """A cursor-driven focus query: span-precise slices in both directions.

        Two addressing modes: a ``(line, col)`` cursor (resolved to the
        enclosing MIR place, the IDE workflow) or an explicit
        ``(function, variable)`` pair.  With ``unit``, cursor positions and
        response spans are relative to that document rather than the joined
        workspace — the multi-document editor contract.  The answer comes
        from the function's precomputed focus table, so every place of a
        function costs one dataflow pass total.
        """
        if direction not in ("backward", "forward", "both"):
            raise QueryError(
                f"unknown focus direction {direction!r}", code=QueryError.INVALID_PARAMS
            )
        config = config or MODULAR
        self._bump("focus_queries")
        self._require_workspace()
        offset = self._unit_line_offset(unit)

        if function is not None and variable is not None:
            body = self._body(function)
            if body.local_by_name(variable) is None:
                raise QueryError(
                    f"function {function!r} has no variable {variable!r}",
                    code=QueryError.UNKNOWN_VARIABLE,
                )
            table, cache = self._focus_table(function, config)
            entry = table.entry_for_variable(variable)
            seed_span = entry.defining_span
            fn_body = body
        elif line is not None and col is not None:
            target = resolve_cursor(
                self._checked, self._lowered, int(line) + offset, int(col)
            )
            fn_body = self._body(target.fn_name)
            table, cache = self._focus_table(target.fn_name, config)
            entry = table.entry_for_place(target.place)
            if entry is None:
                raise QueryError(
                    f"function {target.fn_name!r} has no focus entry for "
                    f"{target.label!r}",
                    code=QueryError.NO_PLACE_AT_POSITION,
                )
            seed_span = target.span
        else:
            raise QueryError(
                "focus needs either (line, col) or (function, variable)",
                code=QueryError.INVALID_PARAMS,
            )

        out = table.response_for(entry, direction)
        out["seed_span"] = list(seed_span.to_tuple()) if not seed_span.is_dummy() else None
        out["function_span"] = (
            list(fn_body.span.to_tuple()) if not fn_body.span.is_dummy() else None
        )
        self._shift_focus_response(out, -offset)
        out["cache"] = cache
        out["stats"] = self.store.stats.to_dict()
        return out

    def ifc(
        self,
        secret_types: Sequence[str] = (),
        secret_variables: Sequence[str] = (),
        sinks: Sequence[str] = (),
        config: Optional[AnalysisConfig] = None,
    ) -> dict:
        """Run the IFC checker over the whole workspace.

        Policies cut across functions, so this query is served by a fresh
        checker rather than the per-function cache.
        """
        self._require_workspace()
        self._bump("ifc_queries")
        policy = IfcPolicy()
        for type_name in secret_types:
            policy.mark_type_secret(type_name)
        for spec in secret_variables:
            if ":" in spec:
                fn_name, variable = spec.split(":", 1)
            else:
                fn_name, variable = "*", spec
            policy.secret_variables.add((fn_name, variable))
        for sink in sinks:
            policy.mark_function_insecure(sink)
        with self._compute_lock:
            checker = IfcChecker(self.source, policy, engine=self.engine(config or MODULAR))
            violations = checker.check_all()
        return {
            "violations": [violation.render() for violation in violations],
            "count": len(violations),
            "report": checker.report(),
        }

    def warm(
        self, config: Optional[AnalysisConfig] = None, parallel: Optional[bool] = None
    ) -> dict:
        """Batch-analyse the whole workspace into the store."""
        config = config or MODULAR
        engine = self.engine(config)
        with self._compute_lock:
            batch = self.scheduler.run(
                engine,
                store=self.store,
                fingerprints=self._fingerprints,
                source=self.source,
                parallel=parallel,
            )
        out = batch.to_json_dict()
        out["condition"] = condition_name(config)
        out["stats"] = self.store.stats.to_dict()
        return out

    def snapshot(
        self,
        config: Optional[AnalysisConfig] = None,
        max_variables_per_function: Optional[int] = None,
    ) -> dict:
        """A canonical, cache-independent picture of the whole workspace.

        Covers every local function's analyze record plus both slice
        directions for its (first ``max_variables_per_function``, sorted)
        variables, with all volatile bookkeeping (``cache``/``stats``
        labels, hit counters) stripped.  Two sessions over the same sources
        must produce byte-identical JSON for this structure whether they
        were served cold or warm — the differential property the fuzzing
        subsystem's cache oracle checks, and a convenient equality witness
        for tests.
        """
        config = config or MODULAR
        out: Dict[str, dict] = {}
        for fn_name in self.function_names():
            analyze = self.analyze(function=fn_name, config=config)
            entry: dict = {
                "dependency_sizes": analyze["functions"][fn_name]["dependency_sizes"],
                "slices": {},
            }
            variables = sorted(self.variables_of(fn_name))
            if max_variables_per_function is not None:
                variables = variables[:max_variables_per_function]
            for variable in variables:
                slices = {}
                for direction in ("backward", "forward"):
                    response = self.slice(fn_name, variable, direction, config=config)
                    slices[direction] = {
                        "size": response["size"],
                        "lines": response["lines"],
                        "spans": response["spans"],
                    }
                entry["slices"][variable] = slices
            out[fn_name] = entry
        return {"condition": condition_name(config), "functions": out}

    def snapshot_digest(
        self,
        config: Optional[AnalysisConfig] = None,
        max_variables_per_function: Optional[int] = None,
    ) -> str:
        """sha256 over the canonical :meth:`snapshot` JSON.

        One hex string that commits to every analyze record and slice in the
        workspace — the per-program verdict token the mass-evaluation
        harness records, and a compact equality witness anywhere two
        sessions must be provably answer-identical.
        """
        import hashlib
        import json

        payload = json.dumps(
            self.snapshot(
                config=config, max_variables_per_function=max_variables_per_function
            ),
            sort_keys=True,
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def stats(self) -> dict:
        """Session/store/counter snapshot, including the last invalidation plan."""
        return {
            "generation": self.generation,
            "units": self.unit_names(),
            "functions": len(self._local_function_names()),
            "store_entries": len(self.store),
            "stats": self.store.stats.to_dict(),
            "counters": dict(self.counters),
            "last_invalidation": {
                ("whole_program" if wp else "modular"): plan.to_json_dict()
                for wp, plan in (self.last_plans or {}).items()
            },
        }
