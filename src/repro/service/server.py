"""The concurrent workspace server behind ``repro serve --port``.

This module turns the single-client stdio loops of
:mod:`repro.service.protocol` (NDJSON) and :mod:`repro.focus.server`
(JSON-RPC 2.0) into one production-shaped server:

* **Transport unification** — every connection speaks *both* dialects.
  :class:`ConnectionHandler` inspects each line: a message carrying
  ``"jsonrpc": "2.0"`` is dispatched to the LSP-lite
  :class:`~repro.focus.server.FocusServer`, anything else to the NDJSON
  :class:`~repro.service.protocol.AnalysisService`.  Both are bound to the
  same underlying :class:`~repro.service.session.AnalysisSession`, so an
  editor speaking JSON-RPC and a batch tool speaking NDJSON see one
  workspace and one warm cache.
* **Shared sessions with read/write locking** — a
  :class:`WorkspaceRegistry` keeps one session (plus one
  :class:`~repro.service.locks.RWLock`) per named workspace.  Queries take
  the read side and run concurrently; workspace mutations (``open`` /
  ``update`` / ``close`` / ``warm`` and their LSP counterparts) take the
  write side and run alone.
* **Persistence** — with a ``persist_dir`` the registry loads saved
  workspaces on first access (:mod:`repro.service.persist`), stores write
  through to the on-disk cache tier, and manifests are refreshed after
  mutations (debounced) and flushed on shutdown, so a restarted server
  answers its first query warm.
* **Thread-pool connection handling and graceful shutdown** — a
  :class:`ThreadedAnalysisServer` accepts TCP connections and serves each
  from a bounded thread pool; :meth:`ThreadedAnalysisServer.shutdown`
  drains in-flight requests, closes idle connections, persists workspaces
  and joins the pool.

Wire format: newline-delimited JSON both ways.  On connect the server sends
one *hello* line (``{"hello": ..., "version": ..., "protocols": [...],
"workspace": ...}``) that clients must read before their first response.
"""

from __future__ import annotations

import json
import logging
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.obs import get_registry, new_trace_id, start_trace
from repro.obs.export import TraceDirWriter
from repro.obs.remote import workers_in_trace
from repro.obs.slowlog import HealthTracker, SlowLog
from repro.service.locks import RWLock
from repro.service.persist import has_workspace, open_or_create_workspace, save_workspace
from repro.service.protocol import AnalysisService
from repro.service.session import AnalysisSession
from repro.version import __version__

SERVER_NAME = "repro-flowistry"
PROTOCOLS = ("ndjson", "jsonrpc-2.0")

# One structured line per request when the access log is enabled; emitted at
# INFO so the default (no handler configured → dropped) keeps stdout-replay
# consumers byte-stable.  ``repro serve --log-level info`` wires a handler.
ACCESS_LOG = logging.getLogger("repro.access")

# Methods that mutate the shared workspace and therefore take the write side
# of the session's RW lock; everything else is a concurrent read.
NDJSON_WRITE_METHODS = frozenset({"open", "update", "close", "warm"})

# Sentinel default for ConnectionHandler's slow_log/health parameters:
# "create a private instance" — distinct from an explicit None ("disabled").
_CREATE: object = object()
JSONRPC_WRITE_METHODS = frozenset(
    {"textDocument/didOpen", "textDocument/didChange", "textDocument/didClose"}
)


def is_write_request(message: dict) -> bool:
    """Whether one parsed message needs the workspace write lock.

    Method identity is almost enough; the exception is ``analyze`` with an
    inline ``source`` (the open-and-analyze round trip), which mutates the
    workspace like ``open`` does.
    """
    if message.get("jsonrpc") == "2.0":
        return message.get("method") in JSONRPC_WRITE_METHODS
    method = message.get("method")
    if method == "analyze":
        params = message.get("params")
        return isinstance(params, dict) and "source" in params
    return method in NDJSON_WRITE_METHODS


@dataclass
class SessionHandle:
    """One shared workspace: its session plus the lock every client honours.

    ``dirty``/``last_saved`` drive the registry's manifest debounce; both
    are only touched while the workspace write lock is held.
    """

    name: str
    session: AnalysisSession
    lock: RWLock
    dirty: bool = False
    last_saved: float = field(default=0.0)


class WorkspaceRegistry:
    """Named, shared, optionally persistent analysis sessions.

    The registry is the server's unit of sharing: every connection that
    selects workspace ``w`` gets the *same* :class:`SessionHandle`, so all
    of them hit one warm cache.  With a ``persist_dir``, sessions are
    rebuilt from their saved manifest on first access and their stores write
    through to the workspace's disk cache tier.
    """

    def __init__(
        self,
        persist_dir: Optional[str] = None,
        max_entries: int = 4096,
        local_crate: str = "main",
        manifest_debounce: float = 1.0,
    ):
        self.persist_dir = persist_dir
        self.max_entries = max_entries
        self.local_crate = local_crate
        self.manifest_debounce = manifest_debounce
        self._lock = threading.Lock()
        self._handles: Dict[str, SessionHandle] = {}
        # Per-name creation locks: loading a persisted workspace can mean a
        # full parse/check/lower, which must not stall unrelated workspaces
        # (or new connections) behind the registry mutex.
        self._creating: Dict[str, threading.Lock] = {}

    def exists(self, name: str) -> bool:
        """Whether ``name`` is live in this process or saved on disk."""
        with self._lock:
            if name in self._handles:
                return True
        return self.persist_dir is not None and has_workspace(self.persist_dir, name)

    def handle(self, name: str = "default") -> SessionHandle:
        """The shared handle for workspace ``name``, created/loaded on demand."""
        with self._lock:
            found = self._handles.get(name)
            if found is not None:
                return found
            creation = self._creating.setdefault(name, threading.Lock())
        with creation:
            with self._lock:
                found = self._handles.get(name)
                if found is not None:
                    return found
            # The (possibly slow) load runs outside the registry mutex; the
            # per-name creation lock keeps it single-flight.
            if self.persist_dir is not None:
                session = open_or_create_workspace(
                    self.persist_dir,
                    name,
                    max_entries=self.max_entries,
                    local_crate=self.local_crate,
                )
            else:
                session = AnalysisSession(
                    max_entries=self.max_entries, local_crate=self.local_crate
                )
            created = SessionHandle(name=name, session=session, lock=RWLock())
            with self._lock:
                self._handles[name] = created
            return created

    def names(self) -> List[str]:
        """Names of the workspaces live in this process."""
        with self._lock:
            return sorted(self._handles)

    def note_mutation(self, handle: SessionHandle) -> None:
        """Refresh the workspace manifest after a mutation, debounced.

        Called with the workspace write lock held, so the unit snapshot is
        consistent.  The manifest serialises every unit's full source, so
        rewriting it on *every* keystroke-style ``didChange`` would make
        each edit an O(workspace) disk write inside the exclusive lock;
        instead writes are rate-limited to one per ``manifest_debounce``
        seconds and the handle is marked dirty in between — ``save_all``
        (the shutdown path) flushes whatever is pending.  Cache entries are
        unaffected: the store writes those through on ``put``.
        """
        if self.persist_dir is None:
            return
        now = time.monotonic()
        if now - handle.last_saved >= self.manifest_debounce:
            save_workspace(handle.session, self.persist_dir, handle.name)
            handle.last_saved = now
            handle.dirty = False
        else:
            handle.dirty = True

    def save_all(self) -> List[dict]:
        """Persist every live workspace's manifest (shutdown path)."""
        if self.persist_dir is None:
            return []
        out = []
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            with handle.lock.write_locked():
                out.append(save_workspace(handle.session, self.persist_dir, handle.name))
                handle.last_saved = time.monotonic()
                handle.dirty = False
        return out


class ConnectionHandler:
    """Per-connection protocol mux over a shared workspace.

    Owns one :class:`AnalysisService` (NDJSON) and one :class:`FocusServer`
    (JSON-RPC) bound to the connection's current workspace session, routes
    each incoming line to the right dialect, and wraps the dispatch in the
    workspace's read or write lock according to the method.

    Three mux-level NDJSON methods exist on top of the two dialects:
    ``{"method": "workspace", "params": {"name": ...}}`` switches this
    connection to another (shared) workspace — the name must be live or
    saved unless ``"create": true`` is passed (so a typo cannot silently
    spawn an empty workspace); without ``name`` it reports the current one.
    ``{"method": "slowlog"}`` returns the retained slow-request exemplars
    (tail-based trace sampling — see :mod:`repro.obs.slowlog`), and
    ``{"method": "health"}`` the uptime/error-rate/per-method-latency
    summary.  Both read state shared across every connection when the
    server injects its ``slow_log``/``health``; a directly-constructed
    handler gets private instances so the mux is self-contained.
    """

    def __init__(
        self,
        registry: WorkspaceRegistry,
        workspace: str = "default",
        on_mutation: Optional[Callable[[SessionHandle], None]] = None,
        log_level: str = "quiet",
        trace_writer: Optional[TraceDirWriter] = None,
        slow_log: Optional[SlowLog] = _CREATE,
        health: Optional[HealthTracker] = _CREATE,
        server_stats: Optional[Callable[[], dict]] = None,
    ):
        self.registry = registry
        self.on_mutation = on_mutation if on_mutation is not None else registry.note_mutation
        self.log_level = log_level
        self.trace_writer = trace_writer
        self.slow_log = SlowLog() if slow_log is _CREATE else slow_log
        self.health = HealthTracker() if health is _CREATE else health
        self.server_stats = server_stats
        self._bind(registry.handle(workspace))

    def _bind(self, handle: SessionHandle) -> None:
        # Imported lazily: repro.focus.server itself imports the service
        # package, so a module-level import here would be circular.
        from repro.focus.server import FocusServer

        self.handle_ref = handle
        self.ndjson = AnalysisService(handle.session)
        self.jsonrpc = FocusServer(handle.session)

    @property
    def done(self) -> bool:
        """Whether either dialect asked to end this connection."""
        return self.ndjson.shutdown_requested or self.jsonrpc.exit_requested

    def hello(self) -> dict:
        """The one-line greeting sent to every client on connect."""
        return {
            "hello": SERVER_NAME,
            "version": __version__,
            "protocols": list(PROTOCOLS),
            "workspace": self.handle_ref.name,
        }

    def _switch_workspace(self, request: dict) -> dict:
        params = request.get("params") or {}
        name = params.get("name") if isinstance(params, dict) else None
        if name is not None:
            name = str(name)
            if not params.get("create") and not self.registry.exists(name):
                return {
                    "id": request.get("id"),
                    "ok": False,
                    "error": f"no workspace named {name!r} "
                             "(pass \"create\": true to create it)",
                    "error_code": QueryError.UNKNOWN_WORKSPACE,
                }
            try:
                self._bind(self.registry.handle(name))
            except QueryError as error:
                # exists() saw a manifest but loading it failed (corrupt
                # manifest, source that no longer compiles): answer with the
                # typed error instead of unwinding the connection.
                return {
                    "id": request.get("id"),
                    "ok": False,
                    "error": str(error),
                    "error_code": error.code,
                }
            except Exception as error:
                return {
                    "id": request.get("id"),
                    "ok": False,
                    "error": f"workspace {name!r} failed to load: {error}",
                    "error_code": "workspace_load_failed",
                }
        handle = self.handle_ref
        with handle.lock.read_locked():
            result = {
                "workspace": handle.name,
                "units": handle.session.unit_names(),
                "functions": len(handle.session.function_names()),
                "workspaces": self.registry.names(),
            }
        return {"id": request.get("id"), "ok": True, "result": result}

    def _slowlog_response(self, request: dict) -> dict:
        if self.slow_log is None:
            return {
                "id": request.get("id"),
                "ok": False,
                "error": "slow-request log disabled on this server",
                "error_code": "slowlog_disabled",
            }
        params = request.get("params") or {}
        limit = params.get("limit") if isinstance(params, dict) else None
        include = params.get("traces", True) if isinstance(params, dict) else True
        return {
            "id": request.get("id"),
            "ok": True,
            "result": self.slow_log.snapshot(
                limit=int(limit) if isinstance(limit, int) else None,
                include_traces=bool(include),
            ),
        }

    def _health_response(self, request: dict) -> dict:
        extra = {"inflight": 0}
        if self.server_stats is not None:
            stats = self.server_stats()
            extra = {
                "inflight": stats.get("inflight", 0),
                "open_connections": stats.get("open_connections", 0),
                "draining": stats.get("draining", False),
            }
        return {
            "id": request.get("id"),
            "ok": True,
            "result": self.health.snapshot(extra=extra),
        }

    def handle_message(self, message: dict) -> Optional[dict]:
        """Dispatch one parsed message under the appropriate lock."""
        handle = self.handle_ref
        write = is_write_request(message)
        if message.get("jsonrpc") == "2.0":
            with handle.lock.locked(write):
                response = self.jsonrpc.handle(message)
                if write:
                    self.on_mutation(handle)
            return response
        method = message.get("method")
        if method in ("workspace", "slowlog", "health"):
            # Mux-level methods: no workspace lock — they touch connection
            # or telemetry state only, never a session.
            get_registry().counter(
                "requests_total", method=str(method), protocol="mux", status="ok"
            ).inc()
            if method == "slowlog":
                return self._slowlog_response(message)
            if method == "health":
                return self._health_response(message)
            return self._switch_workspace(message)
        with handle.lock.locked(write):
            response = self.ndjson.handle(message)
            if write:
                self.on_mutation(handle)
        return response

    @staticmethod
    def _response_status(response: Optional[dict]) -> str:
        if response is None:
            return "ok"  # notifications have no failure channel
        if response.get("ok") is False or "error" in response:
            return "error"
        return "ok"

    def handle_line(self, line: str) -> Optional[dict]:
        """Parse one wire line and dispatch it; never raises.

        The connection-level telemetry wrapper: stamps a ``trace_id`` into
        the message (inner dialects echo it), traces the request when a
        ``--trace-dir`` writer is attached *or* a slow log wants tail
        exemplars, feeds the health tracker, and emits one structured
        access log line unless the log level is ``quiet``.  Tail-based
        sampling means every request is traced but the span tree is
        *retained* only when the slow log judges the request slow.
        """
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            return {
                "id": None,
                "ok": False,
                "error": f"invalid JSON: {error}",
                "error_code": "parse_error",
            }
        if not isinstance(message, dict):
            return {
                "id": None,
                "ok": False,
                "error": "request must be a JSON object",
                "error_code": "parse_error",
            }
        trace_id = message.get("trace_id")
        trace_id = str(trace_id) if trace_id else new_trace_id()
        message.setdefault("trace_id", trace_id)
        method = message.get("method")
        workspace = self.handle_ref.name
        started = time.perf_counter()
        trace_path = None
        if self.trace_writer is not None or self.slow_log is not None:
            # A client-requested in-band trace ("trace": true) opens its own
            # nested trace; the server-side file then only covers the mux.
            with start_trace(
                method if isinstance(method, str) else "invalid", trace_id=trace_id
            ) as trace:
                response = self.handle_message(message)
            if self.trace_writer is not None:
                trace_path = self.trace_writer.write(trace)
        else:
            trace = None
            response = self.handle_message(message)
        duration_ms = (time.perf_counter() - started) * 1e3
        status = self._response_status(response)
        if self.health is not None:
            self.health.observe(
                method if isinstance(method, str) else None,
                duration_ms,
                ok=status == "ok",
            )
        if self.slow_log is not None:
            tree = trace.to_dict() if trace is not None else None
            self.slow_log.observe(
                method if isinstance(method, str) else None,
                duration_ms,
                trace_id=trace_id,
                status=status,
                workspace=workspace,
                trace=tree,
                workers=workers_in_trace(tree["root"]) if tree is not None else None,
                trace_path=str(trace_path) if trace_path is not None else None,
            )
        if response is not None and "trace_id" not in response:
            response["trace_id"] = trace_id
        if self.log_level != "quiet":
            ACCESS_LOG.info(
                json.dumps(
                    {
                        "trace_id": trace_id,
                        "method": method if isinstance(method, str) else None,
                        "workspace": workspace,
                        "status": status,
                        "duration_ms": round(duration_ms, 3),
                    },
                    sort_keys=True,
                )
            )
        return response


class ThreadedAnalysisServer:
    """TCP front door: threaded connections over shared sessions.

    Each accepted connection gets its own handler thread; ``workers`` caps
    how many client connections may be live at once (connections are
    long-lived, so the cap is per *connection*, not per request).  A client
    arriving over the cap is answered immediately with a one-line
    ``server_busy`` error and disconnected — never silently queued.  All
    connections share sessions through the :class:`WorkspaceRegistry`, so
    cache warmth is global.

    Lifecycle: ``start()`` (or use as a context manager) binds the accept
    thread; ``shutdown()`` drains — stop accepting, wait for in-flight
    requests, close remaining connections, persist workspaces, join the
    handler threads.  ``port=0`` binds an ephemeral port; read
    ``server.port`` after construction.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 8,
        persist_dir: Optional[str] = None,
        max_entries: int = 4096,
        local_crate: str = "main",
        default_workspace: str = "default",
        log_level: str = "quiet",
        trace_dir: Optional[str] = None,
        slowlog: bool = True,
        slowlog_threshold_ms: Optional[float] = None,
        slowlog_capacity: int = 32,
    ):
        self.registry = WorkspaceRegistry(
            persist_dir=persist_dir, max_entries=max_entries, local_crate=local_crate
        )
        self.default_workspace = default_workspace
        self.log_level = log_level
        self.trace_writer = TraceDirWriter(trace_dir) if trace_dir else None
        # One slow log + health tracker shared by every connection, so
        # `slowlog`/`health` answer for the whole server regardless of
        # which connection asks.
        self.slow_log = (
            SlowLog(capacity=slowlog_capacity, threshold_ms=slowlog_threshold_ms)
            if slowlog
            else None
        )
        self.health = HealthTracker()
        self.workers = max(1, workers)
        self._listener = socket.create_server((host, port), backlog=128)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: set = set()
        self._draining = threading.Event()
        self._closed = False
        self._state_cond = threading.Condition()
        self._inflight = 0
        self._conns: set = set()
        self.connections_served = 0
        self.connections_rejected = 0
        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ThreadedAnalysisServer":
        """Begin accepting connections (idempotent); returns ``self``."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def __enter__(self) -> "ThreadedAnalysisServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — stable even for ``port=0`` requests."""
        return (self.host, self.port)

    def hello(self) -> dict:
        """Startup banner (also printed by the CLI): address, version, limits."""
        return {
            "serving": SERVER_NAME,
            "version": __version__,
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "protocols": list(PROTOCOLS),
            "persist_dir": self.registry.persist_dir,
            "workspace": self.default_workspace,
        }

    def stats(self) -> dict:
        """Server-level counters (connections, requests, live workspaces)."""
        with self._state_cond:
            return {
                "connections_served": self.connections_served,
                "connections_rejected": self.connections_rejected,
                "requests_served": self.requests_served,
                "inflight": self._inflight,
                "open_connections": len(self._conns),
                "workspaces": self.registry.names(),
                "draining": self._draining.is_set(),
            }

    def shutdown(self, drain: bool = True, timeout: float = 10.0) -> List[dict]:
        """Gracefully stop: drain, disconnect, persist, join.

        With ``drain`` the server waits (up to ``timeout`` seconds) for
        requests already being handled to finish before closing client
        connections; without it connections are cut immediately.  Returns
        the workspace-save summaries (empty without a ``persist_dir``).
        Idempotent.
        """
        with self._state_cond:
            if self._closed:
                return []
            self._closed = True
        self._draining.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if drain:
            with self._state_cond:
                waited = 0.0
                while self._inflight > 0 and waited < timeout:
                    self._state_cond.wait(0.1)
                    waited += 0.1
        with self._state_cond:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        with self._state_cond:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=2.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        return self.registry.save_all()

    # -- connection handling -----------------------------------------------------

    def _accept_loop(self) -> None:
        try:
            self._listener.settimeout(0.2)
        except OSError:
            return  # shutdown() closed the listener before we got here
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            # Reserve a connection slot atomically with the capacity check:
            # connections are long-lived, so over-cap clients must get an
            # immediate, explicit rejection rather than queue silently.
            with self._state_cond:
                if len(self._conns) >= self.workers:
                    accepted = False
                    self.connections_rejected += 1
                else:
                    accepted = True
                    self._conns.add(conn)
                    self.connections_served += 1
                    get_registry().gauge("server_connections").set(len(self._conns))
            if not accepted:
                self._reject_client(conn)
                continue
            thread = threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True,
                name=f"repro-conn-{self.connections_served}",
            )
            with self._state_cond:
                self._threads.add(thread)
                self._threads = {t for t in self._threads if t.is_alive() or t is thread}
            thread.start()

    def _reject_client(self, conn: socket.socket) -> None:
        try:
            conn.sendall(
                (json.dumps({
                    "id": None,
                    "ok": False,
                    "error": f"server at capacity ({self.workers} connections)",
                    "error_code": "server_busy",
                }, sort_keys=True) + "\n").encode("utf-8")
            )
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _serve_client(self, conn: socket.socket) -> None:
        try:
            rfile = conn.makefile("r", encoding="utf-8", newline="\n")
            wfile = conn.makefile("w", encoding="utf-8", newline="\n")

            def emit(payload: dict) -> None:
                wfile.write(json.dumps(payload, sort_keys=True) + "\n")
                wfile.flush()

            # Inside the try/finally: binding the default workspace can load
            # a persisted session and fail (corrupt manifest, stale source);
            # the slot and socket must be released either way, and the
            # client deserves an error line rather than a silent EOF.
            try:
                handler = ConnectionHandler(
                    self.registry,
                    self.default_workspace,
                    log_level=self.log_level,
                    trace_writer=self.trace_writer,
                    slow_log=self.slow_log,
                    health=self.health,
                    server_stats=self.stats,
                )
            except Exception as error:
                emit({
                    "id": None,
                    "ok": False,
                    "error": f"workspace {self.default_workspace!r} failed to "
                             f"load: {error}",
                    "error_code": "workspace_load_failed",
                })
                return

            emit(handler.hello())
            for line in rfile:
                line = line.strip()
                if not line:
                    continue
                inflight_gauge = get_registry().gauge("server_inflight")
                with self._state_cond:
                    self._inflight += 1
                    inflight_gauge.set(self._inflight)
                try:
                    response = handler.handle_line(line)
                finally:
                    with self._state_cond:
                        self._inflight -= 1
                        self.requests_served += 1
                        inflight_gauge.set(self._inflight)
                        self._state_cond.notify_all()
                if response is not None:
                    emit(response)
                if handler.done or self._draining.is_set():
                    break
        except (OSError, ValueError):
            pass  # client went away mid-request; nothing to answer
        finally:
            with self._state_cond:
                self._conns.discard(conn)
                get_registry().gauge("server_connections").set(len(self._conns))
            try:
                conn.close()
            except OSError:
                pass
