"""On-disk workspace persistence: sessions that survive the process.

A persisted workspace is a directory under the server's ``--persist-dir``::

    <persist_dir>/<workspace>/
        manifest.json        # units (name + source), local crate, version
        cache/               # SummaryStore disk tier (records, summaries,
                             # focus tables), one JSON file per entry

The manifest holds everything needed to rebuild the *workspace* (the open
sources); the cache directory holds everything needed to make the rebuilt
session answer its first query **warm**.  Because cache keys are content
fingerprints, a restart re-derives the same fingerprints from the same
sources and the first ``analyze``/``slice``/``focus`` query is a disk hit —
no function is re-analysed unless its content actually changed between runs.

Manifest writes are atomic (write-to-temp + rename), so a crash mid-save
leaves the previous manifest intact; the cache tier is content-addressed and
therefore always safe to reuse partially.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import QueryError
from repro.service.session import AnalysisSession
from repro.version import __version__

MANIFEST_NAME = "manifest.json"
CACHE_SUBDIR = "cache"
MANIFEST_FORMAT = 1

PathLike = Union[str, Path]


def workspace_dir(persist_dir: PathLike, name: str = "default") -> Path:
    """The directory holding one named workspace's manifest and cache tier."""
    return Path(persist_dir) / name


def cache_dir(persist_dir: PathLike, name: str = "default") -> Path:
    """The workspace's SummaryStore disk-tier directory."""
    return workspace_dir(persist_dir, name) / CACHE_SUBDIR


def has_workspace(persist_dir: PathLike, name: str = "default") -> bool:
    """Whether a saved manifest exists for ``name`` under ``persist_dir``."""
    return (workspace_dir(persist_dir, name) / MANIFEST_NAME).is_file()


def load_manifest(persist_dir: PathLike, name: str = "default") -> dict:
    """Read and validate one workspace manifest.

    Raises :class:`QueryError` (code ``unknown_workspace``) when the manifest
    is missing or unreadable — the error clients of ``workspace load`` see.
    """
    path = workspace_dir(persist_dir, name) / MANIFEST_NAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise QueryError(
            f"no saved workspace {name!r} under {str(persist_dir)!r}: {error}",
            code=QueryError.UNKNOWN_WORKSPACE,
        ) from None
    if not isinstance(data, dict) or not isinstance(data.get("units"), list):
        raise QueryError(
            f"workspace {name!r} has a malformed manifest",
            code=QueryError.UNKNOWN_WORKSPACE,
        )
    return data


def save_workspace(
    session: AnalysisSession, persist_dir: PathLike, name: str = "default"
) -> dict:
    """Persist ``session`` as workspace ``name`` under ``persist_dir``.

    Writes the manifest atomically and makes sure the workspace's cache
    directory holds the session's cached entries: if the session's store
    already uses that directory as its disk tier the entries were written
    through on ``put``; otherwise the in-memory tier is flushed into it.
    Returns a JSON-ready summary of what was saved.
    """
    wdir = workspace_dir(persist_dir, name)
    wdir.mkdir(parents=True, exist_ok=True)
    target_cache = cache_dir(persist_dir, name)

    store = session.store
    if store.disk_dir is not None and store.disk_dir.resolve() == target_cache.resolve():
        flushed = 0  # written through already
    else:
        flushed = store.flush_to(target_cache)

    manifest = {
        "format": MANIFEST_FORMAT,
        "version": __version__,
        "local_crate": session.local_crate,
        "generation": session.generation,
        "units": [{"name": n, "source": s} for n, s in session.units()],
    }
    path = wdir / MANIFEST_NAME
    tmp = wdir / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)

    return {
        "workspace": name,
        "path": str(wdir),
        "units": session.unit_names(),
        "functions": len(session.function_names()) if session.unit_names() else 0,
        "cache_entries": len(store),
        "cache_entries_flushed": flushed,
        "version": __version__,
    }


def load_workspace(
    persist_dir: PathLike,
    name: str = "default",
    max_entries: int = 4096,
    scheduler=None,
) -> AnalysisSession:
    """Rebuild a saved workspace as a live :class:`AnalysisSession`.

    The returned session's store adopts the workspace's cache directory as
    its disk tier, so the first query over unchanged sources is served warm
    from disk rather than re-analysed.
    """
    manifest = load_manifest(persist_dir, name)
    session = AnalysisSession(
        cache_dir=str(cache_dir(persist_dir, name)),
        max_entries=max_entries,
        local_crate=str(manifest.get("local_crate", "main")),
        scheduler=scheduler,
    )
    units = [(str(u["name"]), str(u["source"])) for u in manifest["units"]]
    if units:
        session.open_units(units)
    return session


def open_or_create_workspace(
    persist_dir: PathLike,
    name: str = "default",
    max_entries: int = 4096,
    local_crate: str = "main",
) -> AnalysisSession:
    """Load workspace ``name`` if it was saved before, else create it empty.

    Either way the session writes through to the workspace's cache directory
    from the start — the server's standard way to obtain a durable session.
    """
    if has_workspace(persist_dir, name):
        return load_workspace(persist_dir, name, max_entries=max_entries)
    return AnalysisSession(
        cache_dir=str(cache_dir(persist_dir, name)),
        max_entries=max_entries,
        local_crate=local_crate,
    )


def list_workspaces(persist_dir: PathLike) -> List[dict]:
    """Summaries of every saved workspace under ``persist_dir``."""
    root = Path(persist_dir)
    if not root.is_dir():
        return []
    out: List[dict] = []
    for child in sorted(root.iterdir()):
        if not (child / MANIFEST_NAME).is_file():
            continue
        try:
            manifest = load_manifest(root, child.name)
        except QueryError:
            continue
        cache = child / CACHE_SUBDIR
        out.append(
            {
                "workspace": child.name,
                "units": [str(u.get("name")) for u in manifest["units"]],
                "local_crate": manifest.get("local_crate"),
                "version": manifest.get("version"),
                "cache_files": sum(1 for _ in cache.glob("*.json")) if cache.is_dir() else 0,
            }
        )
    return out
