"""Loan-set computation: which places can a reference point to?

Section 4.2 of the paper: "for all instances of borrow expressions ``&r ω p``
in the MIR program, we initialize ``Γ(r) = {p}``.  Then we propagate loans via
``Γ(r) = ⋃_{r' :> r} Γ(r')`` until Γ reaches a fixpoint."

Rather than materialising region variables, we key loan sets directly by the
reference-typed *places* that hold the references (each such place stands for
the region of the reference stored in it).  Propagation happens along:

* borrow statements (``p = &q`` adds the concrete places ``q`` may denote),
* reference copies/moves (``p = q``),
* aggregate construction/projection (references stored in tuple or struct
  fields), and
* call returns, where the callee's *signature lifetimes* determine which
  argument loans flow into the returned reference — exactly the modular use
  of lifetimes the paper describes for ``Vec::iter``.

References received from the caller (reference-typed arguments) have no
in-body loans; dereferencing them yields the *abstract place* ``(*arg)``,
which stands for caller-owned memory, mirroring how Flowistry reasons about
argument memory symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.borrowck.signatures import SignatureSummary, summarize_signature
from repro.lang.ast import FnSig
from repro.lang.types import Mutability, RefType, StructType, TupleType, Type
from repro.mir.ir import (
    Aggregate,
    BinaryOp,
    Body,
    CallTerminator,
    Constant,
    Copy,
    Move,
    Operand,
    Place,
    Ref,
    Rvalue,
    Statement,
    StatementKind,
    UnaryOp,
    Use,
)


LoanMap = Dict[Place, FrozenSet[Place]]


def _place_with_path(base: Place, path: Sequence[int]) -> Place:
    place = base
    for index in path:
        place = place.project_field(index)
    return place


def _refs_in_type(ty: Optional[Type], path: Tuple[int, ...] = ()) -> List[Tuple[Tuple[int, ...], RefType]]:
    """(field path, reference type) pairs for all refs nested in ``ty``."""
    if ty is None:
        return []
    if isinstance(ty, RefType):
        return [(path, ty)]
    if isinstance(ty, TupleType):
        out: List[Tuple[Tuple[int, ...], RefType]] = []
        for index, element in enumerate(ty.elements):
            out.extend(_refs_in_type(element, path + (index,)))
        return out
    if isinstance(ty, StructType) and not ty.opaque:
        out = []
        for index, (_, field_ty) in enumerate(ty.fields):
            out.extend(_refs_in_type(field_ty, path + (index,)))
        return out
    return []


@dataclass
class LoanAnalysis:
    """Loan sets for one MIR body (the precise, lifetime-aware version)."""

    body: Body
    signatures: Dict[str, FnSig] = field(default_factory=dict)
    loans: Dict[Place, Set[Place]] = field(default_factory=dict)
    _summaries: Dict[str, SignatureSummary] = field(default_factory=dict)

    # -- public API --------------------------------------------------------------

    def loan_set(self, place: Place) -> FrozenSet[Place]:
        """The places that the reference stored at ``place`` may point to."""
        return frozenset(self.loans.get(place, set()))

    def as_map(self) -> LoanMap:
        return {place: frozenset(targets) for place, targets in self.loans.items()}

    def resolve(self, place: Place) -> FrozenSet[Place]:
        """Reduce ``place`` to the concrete places it may denote.

        Walks the projection path; every ``Deref`` step is replaced by the
        loan set of the prefix.  When the prefix has no known loans (it is a
        reference received from the caller or from an opaque callee), the
        deref is kept symbolically, producing an abstract place such as
        ``(*_1)``.
        """
        bases: Set[Place] = {Place.from_local(place.local)}
        for elem in place.projection:
            next_bases: Set[Place] = set()
            for base in bases:
                if elem.is_deref():
                    targets = self.loans.get(base)
                    if targets:
                        next_bases |= targets
                    else:
                        next_bases.add(base.project_deref())
                else:
                    next_bases.add(base.project_field(elem.index))
            bases = next_bases
        return frozenset(bases)

    def borrowed_places(self) -> FrozenSet[Place]:
        """Every concrete place that appears in some loan set."""
        out: Set[Place] = set()
        for targets in self.loans.values():
            out |= targets
        return frozenset(out)

    # -- construction --------------------------------------------------------------

    def run(self, max_iterations: int = 100) -> "LoanAnalysis":
        """Iterate loan propagation to a fixpoint."""
        for _ in range(max_iterations):
            if not self._one_pass():
                break
        return self

    def _summary(self, fn_name: str) -> Optional[SignatureSummary]:
        if fn_name in self._summaries:
            return self._summaries[fn_name]
        sig = self.signatures.get(fn_name)
        if sig is None:
            return None
        summary = summarize_signature(sig)
        self._summaries[fn_name] = summary
        return summary

    def _add(self, place: Place, targets: Iterable[Place]) -> bool:
        bucket = self.loans.setdefault(place, set())
        before = len(bucket)
        bucket.update(targets)
        return len(bucket) != before

    def _one_pass(self) -> bool:
        changed = False
        for block in self.body.blocks:
            for stmt in block.statements:
                if stmt.kind is not StatementKind.ASSIGN:
                    continue
                assert stmt.place is not None and stmt.rvalue is not None
                changed |= self._transfer_assign(stmt.place, stmt.rvalue)
            terminator = block.terminator
            if isinstance(terminator, CallTerminator):
                changed |= self._transfer_call(terminator)
        return changed

    # -- transfer -------------------------------------------------------------------

    def _transfer_assign(self, place: Place, rvalue: Rvalue) -> bool:
        changed = False
        if isinstance(rvalue, Ref):
            targets = self.resolve(rvalue.referent)
            changed |= self._add(place, targets)
        elif isinstance(rvalue, Use):
            src = rvalue.operand.place()
            if src is not None:
                changed |= self._copy_ref_loans(place, src)
        elif isinstance(rvalue, Aggregate):
            for index, operand in enumerate(rvalue.ops):
                src = operand.place()
                if src is None:
                    continue
                changed |= self._copy_ref_loans(place.project_field(index), src)
        # BinaryOp/UnaryOp never produce references.
        return changed

    def _copy_ref_loans(self, dest: Place, src: Place) -> bool:
        """Propagate loans for every reference nested in the copied value."""
        ty = self.body.place_ty(dest)
        changed = False
        for path, _ref_ty in _refs_in_type(ty):
            dest_ref = _place_with_path(dest, path)
            src_ref = _place_with_path(src, path)
            targets: Set[Place] = set()
            for resolved in self.resolve(src_ref):
                targets |= self.loans.get(resolved, set())
            # Direct lookup as well (when src_ref itself is the tracked key).
            targets |= self.loans.get(src_ref, set())
            if targets:
                changed |= self._add(dest_ref, targets)
        return changed

    def _transfer_call(self, call: CallTerminator) -> bool:
        summary = self._summary(call.func)
        if summary is None:
            return False
        dest_ty = self.body.place_ty(call.destination)
        dest_refs = _refs_in_type(dest_ty)
        if not dest_refs:
            return False

        # The returned reference(s) may point to anything reachable through
        # the lifetime-tied arguments' references.
        targets: Set[Place] = set()
        for param_index in summary.params_tied_to_return:
            if param_index >= len(call.args):
                continue
            arg_place = call.args[param_index].place()
            if arg_place is None:
                continue
            for ref_info in summary.all_refs_of_param(param_index):
                ref_place = _place_with_path(arg_place, ref_info.path)
                targets |= self.resolve(ref_place.project_deref())

        if not targets:
            return False
        changed = False
        for path, _ref_ty in dest_refs:
            changed |= self._add(_place_with_path(call.destination, path), targets)
        return changed


def compute_loans(body: Body, signatures: Dict[str, FnSig]) -> LoanAnalysis:
    """Run the loan analysis for ``body`` to fixpoint and return it."""
    return LoanAnalysis(body=body, signatures=signatures).run()
