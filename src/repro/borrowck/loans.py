"""Loan-set computation: which places can a reference point to?

Section 4.2 of the paper: "for all instances of borrow expressions ``&r ω p``
in the MIR program, we initialize ``Γ(r) = {p}``.  Then we propagate loans via
``Γ(r) = ⋃_{r' :> r} Γ(r')`` until Γ reaches a fixpoint."

Rather than materialising region variables, we key loan sets directly by the
reference-typed *places* that hold the references (each such place stands for
the region of the reference stored in it).  Propagation happens along:

* borrow statements (``p = &q`` adds the concrete places ``q`` may denote),
* reference copies/moves (``p = q``),
* aggregate construction/projection (references stored in tuple or struct
  fields), and
* call returns, where the callee's *signature lifetimes* determine which
  argument loans flow into the returned reference — exactly the modular use
  of lifetimes the paper describes for ``Vec::iter``.

References received from the caller (reference-typed arguments) have no
in-body loans; dereferencing them yields the *abstract place* ``(*arg)``,
which stands for caller-owned memory, mirroring how Flowistry reasons about
argument memory symbolically.

The representation is interned: every place is a dense index into a
:class:`~repro.mir.indices.PlaceDomain` (shareable with the indexed flow
engine's :class:`~repro.mir.indices.BodyIndex`, so oracle resolutions land
directly on the analysis' own indices), and Γ is a mapping from place index
to an int bitset of place indices.  The body is walked once to **compile**
the propagation constraints — the type-driven reference-path discovery and
place projection happen per statement, not per fixpoint pass — and the
fixpoint then iterates the compiled constraint list with bitwise unions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.borrowck.signatures import SignatureSummary, summarize_signature
from repro.dataflow.bitset import iter_bits
from repro.lang.ast import FnSig
from repro.lang.types import Mutability, RefType, StructType, TupleType, Type
from repro.mir.indices import PlaceDomain
from repro.mir.ir import (
    Aggregate,
    Body,
    CallTerminator,
    Place,
    Ref,
    Rvalue,
    StatementKind,
    Use,
)


LoanMap = Dict[Place, FrozenSet[Place]]


def _place_with_path(base: Place, path: Sequence[int]) -> Place:
    place = base
    for index in path:
        place = place.project_field(index)
    return place


def _refs_in_type(ty: Optional[Type], path: Tuple[int, ...] = ()) -> List[Tuple[Tuple[int, ...], RefType]]:
    """(field path, reference type) pairs for all refs nested in ``ty``."""
    if ty is None:
        return []
    if isinstance(ty, RefType):
        return [(path, ty)]
    if isinstance(ty, TupleType):
        out: List[Tuple[Tuple[int, ...], RefType]] = []
        for index, element in enumerate(ty.elements):
            out.extend(_refs_in_type(element, path + (index,)))
        return out
    if isinstance(ty, StructType) and not ty.opaque:
        out = []
        for index, (_, field_ty) in enumerate(ty.fields):
            out.extend(_refs_in_type(field_ty, path + (index,)))
        return out
    return []


# Compiled constraint tags.
_BORROW = 0  # rows[dest] |= resolve_mask(referent)
_COPY = 1    # rows[dest_ref] |= ⋃ rows[resolve(src_ref)] ∪ rows[src_ref]
_CALL = 2    # rows[dest_ref…] |= ⋃ resolve_mask(tied argument pointees)


@dataclass
class LoanAnalysis:
    """Loan sets for one MIR body (the precise, lifetime-aware version)."""

    body: Body
    signatures: Dict[str, FnSig] = field(default_factory=dict)
    # Shareable interning table; the flow engine passes its own so loan
    # resolutions are already in the analysis' index space.
    domain: PlaceDomain = field(default_factory=PlaceDomain)
    _rows: Dict[int, int] = field(default_factory=dict)
    _summaries: Dict[str, SignatureSummary] = field(default_factory=dict)
    _constraints: Optional[List[tuple]] = field(default=None)

    # -- public API --------------------------------------------------------------

    @property
    def loans(self) -> Dict[Place, Set[Place]]:
        """The loan map in object form (tests and debugging; not hot)."""
        place_of = self.domain.place_of
        return {
            place_of(index): {place_of(i) for i in iter_bits(bits)}
            for index, bits in self._rows.items()
        }

    def loan_set(self, place: Place) -> FrozenSet[Place]:
        """The places that the reference stored at ``place`` may point to."""
        index = self.domain.get(place)
        if index is None:
            return frozenset()
        return frozenset(self.domain.places_of(iter_bits(self._rows.get(index, 0))))

    def as_map(self) -> LoanMap:
        place_of = self.domain.place_of
        return {
            place_of(index): frozenset(place_of(i) for i in iter_bits(bits))
            for index, bits in self._rows.items()
        }

    def resolve_mask(self, place: Place) -> int:
        """Index form of :meth:`resolve`: a bitset over the place domain."""
        domain = self.domain
        rows = self._rows
        bases = 1 << domain.base_index(place.local)
        for elem in place.projection:
            next_bases = 0
            if elem.is_deref():
                while bases:
                    lsb = bases & -bases
                    bases ^= lsb
                    base_index = lsb.bit_length() - 1
                    targets = rows.get(base_index, 0)
                    if targets:
                        next_bases |= targets
                    else:
                        next_bases |= 1 << domain.project_deref_index(base_index)
            else:
                field_index = elem.index
                while bases:
                    lsb = bases & -bases
                    bases ^= lsb
                    next_bases |= 1 << domain.project_field_index(
                        lsb.bit_length() - 1, field_index
                    )
            bases = next_bases
        return bases

    def resolve(self, place: Place) -> FrozenSet[Place]:
        """Reduce ``place`` to the concrete places it may denote.

        Walks the projection path; every ``Deref`` step is replaced by the
        loan set of the prefix.  When the prefix has no known loans (it is a
        reference received from the caller or from an opaque callee), the
        deref is kept symbolically, producing an abstract place such as
        ``(*_1)``.
        """
        return frozenset(self.domain.places_of(iter_bits(self.resolve_mask(place))))

    def resolve_indices(self, place: Place) -> Tuple[int, ...]:
        """:meth:`resolve` as domain indices (the flow engine's form)."""
        if not place.projection:
            # The overwhelmingly common case: a bare local denotes itself.
            return (self.domain.base_index(place.local),)
        return tuple(iter_bits(self.resolve_mask(place)))

    def borrowed_places(self) -> FrozenSet[Place]:
        """Every concrete place that appears in some loan set."""
        union = 0
        for bits in self._rows.values():
            union |= bits
        return frozenset(self.domain.places_of(iter_bits(union)))

    # -- construction --------------------------------------------------------------

    def run(self, max_iterations: int = 100) -> "LoanAnalysis":
        """Iterate the compiled loan constraints to a fixpoint."""
        constraints = self._compile()
        for _ in range(max_iterations):
            if not self._one_pass(constraints):
                break
        return self

    def _summary(self, fn_name: str) -> Optional[SignatureSummary]:
        if fn_name in self._summaries:
            return self._summaries[fn_name]
        sig = self.signatures.get(fn_name)
        if sig is None:
            return None
        summary = summarize_signature(sig)
        self._summaries[fn_name] = summary
        return summary

    # -- constraint compilation ----------------------------------------------------

    def _compile(self) -> List[tuple]:
        """Walk the body once, emitting index-level propagation constraints.

        Everything type-directed (which nested paths of a copied value are
        references, which call arguments are lifetime-tied to the return)
        and every place projection is resolved here; the fixpoint itself
        only evaluates the constraint list with bit arithmetic.
        """
        if self._constraints is not None:
            return self._constraints
        constraints: List[tuple] = []
        index = self.domain.index
        for block in self.body.blocks:
            for stmt in block.statements:
                if stmt.kind is not StatementKind.ASSIGN:
                    continue
                assert stmt.place is not None and stmt.rvalue is not None
                self._compile_assign(constraints, stmt.place, stmt.rvalue, index)
            terminator = block.terminator
            if isinstance(terminator, CallTerminator):
                self._compile_call(constraints, terminator, index)
        self._constraints = constraints
        return constraints

    def _compile_assign(
        self, constraints: List[tuple], place: Place, rvalue: Rvalue, index
    ) -> None:
        if isinstance(rvalue, Ref):
            constraints.append((_BORROW, index(place), rvalue.referent))
        elif isinstance(rvalue, Use):
            src = rvalue.operand.place()
            if src is not None:
                self._compile_ref_copy(constraints, place, src, index)
        elif isinstance(rvalue, Aggregate):
            for field_index, operand in enumerate(rvalue.ops):
                src = operand.place()
                if src is None:
                    continue
                self._compile_ref_copy(
                    constraints, place.project_field(field_index), src, index
                )
        # BinaryOp/UnaryOp never produce references.

    def _compile_ref_copy(
        self, constraints: List[tuple], dest: Place, src: Place, index
    ) -> None:
        """One constraint per reference nested in the copied value."""
        ty = self.body.place_ty(dest)
        for path, _ref_ty in _refs_in_type(ty):
            dest_ref = _place_with_path(dest, path)
            src_ref = _place_with_path(src, path)
            constraints.append((_COPY, index(dest_ref), index(src_ref), src_ref))

    def _compile_call(self, constraints: List[tuple], call: CallTerminator, index) -> None:
        summary = self._summary(call.func)
        if summary is None:
            return
        dest_refs = _refs_in_type(self.body.place_ty(call.destination))
        if not dest_refs:
            return
        # The returned reference(s) may point to anything reachable through
        # the lifetime-tied arguments' references.
        pointees: List[Place] = []
        for param_index in summary.params_tied_to_return:
            if param_index >= len(call.args):
                continue
            arg_place = call.args[param_index].place()
            if arg_place is None:
                continue
            for ref_info in summary.all_refs_of_param(param_index):
                ref_place = _place_with_path(arg_place, ref_info.path)
                pointees.append(ref_place.project_deref())
        if not pointees:
            return
        dest_indices = tuple(
            index(_place_with_path(call.destination, path)) for path, _ref_ty in dest_refs
        )
        constraints.append((_CALL, dest_indices, tuple(pointees)))

    # -- fixpoint -------------------------------------------------------------------

    def _or_row(self, index: int, bits: int) -> bool:
        before = self._rows.get(index)
        if before is None:
            self._rows[index] = bits
            return True
        after = before | bits
        if after != before:
            self._rows[index] = after
            return True
        return False

    def _one_pass(self, constraints: List[tuple]) -> bool:
        changed = False
        rows = self._rows
        for constraint in constraints:
            tag = constraint[0]
            if tag is _BORROW:
                _tag, dest, referent = constraint
                changed |= self._or_row(dest, self.resolve_mask(referent))
            elif tag is _COPY:
                _tag, dest_ref, src_ref_index, src_ref = constraint
                targets = rows.get(src_ref_index, 0)
                resolved = self.resolve_mask(src_ref)
                while resolved:
                    lsb = resolved & -resolved
                    resolved ^= lsb
                    targets |= rows.get(lsb.bit_length() - 1, 0)
                if targets:
                    changed |= self._or_row(dest_ref, targets)
            else:  # _CALL
                _tag, dest_indices, pointees = constraint
                targets = 0
                for pointee in pointees:
                    targets |= self.resolve_mask(pointee)
                if targets:
                    for dest in dest_indices:
                        changed |= self._or_row(dest, targets)
        return changed


def compute_loans(
    body: Body, signatures: Dict[str, FnSig], domain: Optional[PlaceDomain] = None
) -> LoanAnalysis:
    """Run the loan analysis for ``body`` to fixpoint and return it."""
    analysis = LoanAnalysis(body=body, signatures=signatures)
    if domain is not None:
        analysis.domain = domain
    return analysis.run()
