"""Borrow/alias substrate: loan sets, signature summaries, alias oracles.

Section 4.2 of the paper explains that Flowistry reconstructs *loan sets*
(which places a reference may point to) from the outlives-constraints the
Rust compiler exports.  Our substrate plays the same role for MiniRust MIR:

* :mod:`repro.borrowck.signatures` summarises what a function's type
  signature says about mutability and lifetime-ties — the only information
  the modular analysis may use about callees,
* :mod:`repro.borrowck.loans` computes per-place loan sets by a fixpoint over
  borrow expressions, reference copies, and lifetime-tied call returns,
* :mod:`repro.borrowck.oracle` wraps the result behind the
  :class:`AliasOracle` interface and provides the *Ref-blind* ablation
  (type-based aliasing with no lifetime information).
"""

from repro.borrowck.signatures import SignatureSummary, summarize_signature, RefInfo
from repro.borrowck.loans import LoanAnalysis, LoanMap, compute_loans
from repro.borrowck.oracle import AliasOracle, PreciseAliasOracle, TypeBlindAliasOracle, make_oracle
from repro.borrowck.checker import BorrowChecker, BorrowViolation, check_all_bodies, check_body

__all__ = [
    "AliasOracle",
    "BorrowChecker",
    "BorrowViolation",
    "LoanAnalysis",
    "LoanMap",
    "PreciseAliasOracle",
    "RefInfo",
    "SignatureSummary",
    "TypeBlindAliasOracle",
    "check_all_bodies",
    "check_body",
    "compute_loans",
    "make_oracle",
    "summarize_signature",
]
