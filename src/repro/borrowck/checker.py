"""A lightweight ownership-safety (borrow) checker over MIR.

The paper's analysis assumes its input already passed rustc's borrow checker:
ownership-safety is what makes the loan sets a sound pointer analysis
(Section 2.2) and what justifies the modular call rule (a callee cannot
mutate data it only received by shared reference).  This module provides the
corresponding substrate check for MiniRust so that (a) the corpus generator
and examples can be validated to respect ownership, and (b) users get
Rust-like errors instead of silently analysing programs the theory does not
cover.

The checker is a flow-sensitive pass over each MIR body that tracks, per
program point, the set of *live loans* (borrows whose reference may still be
used later) and reports:

* mutation of a place while a live shared or unique loan conflicts with it,
* creation of a unique borrow that conflicts with any live loan,
* creation of a shared borrow that conflicts with a live unique loan,
* reads through shared references are always allowed.

Liveness of a loan is approximated by the liveness of the reference-typed
local that holds it (a non-lexical-lifetimes-style approximation: a loan dies
at the last use of its reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import Diagnostic, Severity
from repro.lang.ast import FnSig
from repro.lang.types import Mutability, RefType
from repro.mir.ir import (
    Aggregate,
    BinaryOp,
    Body,
    CallTerminator,
    Copy,
    Location,
    Move,
    Operand,
    Place,
    Ref,
    Rvalue,
    Statement,
    StatementKind,
    SwitchBool,
    UnaryOp,
    Use,
)


@dataclass(frozen=True)
class Loan:
    """One live borrow: the borrowed place, its kind, and the holder local."""

    place: Place
    mutability: Mutability
    holder: int  # the local that received the reference
    location: Location

    def conflicts_with_place(self, other: Place) -> bool:
        return self.place.conflicts_with(other)


@dataclass
class BorrowViolation:
    """A detected ownership-safety violation."""

    kind: str
    message: str
    location: Location

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(Severity.ERROR, f"{self.kind}: {self.message}")


class BorrowChecker:
    """Checks one MIR body for ownership-safety violations."""

    def __init__(self, body: Body, signatures: Optional[Dict[str, FnSig]] = None):
        self.body = body
        self.signatures = signatures or {}
        self.violations: List[BorrowViolation] = []

    # -- liveness of reference locals ------------------------------------------

    def _last_use_of_local(self) -> Dict[int, Location]:
        """The last location at which each local is read (approximate NLL)."""
        last_use: Dict[int, Location] = {}

        def record_operand(operand: Operand, location: Location) -> None:
            place = operand.place()
            if place is not None:
                last_use[place.local] = max(last_use.get(place.local, location), location)

        for location in self.body.locations():
            instruction = self.body.instruction_at(location)
            if isinstance(instruction, Statement) and instruction.kind is StatementKind.ASSIGN:
                rvalue = instruction.rvalue
                assert rvalue is not None and instruction.place is not None
                for operand in rvalue.operands():
                    record_operand(operand, location)
                if isinstance(rvalue, Ref):
                    last_use[rvalue.referent.local] = max(
                        last_use.get(rvalue.referent.local, location), location
                    )
                # Writing through `(*r).f` is also a use of `r`.
                if instruction.place.has_deref():
                    last_use[instruction.place.local] = max(
                        last_use.get(instruction.place.local, location), location
                    )
            elif isinstance(instruction, CallTerminator):
                for operand in instruction.args:
                    record_operand(operand, location)
            elif isinstance(instruction, SwitchBool):
                record_operand(instruction.discr, location)
        return last_use

    # -- main pass -----------------------------------------------------------------

    def check(self) -> List[BorrowViolation]:
        """Run the checker and return all violations (also kept on ``self``)."""
        last_use = self._last_use_of_local()
        live_loans: Set[Loan] = set()

        def retire_dead_loans(location: Location) -> None:
            dead = {
                loan
                for loan in live_loans
                if last_use.get(loan.holder, loan.location) < location
            }
            live_loans.difference_update(dead)

        def check_mutation(place: Place, location: Location) -> None:
            if place.has_deref():
                # Writes through a reference exercise the loan itself; the
                # type checker already guarantees the reference is unique.
                return
            for loan in live_loans:
                if loan.holder == place.local:
                    continue
                if loan.conflicts_with_place(place):
                    self.violations.append(
                        BorrowViolation(
                            kind="assign-while-borrowed",
                            message=(
                                f"cannot assign to {place.pretty(self.body)} because it is "
                                f"borrowed ({loan.mutability}) at {loan.location.pretty()}"
                            ),
                            location=location,
                        )
                    )
                    return

        def check_new_loan(new_loan: Loan, location: Location) -> None:
            for loan in live_loans:
                if loan.holder == new_loan.holder:
                    continue
                if not loan.conflicts_with_place(new_loan.place):
                    continue
                if new_loan.mutability is Mutability.MUT or loan.mutability is Mutability.MUT:
                    self.violations.append(
                        BorrowViolation(
                            kind="conflicting-borrow",
                            message=(
                                f"cannot borrow {new_loan.place.pretty(self.body)} as "
                                f"{new_loan.mutability} because it is already borrowed "
                                f"({loan.mutability}) at {loan.location.pretty()}"
                            ),
                            location=location,
                        )
                    )
                    return

        # Iterate locations in order; this is a straight-line approximation
        # (loans created in different branches are merged conservatively by
        # keeping every loan live until its holder's last use).
        for location in sorted(self.body.locations()):
            retire_dead_loans(location)
            instruction = self.body.instruction_at(location)

            if isinstance(instruction, Statement) and instruction.kind is StatementKind.ASSIGN:
                assert instruction.place is not None and instruction.rvalue is not None
                rvalue = instruction.rvalue
                if isinstance(rvalue, Ref):
                    new_loan = Loan(
                        place=rvalue.referent,
                        mutability=rvalue.mutability,
                        holder=instruction.place.local,
                        location=location,
                    )
                    check_new_loan(new_loan, location)
                    live_loans.add(new_loan)
                check_mutation(instruction.place, location)

            elif isinstance(instruction, CallTerminator):
                check_mutation(instruction.destination, location)

        return self.violations

    def is_ownership_safe(self) -> bool:
        if not self.violations:
            self.check()
        return not self.violations


def check_body(body: Body, signatures: Optional[Dict[str, FnSig]] = None) -> List[BorrowViolation]:
    """Borrow-check one body and return its violations."""
    return BorrowChecker(body, signatures).check()


def check_all_bodies(lowered, signatures: Optional[Dict[str, FnSig]] = None) -> Dict[str, List[BorrowViolation]]:
    """Borrow-check every lowered body; returns only the offending functions."""
    out: Dict[str, List[BorrowViolation]] = {}
    for name, body in lowered.bodies.items():
        violations = check_body(body, signatures)
        if violations:
            out[name] = violations
    return out
