"""Signature summaries: what a function's type says about its behaviour.

This module is the heart of the paper's modularity argument (Section 2.3).
Given only a function signature, ownership types let us answer:

* **What can the callee mutate?**  Only data reachable through the
  argument's *transitive unique references* (``ω-refs`` with ``ω = uniq``).
* **What can the callee read?**  Data reachable through any transitive
  reference plus the argument values themselves (``shrd``-refs).
* **What can the return value alias?**  Only data whose lifetime appears in
  the return type — if the return type mentions lifetime ``'a`` then it can
  only point into arguments that also mention ``'a``.

These are exactly the facts :class:`SignatureSummary` exposes; the modular
transfer function for calls (T-App) and the loan propagation for call returns
are both built on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lang.ast import FnSig
from repro.lang.types import Mutability, RefType, StructType, TupleType, Type


@dataclass(frozen=True)
class RefInfo:
    """One reference nested inside a parameter (or return) type.

    ``path`` is the sequence of field indices from the parameter root down to
    the reference, so a parameter ``(u32, &'a mut T)`` has a ``RefInfo`` with
    ``path = (1,)``.  The empty path denotes the parameter itself being a
    reference.
    """

    path: Tuple[int, ...]
    mutability: Mutability
    lifetime: Optional[str]
    pointee: Type

    def is_mutable(self) -> bool:
        return self.mutability is Mutability.MUT


def _collect_refs(ty: Type, path: Tuple[int, ...] = ()) -> List[RefInfo]:
    """All references reachable in ``ty`` without crossing another reference.

    This mirrors the ``ω-refs`` metafunction from Section 2.3: base types
    contribute nothing, tuples/structs recurse per field, and a reference
    contributes itself.  We do not recurse *through* a reference here — the
    loan analysis handles indirection levels one at a time.
    """
    if isinstance(ty, RefType):
        return [RefInfo(path, ty.mutability, ty.lifetime, ty.pointee)]
    if isinstance(ty, TupleType):
        out: List[RefInfo] = []
        for index, element in enumerate(ty.elements):
            out.extend(_collect_refs(element, path + (index,)))
        return out
    if isinstance(ty, StructType) and not ty.opaque:
        out = []
        for index, (_, field_ty) in enumerate(ty.fields):
            out.extend(_collect_refs(field_ty, path + (index,)))
        return out
    return []


@dataclass
class SignatureSummary:
    """Everything the modular analysis may assume about a callee."""

    sig: FnSig
    # Per parameter (by index): the references nested in its type.
    param_refs: Dict[int, List[RefInfo]] = field(default_factory=dict)
    # References appearing in the return type.
    return_refs: List[RefInfo] = field(default_factory=list)
    # Parameter indices whose data the return value may alias.
    params_tied_to_return: Set[int] = field(default_factory=set)

    # -- mutation ---------------------------------------------------------------

    def mutable_refs_of_param(self, index: int) -> List[RefInfo]:
        """References through which parameter ``index`` can be mutated.

        With the *Mut-blind* ablation the caller treats every reference as
        mutable; that decision lives in the analysis configuration, not here.
        """
        return [info for info in self.param_refs.get(index, []) if info.is_mutable()]

    def all_refs_of_param(self, index: int) -> List[RefInfo]:
        return list(self.param_refs.get(index, []))

    def param_may_be_mutated(self, index: int) -> bool:
        return bool(self.mutable_refs_of_param(index))

    def mutated_param_indices(self) -> List[int]:
        return [i for i in range(self.sig.arity()) if self.param_may_be_mutated(i)]

    # -- aliasing of the return value -------------------------------------------

    def return_contains_ref(self) -> bool:
        return bool(self.return_refs)

    def return_alias_params(self) -> Set[int]:
        """Parameters whose pointees the return value may alias."""
        return set(self.params_tied_to_return)

    # -- readability --------------------------------------------------------------

    def readable_param_indices(self) -> List[int]:
        """Parameters whose data can influence the call (all of them).

        Listed for symmetry/documentation: the modular rule assumes every
        transitively readable place of every argument flows into every
        mutation and into the return value.
        """
        return list(range(self.sig.arity()))


def summarize_signature(sig: FnSig) -> SignatureSummary:
    """Build a :class:`SignatureSummary` for ``sig``.

    The lifetime-tie computation is where ownership earns its keep: the
    return value may only alias arguments whose types mention a lifetime that
    also occurs in the return type.  If the return type contains references
    whose lifetimes do not match any input lifetime (which can only happen
    for conservatively-elided signatures), we fall back to tying the return
    to *every* reference-carrying parameter — the sound default.
    """
    summary = SignatureSummary(sig=sig)
    for index, param_ty in enumerate(sig.param_types):
        summary.param_refs[index] = _collect_refs(param_ty)
    summary.return_refs = _collect_refs(sig.ret_type)

    if not summary.return_refs:
        return summary

    return_lifetimes = {
        info.lifetime for info in summary.return_refs if info.lifetime is not None
    }
    # Also include lifetimes nested deeper in the return type (e.g. a struct
    # of references): Type.lifetimes() walks everything.
    return_lifetimes.update(sig.ret_type.lifetimes())

    tied: Set[int] = set()
    if return_lifetimes:
        for index, param_ty in enumerate(sig.param_types):
            param_lifetimes = set(param_ty.lifetimes())
            if param_lifetimes & return_lifetimes:
                tied.add(index)

    if not tied:
        # Either lifetimes were omitted or nothing matched: assume the return
        # may alias any reference-typed input.
        tied = {
            index
            for index in range(sig.arity())
            if summary.param_refs.get(index)
        }

    summary.params_tied_to_return = tied
    return summary


def summarize_all(signatures: Dict[str, FnSig]) -> Dict[str, SignatureSummary]:
    """Summarise every signature of a program (memoised by the caller)."""
    return {name: summarize_signature(sig) for name, sig in signatures.items()}
