"""Alias oracles: the pointer-analysis interface used by the flow analysis.

The information flow transfer functions never consult loan sets directly;
they ask an :class:`AliasOracle` two questions:

* ``resolve(place)`` — which concrete places may this (possibly dereferencing)
  place denote?
* ``conflicts(place, theta_keys)`` — which tracked places conflict with a
  mutation of this place?

Two implementations are provided, matching the paper's evaluation conditions:

* :class:`PreciseAliasOracle` uses the lifetime-derived loan sets of
  :mod:`repro.borrowck.loans` (the **Modular** and **Whole-program**
  conditions),
* :class:`TypeBlindAliasOracle` ignores lifetimes and assumes any two
  references with the same pointee type may alias (the **Ref-blind**
  ablation of Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.borrowck.loans import LoanAnalysis, _refs_in_type
from repro.lang.ast import FnSig
from repro.obs import stage as obs_stage
from repro.lang.types import RefType, Type
from repro.mir.ir import Body, Place, Ref, Rvalue, StatementKind, Statement


class AliasOracle:
    """Interface for the pointer analysis consumed by the flow analysis."""

    body: Body

    def resolve(self, place: Place) -> FrozenSet[Place]:
        """Concrete places ``place`` may denote (deref projections resolved)."""
        raise NotImplementedError

    def resolve_indices(self, place: Place, domain) -> "tuple":
        """:meth:`resolve` interned into ``domain`` (a ``PlaceDomain``)."""
        return tuple(domain.index(p) for p in self.resolve(place))

    def aliases_known(self, place: Place) -> bool:
        """Whether the oracle has definite points-to information for ``place``."""
        raise NotImplementedError

    def conflicting(self, place: Place, candidates: Iterable[Place]) -> List[Place]:
        """Candidates that conflict with a mutation of ``place``.

        A candidate conflicts when it is an ancestor or descendant of any
        place that ``place`` may denote (Section 2.1's ``⊓`` relation lifted
        through aliasing).
        """
        resolved = self.resolve(place)
        out = []
        for candidate in candidates:
            candidate_resolved = self.resolve(candidate)
            for target in resolved:
                if any(target.conflicts_with(c) for c in candidate_resolved):
                    out.append(candidate)
                    break
        return out


@dataclass
class PreciseAliasOracle(AliasOracle):
    """Lifetime/loan-based aliasing (the paper's default)."""

    body: Body
    loans: LoanAnalysis

    def resolve(self, place: Place) -> FrozenSet[Place]:
        return self.loans.resolve(place)

    def resolve_indices(self, place: Place, domain) -> "tuple":
        """Resolution as indices of ``domain``.

        When the loan analysis already interns into the caller's domain (the
        indexed flow engine shares its :class:`~repro.mir.indices.BodyIndex`
        place table), the loan bitset *is* the answer; otherwise fall back
        to resolving objects and interning them.
        """
        if self.loans.domain is domain:
            return self.loans.resolve_indices(place)
        return tuple(domain.index(p) for p in self.resolve(place))

    def aliases_known(self, place: Place) -> bool:
        resolved = self.resolve(place)
        return len(resolved) == 1 and not next(iter(resolved)).has_deref()


@dataclass
class TypeBlindAliasOracle(AliasOracle):
    """Type-based aliasing: the *Ref-blind* ablation.

    Without lifetimes, a dereference of a reference with pointee type ``T``
    may denote *any* place of type ``T`` that is ever borrowed in the body,
    any reference-typed argument's pointee of type ``T``, and — because we
    cannot rule it out — the symbolic place itself.  This mirrors the paper's
    description: "the analysis ... assumes all references of the same type
    can alias."
    """

    body: Body
    signatures: Dict[str, FnSig] = field(default_factory=dict)
    _candidates_by_type: Dict[str, Set[Place]] = field(default_factory=dict, init=False)
    _initialized: bool = field(default=False, init=False)

    def _type_key(self, ty: Optional[Type]) -> str:
        return ty.pretty() if ty is not None else "<unknown>"

    def _ensure_candidates(self) -> None:
        if self._initialized:
            return
        self._initialized = True

        def record(place: Place) -> None:
            ty = self.body.place_ty(place)
            if ty is None:
                return
            self._candidates_by_type.setdefault(self._type_key(ty), set()).add(place)

        # Places that are ever borrowed anywhere in the body.
        for block in self.body.blocks:
            for stmt in block.statements:
                if stmt.kind is StatementKind.ASSIGN and isinstance(stmt.rvalue, Ref):
                    record(stmt.rvalue.referent)

        # Pointees of reference-typed arguments (abstract caller memory).
        for local in self.body.arg_locals():
            arg_place = Place.from_local(local.index)
            for path, _ref_ty in _refs_in_type(local.ty):
                ref_place = arg_place
                for index in path:
                    ref_place = ref_place.project_field(index)
                record(ref_place.project_deref())

    def resolve(self, place: Place) -> FrozenSet[Place]:
        self._ensure_candidates()
        bases: Set[Place] = {Place.from_local(place.local)}
        for elem in place.projection:
            next_bases: Set[Place] = set()
            for base in bases:
                if elem.is_deref():
                    base_ty = self.body.place_ty(base)
                    pointee = base_ty.pointee if isinstance(base_ty, RefType) else None
                    candidates = self._candidates_by_type.get(self._type_key(pointee), set())
                    next_bases |= candidates
                    next_bases.add(base.project_deref())
                else:
                    next_bases.add(base.project_field(elem.index))
            bases = next_bases
        return frozenset(bases)

    def aliases_known(self, place: Place) -> bool:
        # Without lifetimes we never treat a dereferencing place as uniquely
        # resolved, so all writes through pointers are weak updates.
        return not place.has_deref()


def make_oracle(
    body: Body,
    signatures: Dict[str, FnSig],
    ref_blind: bool = False,
    place_domain=None,
) -> AliasOracle:
    """Build the alias oracle matching the chosen analysis condition.

    ``place_domain`` lets the indexed flow engine share its place interning
    table with the loan analysis, so oracle resolutions are produced
    directly in the engine's index space.
    """
    if ref_blind:
        return TypeBlindAliasOracle(body=body, signatures=signatures)
    with obs_stage("borrowck", fn=body.fn_name) as sp:
        loans = LoanAnalysis(body=body, signatures=signatures)
        if place_domain is not None:
            loans.domain = place_domain
        oracle = PreciseAliasOracle(body=body, loans=loans.run())
        if sp is not None:
            sp.set(places=len(loans.domain))
        return oracle
