"""The focus engine: span-precise, cursor-driven slicing.

The paper's headline application is an IDE "focus mode": put the cursor on
an expression and see everything it flows to and from, highlighted as source
ranges.  This package turns the per-function dataflow results into that
experience:

* :mod:`repro.focus.spans` — span-set algebra (normalise, union, project),
* :mod:`repro.focus.resolve` — ``(line, col)`` cursor → enclosing MIR place,
* :mod:`repro.focus.table` — precomputed all-places focus tables,
* :mod:`repro.focus.render` — terminal highlight rendering,
* :mod:`repro.focus.server` — the LSP-lite JSON-RPC frontend.
"""

from repro.focus.resolve import FocusTarget, resolve_cursor
from repro.focus.spans import (
    lines_of_spans,
    location_span,
    normalize_spans,
    spans_of_locations,
    union_spans,
)
from repro.focus.table import FocusEntry, FocusTable
from repro.focus.render import render_focus_markers, render_focus_response

__all__ = [
    "FocusEntry",
    "FocusTable",
    "FocusTarget",
    "lines_of_spans",
    "location_span",
    "normalize_spans",
    "render_focus_markers",
    "render_focus_response",
    "resolve_cursor",
    "spans_of_locations",
    "union_spans",
]
