"""Terminal rendering of focus highlights.

Renders a focus result the way the paper's VSCode extension draws it (Figure
5): the enclosing function's source, with the cursor's place underlined and
every span it flows to/from marked.  Two modes:

* **marker mode** (default, no escape codes): each highlighted line is
  followed by a gutter line carrying ``^`` under the seed, ``<`` under
  backward-slice characters, ``>`` under forward-slice characters and ``=``
  where both directions overlap — stable output for tests and pipes.
* **ANSI mode**: inverse-video seed, colored spans, for interactive use.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import Span


SEED_MARK = "^"
BACKWARD_MARK = "<"
FORWARD_MARK = ">"
BOTH_MARK = "="

_ANSI_RESET = "\x1b[0m"
_ANSI_SEED = "\x1b[7m"        # inverse video
_ANSI_BACKWARD = "\x1b[36m"   # cyan
_ANSI_FORWARD = "\x1b[32m"    # green
_ANSI_BOTH = "\x1b[33m"       # yellow


def _columns_of(span: Span, line_no: int, line_len: int) -> range:
    """The 0-based column range ``span`` covers on ``line_no``."""
    if span.is_dummy() or not span.contains_line(line_no):
        return range(0)
    start = span.start_col - 1 if span.start_line == line_no else 0
    end = span.end_col - 1 if span.end_line == line_no else line_len
    return range(max(0, start), max(0, min(end, line_len)))


def _mark_line(
    line_no: int,
    text: str,
    seed: Optional[Span],
    backward: Sequence[Span],
    forward: Sequence[Span],
) -> Optional[str]:
    """The marker gutter for one source line, or ``None`` when unmarked."""
    marks: List[str] = [" "] * len(text)

    def apply(spans: Iterable[Span], mark: str) -> None:
        for span in spans:
            for col in _columns_of(span, line_no, len(text)):
                if marks[col] == " ":
                    marks[col] = mark
                elif marks[col] != mark and marks[col] != SEED_MARK:
                    marks[col] = BOTH_MARK

    apply(backward, BACKWARD_MARK)
    apply(forward, FORWARD_MARK)
    if seed is not None:
        for col in _columns_of(seed, line_no, len(text)):
            marks[col] = SEED_MARK
    gutter = "".join(marks).rstrip()
    return gutter if gutter else None


def render_focus_markers(
    source: str,
    seed: Optional[Span],
    backward: Sequence[Span] = (),
    forward: Sequence[Span] = (),
    window: Optional[Span] = None,
) -> str:
    """Marker-mode rendering of a focus result against ``source``.

    ``window`` restricts output to the enclosing function's lines (plus the
    marker gutters); without it the whole source is rendered.
    """
    out: List[str] = []
    for line_no, text in enumerate(source.splitlines(), start=1):
        if window is not None and not window.contains_line(line_no):
            continue
        out.append(f"{line_no:4d} | {text}")
        gutter = _mark_line(line_no, text, seed, backward, forward)
        if gutter is not None:
            out.append(f"     | {gutter}")
    return "\n".join(out)


def render_focus_ansi(
    source: str,
    seed: Optional[Span],
    backward: Sequence[Span] = (),
    forward: Sequence[Span] = (),
    window: Optional[Span] = None,
) -> str:
    """ANSI-colored rendering of a focus result against ``source``."""
    out: List[str] = []
    for line_no, text in enumerate(source.splitlines(), start=1):
        if window is not None and not window.contains_line(line_no):
            continue
        codes: Dict[int, str] = {}
        for spans, code in (
            (backward, _ANSI_BACKWARD),
            (forward, _ANSI_FORWARD),
        ):
            for span in spans:
                for col in _columns_of(span, line_no, len(text)):
                    codes[col] = _ANSI_BOTH if codes.get(col, code) != code else code
        if seed is not None:
            for col in _columns_of(seed, line_no, len(text)):
                codes[col] = _ANSI_SEED
        rendered: List[str] = [f"{line_no:4d} | "]
        active: Optional[str] = None
        for col, ch in enumerate(text):
            code = codes.get(col)
            if code != active:
                if active is not None:
                    rendered.append(_ANSI_RESET)
                if code is not None:
                    rendered.append(code)
                active = code
            rendered.append(ch)
        if active is not None:
            rendered.append(_ANSI_RESET)
        out.append("".join(rendered))
    return "\n".join(out)


def render_focus_response(source: str, response: dict, color: bool = False) -> str:
    """Render a service ``focus`` response dict (spans as 4-tuples)."""
    seed_data = response.get("seed_span") or response.get("defining_span")
    seed = Span.from_tuple(seed_data) if seed_data else None
    backward = tuple(
        Span.from_tuple(item) for item in response.get("backward", {}).get("spans", [])
    )
    forward = tuple(
        Span.from_tuple(item) for item in response.get("forward", {}).get("spans", [])
    )
    window_data = response.get("function_span")
    window = Span.from_tuple(window_data) if window_data else None
    renderer = render_focus_ansi if color else render_focus_markers
    header = (
        f"// focus on `{response.get('target', '?')}` in {response.get('function', '?')}"
        f" ({response.get('condition', '')}):"
        f" {len(backward)} backward span(s), {len(forward)} forward span(s)"
    )
    return header + "\n" + renderer(source, seed, backward, forward, window)
