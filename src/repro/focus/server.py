"""LSP-lite JSON-RPC 2.0 frontend for the focus engine.

Speaks the editor-facing dialect of the analysis service: JSON-RPC 2.0
messages, one per line (NDJSON framing — the LSP ``Content-Length`` header
layer is deliberately omitted so the server can be driven from shell pipes
and tests), with LSP-shaped parameters: documents are opened/edited through
``textDocument/didOpen`` / ``didChange`` notifications, and focus queries use
LSP's 0-based ``position`` convention.

Methods:

* ``initialize`` / ``shutdown`` / ``exit`` — lifecycle,
* ``textDocument/didOpen`` / ``didChange`` / ``didClose`` — full-text
  document sync onto :class:`~repro.service.session.AnalysisSession` units,
* ``repro/focus`` — cursor focus query; returns LSP-style ranges,
* ``repro/stats`` — cache/session counters,
* ``repro/metrics`` — the process-wide metrics registry snapshot.

Failures map to JSON-RPC error objects; application errors carry the typed
service code (``unknown_function``, ``position_out_of_range``, ...) under
``error.data.code``, so editors can dispatch without parsing messages.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Dict, Optional

from repro.errors import QueryError, ReproError, Span
from repro.obs import get_registry, new_trace_id, start_trace
from repro.service.session import AnalysisSession
from repro.version import __version__


# JSON-RPC 2.0 well-known codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
SERVER_ERROR = -32000


def span_to_range(span: Span) -> dict:
    """Our 1-based half-open span as an LSP 0-based ``Range``."""
    return {
        "start": {"line": span.start_line - 1, "character": span.start_col - 1},
        "end": {"line": span.end_line - 1, "character": span.end_col - 1},
    }


def _spans_to_ranges(spans) -> list:
    return [span_to_range(Span.from_tuple(item)) for item in spans]


class FocusServer:
    """Dispatches JSON-RPC requests onto one analysis session."""

    def __init__(self, session: Optional[AnalysisSession] = None):
        self.session = session or AnalysisSession()
        self.initialized = False
        self.shutdown_requested = False
        self.exit_requested = False

    # -- framing -----------------------------------------------------------------

    def handle_line(self, line: str) -> Optional[dict]:
        """Parse one NDJSON-framed JSON-RPC message and dispatch it."""
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            return self._error(None, PARSE_ERROR, f"invalid JSON: {error}")
        if not isinstance(message, dict):
            return self._error(None, INVALID_REQUEST, "message must be a JSON object")
        return self.handle(message)

    def handle(self, message: dict) -> Optional[dict]:
        """Handle one message; notifications (no ``id``) return ``None``.

        Mirrors the NDJSON dialect's telemetry contract: responses carry a
        ``trace_id`` (top-level, next to ``jsonrpc`` — our NDJSON framing
        has no batching, so the extension is unambiguous), ``"trace": true``
        on the message returns the span tree under ``trace``, and every
        message lands in ``requests_total{protocol="jsonrpc"}``.
        """
        started = time.perf_counter()
        trace_id = message.get("trace_id")
        trace_id = str(trace_id) if trace_id else new_trace_id()
        trace = None
        if message.get("trace") is True:
            with start_trace(str(message.get("method")), trace_id=trace_id) as trace:
                response = self._dispatch(message)
        else:
            response = self._dispatch(message)
        elapsed = time.perf_counter() - started
        method = message.get("method")
        method_label = method if isinstance(method, str) else "invalid"
        registry = get_registry()
        registry.histogram("request_seconds", method=method_label).observe(elapsed)
        registry.counter(
            "requests_total",
            method=method_label,
            protocol="jsonrpc",
            status="error" if response is not None and "error" in response else "ok",
        ).inc()
        if response is not None:
            response["trace_id"] = trace_id
            if trace is not None:
                response["trace"] = trace.to_dict()
        return response

    def _dispatch(self, message: dict) -> Optional[dict]:
        msg_id = message.get("id")
        is_notification = "id" not in message
        method = message.get("method")
        if not isinstance(method, str):
            return None if is_notification else self._error(
                msg_id, INVALID_REQUEST, "missing `method`"
            )
        handler = self._HANDLERS.get(method)
        if handler is None:
            # Unknown notifications are ignored per the LSP contract.
            return None if is_notification else self._error(
                msg_id, METHOD_NOT_FOUND, f"unknown method {method!r}"
            )
        params = message.get("params", {})
        if not isinstance(params, dict):
            return None if is_notification else self._error(
                msg_id, INVALID_PARAMS, "`params` must be an object"
            )
        try:
            result = handler(self, params)
        except QueryError as error:
            return None if is_notification else self._error(
                msg_id, SERVER_ERROR, str(error), data={"code": error.code}
            )
        except ReproError as error:
            return None if is_notification else self._error(
                msg_id, SERVER_ERROR, str(error), data={"code": "repro_error"}
            )
        except Exception as error:  # the loop survives anything a query throws
            return None if is_notification else self._error(
                msg_id,
                SERVER_ERROR,
                f"internal error: {type(error).__name__}: {error}",
                data={"code": "internal_error"},
            )
        if is_notification:
            return None
        return {"jsonrpc": "2.0", "id": msg_id, "result": result}

    @staticmethod
    def _error(msg_id, code: int, message: str, data: Optional[dict] = None) -> dict:
        error: Dict[str, Any] = {"code": code, "message": message}
        if data is not None:
            error["data"] = data
        return {"jsonrpc": "2.0", "id": msg_id, "error": error}

    # -- lifecycle ----------------------------------------------------------------

    def _method_initialize(self, params: dict) -> dict:
        self.initialized = True
        return {
            "capabilities": {
                "textDocumentSync": {"openClose": True, "change": 1},  # 1 = full
                "reproFocusProvider": True,
            },
            "serverInfo": {"name": "repro-focus", "version": __version__},
        }

    def _method_initialized(self, params: dict) -> None:
        return None

    def _method_shutdown(self, params: dict) -> None:
        self.shutdown_requested = True
        return None

    def _method_exit(self, params: dict) -> None:
        self.exit_requested = True
        return None

    # -- document sync ------------------------------------------------------------

    @staticmethod
    def _document_uri(params: dict) -> str:
        doc = params.get("textDocument")
        if not isinstance(doc, dict) or not isinstance(doc.get("uri"), str):
            raise QueryError(
                "params.textDocument.uri is required",
                code=QueryError.INVALID_PARAMS,
            )
        return doc["uri"]

    def _method_did_open(self, params: dict) -> None:
        uri = self._document_uri(params)
        text = params.get("textDocument", {}).get("text")
        if not isinstance(text, str):
            raise QueryError(
                "textDocument/didOpen needs textDocument.text",
                code=QueryError.INVALID_PARAMS,
            )
        self.session.open_unit(uri, text)
        return None

    def _method_did_change(self, params: dict) -> None:
        uri = self._document_uri(params)
        changes = params.get("contentChanges")
        if not isinstance(changes, list) or not changes or "text" not in changes[-1]:
            raise QueryError(
                "textDocument/didChange needs full-text contentChanges",
                code=QueryError.INVALID_PARAMS,
            )
        self.session.update_unit(uri, str(changes[-1]["text"]))
        return None

    def _method_did_close(self, params: dict) -> None:
        self.session.close_unit(self._document_uri(params))
        return None

    # -- queries ------------------------------------------------------------------

    def _method_focus(self, params: dict) -> dict:
        position = params.get("position")
        if not isinstance(position, dict):
            raise QueryError(
                "repro/focus needs a `position` object",
                code=QueryError.INVALID_PARAMS,
            )
        try:
            line = int(position["line"]) + 1
            col = int(position["character"]) + 1
        except (KeyError, TypeError, ValueError):
            raise QueryError(
                "position needs integer `line` and `character` (0-based)",
                code=QueryError.INVALID_PARAMS,
            ) from None
        # Positions (and the ranges in the response) are relative to the
        # addressed document, as in LSP; without a textDocument the query is
        # interpreted against the joined workspace.
        doc = params.get("textDocument")
        unit = doc.get("uri") if isinstance(doc, dict) else None
        direction = str(params.get("direction", "both"))
        response = self.session.focus(
            line=line,
            col=col,
            direction=direction,
            unit=str(unit) if unit is not None else None,
        )
        return self._lsp_focus_result(response)

    @staticmethod
    def _lsp_focus_result(response: dict) -> dict:
        out = {
            "function": response["function"],
            "target": response["target"],
            "condition": response["condition"],
            "cache": response.get("cache"),
            "seedRange": span_to_range(Span.from_tuple(response["seed_span"]))
            if response.get("seed_span")
            else None,
            "definingRange": span_to_range(Span.from_tuple(response["defining_span"]))
            if response.get("defining_span")
            else None,
        }
        if "backward" in response:
            out["backward"] = _spans_to_ranges(response["backward"]["spans"])
        if "forward" in response:
            out["forward"] = _spans_to_ranges(response["forward"]["spans"])
        return out

    def _method_stats(self, params: dict) -> dict:
        return self.session.stats()

    def _method_metrics(self, params: dict) -> dict:
        snapshot = get_registry().snapshot()
        snapshot["session"] = {
            "counters": dict(self.session.counters),
            "store": self.session.store.stats.to_dict(),
        }
        return snapshot

    _HANDLERS = {
        "initialize": _method_initialize,
        "initialized": _method_initialized,
        "shutdown": _method_shutdown,
        "exit": _method_exit,
        "textDocument/didOpen": _method_did_open,
        "textDocument/didChange": _method_did_change,
        "textDocument/didClose": _method_did_close,
        "repro/focus": _method_focus,
        "repro/stats": _method_stats,
        "repro/metrics": _method_metrics,
    }


def serve_jsonrpc(
    in_stream: IO[str], out_stream: IO[str], session: Optional[AnalysisSession] = None
) -> int:
    """Run the JSON-RPC loop until EOF or an ``exit`` notification."""
    server = FocusServer(session)
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        response = server.handle_line(line)
        if response is not None:
            out_stream.write(json.dumps(response, sort_keys=True) + "\n")
            try:
                out_stream.flush()
            except (AttributeError, OSError):
                pass
        if server.exit_requested:
            break
    return 0
