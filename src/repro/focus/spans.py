"""Span-set algebra for the focus engine.

The focus engine's currency is the **span set**: a normalised collection of
character-precise source ranges.  Slices and focus-table entries are sets of
MIR locations; this module maps them onto the source text (via the spans the
lowering attached to every statement and terminator) and provides the
set-level operations — normalisation, union, membership, line projection —
that the renderer, the server, and the property tests share.

Spans follow the lexer's convention: 1-based lines and columns, half-open in
columns (``end_col`` is the column *after* the last character).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.errors import Span
from repro.mir.ir import Body, Location


def normalize_spans(spans: Iterable[Span]) -> Tuple[Span, ...]:
    """Sort spans and merge the ones that overlap or touch.

    Dummy spans are dropped.  The result is canonical: two span collections
    covering the same characters normalise to the same tuple, which is what
    makes warm (cache-served) focus responses byte-equal to cold ones.
    """
    real = sorted(
        (s for s in spans if not s.is_dummy()),
        key=lambda s: (s.start_line, s.start_col, s.end_line, s.end_col),
    )
    merged: List[Span] = []
    for span in real:
        if merged and (span.start_line, span.start_col) <= (
            merged[-1].end_line,
            merged[-1].end_col,
        ):
            merged[-1] = merged[-1].merge(span)
        else:
            merged.append(span)
    return tuple(merged)


def union_spans(*groups: Iterable[Span]) -> Tuple[Span, ...]:
    """Normalised union of several span collections."""
    combined: List[Span] = []
    for group in groups:
        combined.extend(group)
    return normalize_spans(combined)


def spans_contain(spans: Sequence[Span], line: int, col: int) -> bool:
    """Whether a cursor position falls inside any span of the set."""
    return any(span.contains(line, col) for span in spans)


def lines_of_spans(spans: Iterable[Span]) -> FrozenSet[int]:
    """Every source line touched by the span set (for line-level fallbacks)."""
    lines: Set[int] = set()
    for span in spans:
        if span.is_dummy():
            continue
        lines.update(range(span.start_line, span.end_line + 1))
    return frozenset(lines)


def spans_to_json(spans: Iterable[Span]) -> List[List[int]]:
    """Span set as ``[[start_line, start_col, end_line, end_col], ...]``."""
    return [list(span.to_tuple()) for span in spans]


def spans_from_json(data: Iterable[Sequence[int]]) -> Tuple[Span, ...]:
    """Rebuild a span tuple from its JSON ``[l0, c0, l1, c1]`` lists."""
    return tuple(Span.from_tuple(item) for item in data)


def location_span(body: Body, location: Location) -> Span:
    """The source span of the instruction at ``location``.

    Synthetic locations (negative blocks, e.g. the analysis' argument tags)
    have no source position and map to a dummy span.
    """
    if location.block < 0 or location.block >= len(body.blocks):
        return Span()
    instruction = body.instruction_at(location)
    span = getattr(instruction, "span", None)
    return span if span is not None else Span()


def spans_of_locations(body: Body, locations: Iterable[Location]) -> Tuple[Span, ...]:
    """Normalised source spans of a set of MIR locations.

    The char-precise analogue of
    :func:`repro.apps.slicer.lines_of_locations`: where that helper fades
    whole lines, this returns exact ranges suitable for IDE highlights.
    """
    return normalize_spans(location_span(body, loc) for loc in locations)
