"""Cursor resolution: from a ``(line, col)`` position to a MIR place.

The IDE contract of the paper's focus mode starts here: the user puts the
cursor somewhere in the source, and the engine must decide *which place* they
mean.  Resolution works on the type-checked AST (where every place expression
still has its surface span) and then translates the winning expression into
the lowered body's :class:`~repro.mir.ir.Place`, replaying the same
auto-deref insertion the lowering performs — so the resolved place is exactly
the one the dataflow analysis tracked.

The winning expression is the **innermost** place expression containing the
cursor: on ``*point.x`` a cursor over ``x`` resolves to the field, one over
``point`` to the base variable, and one on the ``*`` to the whole deref.
Cursors on a ``let`` binding's name or a parameter name resolve to the bound
variable itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import QueryError, Span
from repro.lang import ast
from repro.lang.typeck import CheckedProgram
from repro.lang.types import RefType
from repro.mir.ir import Body, Location, Place
from repro.mir.lower import LoweredProgram


@dataclass(frozen=True)
class FocusTarget:
    """The result of resolving a cursor: a place within one function."""

    fn_name: str
    place: Place
    label: str          # the place rendered with source-level names, e.g. "(*p).0"
    span: Span          # span of the expression the cursor hit
    defining_span: Span  # span of the base variable's definition


def resolve_function_at(
    checked: CheckedProgram, line: int, col: int
) -> Optional[ast.FnDecl]:
    """The function whose body encloses the cursor, if any."""
    best: Optional[ast.FnDecl] = None
    for fn in checked.program.all_functions():
        if fn.body is None:
            continue
        if fn.span.contains(line, col) and (
            best is None or fn.span.tightness() < best.span.tightness()
        ):
            best = fn
    return best


def _place_expr_candidates(fn: ast.FnDecl, line: int, col: int) -> List[ast.Expr]:
    """Every place expression of ``fn`` whose span contains the cursor."""
    assert fn.body is not None
    out: List[ast.Expr] = []
    for expr in ast.walk_block(fn.body):
        if expr.is_place() and expr.span.contains(line, col):
            out.append(expr)
    return out


def _binding_at(fn: ast.FnDecl, line: int, col: int) -> Optional[Tuple[str, Span]]:
    """A ``let`` name or parameter name under the cursor, if any."""
    for param in fn.params:
        if param.span.contains(line, col):
            return param.name, param.span
    assert fn.body is not None
    for stmt in _walk_stmts(fn.body):
        if isinstance(stmt, ast.LetStmt) and stmt.name_span.contains(line, col):
            return stmt.name, stmt.name_span
    return None


def _walk_stmts(block: ast.Block):
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, ast.WhileStmt):
            yield from _walk_stmts(stmt.body)
        elif isinstance(stmt, ast.ExprStmt):
            yield from _walk_stmts_of_expr(stmt.expr)
        elif isinstance(stmt, ast.LetStmt) and stmt.init is not None:
            yield from _walk_stmts_of_expr(stmt.init)
        elif isinstance(stmt, ast.AssignStmt):
            yield from _walk_stmts_of_expr(stmt.value)
        elif isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
            yield from _walk_stmts_of_expr(stmt.value)
    if block.tail is not None:
        yield from _walk_stmts_of_expr(block.tail)


def _walk_stmts_of_expr(expr: ast.Expr):
    if isinstance(expr, ast.If):
        yield from _walk_stmts(expr.then_block)
        if expr.else_block is not None:
            yield from _walk_stmts(expr.else_block)
    elif isinstance(expr, ast.BlockExpr):
        yield from _walk_stmts(expr.block)
    else:
        for child in expr.children():
            yield from _walk_stmts_of_expr(child)


def place_expr_to_mir(expr: ast.Expr, body: Body) -> Optional[Place]:
    """Translate an AST place expression into the lowered body's place.

    Mirrors :meth:`repro.mir.lower.FunctionLowerer._lower_to_place`: variable
    names map to named locals, field accesses insert the auto-derefs the
    lowering inserts for access through references, and explicit derefs add a
    ``Deref`` projection.  Returns ``None`` when the expression's base is not
    a named local (e.g. a field of a call result, which lives in a
    compiler temporary the cursor cannot name).
    """
    if isinstance(expr, ast.Var):
        local = body.local_by_name(expr.name)
        if local is None:
            return None
        return Place.from_local(local.index)
    if isinstance(expr, ast.Deref):
        base = place_expr_to_mir(expr.base, body)
        return base.project_deref() if base is not None else None
    if isinstance(expr, ast.FieldAccess):
        base = place_expr_to_mir(expr.base, body)
        if base is None:
            return None
        base_ty = expr.base.ty
        while isinstance(base_ty, RefType):
            base = base.project_deref()
            base_ty = base_ty.pointee
        index = expr.field_index
        if index is None:
            index = expr.fld if isinstance(expr.fld, int) else None
        if index is None:
            return None
        return base.project_field(index)
    return None


def resolve_cursor(
    checked: CheckedProgram,
    lowered: LoweredProgram,
    line: int,
    col: int,
) -> FocusTarget:
    """Resolve a cursor position to the enclosing MIR place.

    Raises :class:`QueryError` with a typed code when the position lies
    outside every function body (``position_out_of_range``) or inside one but
    not on any place expression (``no_place_at_position``).
    """
    if line < 1 or col < 1:
        raise QueryError(
            f"position {line}:{col} is not a valid 1-based source position",
            code=QueryError.POSITION_OUT_OF_RANGE,
        )
    fn = resolve_function_at(checked, line, col)
    if fn is None:
        raise QueryError(
            f"position {line}:{col} is not inside any function body",
            code=QueryError.POSITION_OUT_OF_RANGE,
        )
    body = lowered.body(fn.name)
    if body is None:
        raise QueryError(
            f"function {fn.name!r} has no lowered body",
            code=QueryError.UNKNOWN_FUNCTION,
        )

    # A cursor on a binding occurrence (let name, parameter) wins outright.
    binding = _binding_at(fn, line, col)
    if binding is not None:
        name, span = binding
        local = body.local_by_name(name)
        if local is not None:
            place = Place.from_local(local.index)
            return FocusTarget(
                fn_name=fn.name,
                place=place,
                label=place.pretty(body),
                span=span,
                defining_span=local.span,
            )

    candidates = _place_expr_candidates(fn, line, col)
    resolved: List[Tuple[ast.Expr, Place]] = []
    for expr in candidates:
        place = place_expr_to_mir(expr, body)
        if place is not None:
            resolved.append((expr, place))
    if not resolved:
        raise QueryError(
            f"no place expression at {line}:{col} in function {fn.name!r}",
            code=QueryError.NO_PLACE_AT_POSITION,
        )
    expr, place = min(resolved, key=lambda pair: pair[0].span.tightness())
    return FocusTarget(
        fn_name=fn.name,
        place=place,
        label=place.pretty(body),
        span=expr.span,
        defining_span=body.locals[place.local].span,
    )
