"""Precomputed focus tables: every place's slices from one dataflow pass.

The paper's key systems observation is that the dataflow fixpoint already
computes the dependencies of **all** places at once — answering a focus query
per-cursor by re-running the analysis would throw that away.  A
:class:`FocusTable` materialises the all-places view: after a single
:class:`~repro.core.analysis.FunctionFlowResult` is available, one pass over
the body inverts the "written place depends on ℓ" relation into a forward
influence map, and every direct place's backward and forward slice (as
locations *and* as normalised source spans) is tabulated.

Tables are plain JSON-serialisable values, so the analysis service caches
them in the content-addressed :class:`~repro.service.cache.SummaryStore`
keyed by the function's fingerprint: a warm focus query is a dictionary
lookup, and an edit invalidates tables through the same call-graph plan as
every other cached result.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.analysis import FunctionFlowResult
from repro.core.theta import IndexedDependencyContext, arg_location, is_arg_location
from repro.errors import QueryError, Span
from repro.obs import stage as obs_stage
from repro.focus.spans import (
    lines_of_spans,
    location_span,
    normalize_spans,
    spans_from_json,
    spans_to_json,
)
from repro.mir.ir import (
    Body,
    CallTerminator,
    Location,
    Place,
    PlaceElem,
    ProjectionKind,
    Statement,
    StatementKind,
)


def _place_to_json(place: Place) -> List:
    return [
        place.local,
        [[elem.kind.value, elem.index] for elem in place.projection],
    ]


def _place_from_json(data) -> Place:
    local = int(data[0])
    projection = tuple(
        PlaceElem(ProjectionKind(str(kind)), int(index)) for kind, index in data[1]
    )
    return Place(local, projection)


@dataclass(frozen=True)
class FocusEntry:
    """Both slice directions for one direct place, span-mapped."""

    place: Place
    label: str
    defining_span: Span
    backward: Tuple[Location, ...]
    forward: Tuple[Location, ...]
    backward_spans: Tuple[Span, ...]
    forward_spans: Tuple[Span, ...]

    def to_json_dict(self) -> dict:
        """One tabulated place as JSON (locations + normalised spans)."""
        return {
            "place": _place_to_json(self.place),
            "label": self.label,
            "defining_span": list(self.defining_span.to_tuple()),
            "backward": [[loc.block, loc.statement] for loc in self.backward],
            "forward": [[loc.block, loc.statement] for loc in self.forward],
            "backward_spans": spans_to_json(self.backward_spans),
            "forward_spans": spans_to_json(self.forward_spans),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FocusEntry":
        """Rebuild one entry from :meth:`to_json_dict` output."""
        return cls(
            place=_place_from_json(data["place"]),
            label=str(data["label"]),
            defining_span=Span.from_tuple(data["defining_span"]),
            backward=tuple(Location(int(b), int(s)) for b, s in data["backward"]),
            forward=tuple(Location(int(b), int(s)) for b, s in data["forward"]),
            backward_spans=spans_from_json(data["backward_spans"]),
            forward_spans=spans_from_json(data["forward_spans"]),
        )


@dataclass
class FocusTable:
    """All-places focus information for one function under one condition."""

    fn_name: str
    condition: str
    fingerprint: str
    entries: Dict[str, FocusEntry] = field(default_factory=dict)

    # -- lookup ------------------------------------------------------------------

    def entry_for_place(self, place: Place) -> Optional[FocusEntry]:
        """The entry for ``place``, falling back to its base local.

        Projected places the analysis never tracked individually (e.g. a
        field that is only ever written as part of the whole struct) answer
        with the base local's entry — a sound over-approximation, the same
        the dependency context itself makes.
        """
        for candidate in (place, place.base_local()):
            for entry in self.entries.values():
                if entry.place == candidate:
                    return entry
        return None

    def entry_for_variable(self, variable: str) -> FocusEntry:
        """Entry by source-level variable name (raises a typed error).

        Entry labels are source-level renderings (``x``, ``x.0``, ``(*p)``),
        so a plain variable name is itself a label.
        """
        entry = self.entries.get(variable)
        if entry is None:
            raise QueryError(
                f"function {self.fn_name!r} has no variable {variable!r}",
                code=QueryError.UNKNOWN_VARIABLE,
            )
        return entry

    def labels(self) -> List[str]:
        """The printable labels of every tabulated place, sorted."""
        return sorted(self.entries)

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls, result: FunctionFlowResult, fingerprint: str = "", condition: str = ""
    ) -> "FocusTable":
        """Tabulate every direct place of ``result`` in one pass.

        The forward direction is computed by inverting the dependency
        relation once: for each location ℓ' that writes a place ``w``, every
        dependency ``d`` of ``w`` immediately after ℓ' gains ℓ' as an
        influencee.  A place's forward slice is then the union of
        ``influenced[ℓ]`` over its writing locations (plus the writes
        themselves) — byte-identical to running
        :meth:`FunctionFlowResult.forward_slice` per query, without the
        per-query scan.

        Each block is walked *once*, replaying the transfer function
        incrementally from the block's fixpoint entry state, instead of
        re-deriving Θ-after from scratch per location.  Under the indexed
        engine the whole inversion additionally stays in bit-matrix space
        (location masks keyed by dependency index) and only converts to
        location/span objects when the table entries are materialised.
        """
        with obs_stage("focus_table", fn=result.body.fn_name) as sp:
            table = cls._build(result, fingerprint, condition)
            if sp is not None:
                sp.set(entries=len(table.entries))
            return table

    @classmethod
    def _build(
        cls, result: FunctionFlowResult, fingerprint: str = "", condition: str = ""
    ) -> "FocusTable":
        body = result.body
        fixpoint = result.fixpoint
        exit_theta = result.exit_theta
        indexed = isinstance(exit_theta, IndexedDependencyContext)
        if indexed:
            domain = exit_theta.domain
            loc_index = domain.locations.index
            place_index = domain.places.index
            # dependency location index -> bitset of influencee locations.
            influenced_masks: Dict[int, int] = {}
        else:
            influenced: Dict[Location, Set[Location]] = {}

        # One walk per block: written place per location, and the inverted
        # influence map.
        writes: List[Tuple[Location, Place]] = []
        for block_idx, block in enumerate(body.blocks):
            state = fixpoint.lattice.copy(fixpoint.entry_states[block_idx])
            for stmt_idx in range(block.num_locations()):
                location = Location(block_idx, stmt_idx)
                instruction = body.instruction_at(location)
                written: Optional[Place] = None
                if isinstance(instruction, Statement) and instruction.kind is StatementKind.ASSIGN:
                    written = instruction.place
                elif isinstance(instruction, CallTerminator):
                    written = instruction.destination
                fixpoint.transfer(state, body, location)
                if written is None:
                    continue
                writes.append((location, written))
                if indexed:
                    location_bit = 1 << loc_index(location)
                    bits = state.read_conflicts_bits(place_index(written))
                    while bits:
                        lsb = bits & -bits
                        bits ^= lsb
                        dep = lsb.bit_length() - 1
                        influenced_masks[dep] = influenced_masks.get(dep, 0) | location_bit
                else:
                    for dep in state.read_conflicts(written):
                        influenced.setdefault(dep, set()).add(location)

        # Direct places worth tabulating: every local, plus every projected
        # place the exit state tracks (the analysis' own field-sensitivity
        # decides how fine this gets), plus every written place.
        places: Set[Place] = {Place.from_local(local.index) for local in body.locals}
        places.update(exit_theta.places())
        places.update(place for _, place in writes)

        if indexed:
            writes_idx = [
                (loc_index(loc), place_index(written)) for loc, written in writes
            ]
            arg_tag_mask = domain.locations.arg_tag_mask
            locations_of = domain.locations.locations_of
            conflicts_mask = domain.places.conflicts_mask

        table = cls(fn_name=body.fn_name, condition=condition, fingerprint=fingerprint)
        for place in sorted(places, key=lambda p: (p.local, tuple(
            (elem.kind.value, elem.index) for elem in p.projection
        ))):
            local = body.locals[place.local]
            if indexed:
                # Matrix-row form: backward is the place's exit dependencies
                # minus seed tags; forward is the union of the influence
                # masks of its writing locations (plus the writes).
                backward_bits = exit_theta.read_many_bits(
                    result.oracle.resolve_indices(place, domain.places)
                ) & ~arg_tag_mask
                place_idx = place_index(place)
                conflicts = conflicts_mask(place_idx)
                forward_bits = 0
                for write_loc_idx, written_idx in writes_idx:
                    if (conflicts >> written_idx) & 1:
                        forward_bits |= 1 << write_loc_idx
                        forward_bits |= influenced_masks.get(write_loc_idx, 0)
                if local.is_arg and place.is_local():
                    tag_idx = loc_index(arg_location(place.local - 1))
                    forward_bits |= influenced_masks.get(tag_idx, 0)
                backward: Tuple[Location, ...] = tuple(locations_of(backward_bits))
                forward: Tuple[Location, ...] = tuple(locations_of(forward_bits))
            else:
                backward = tuple(sorted(result.backward_slice(place)))
                write_locs: Set[Location] = {
                    loc for loc, written in writes if written.conflicts_with(place)
                }
                forward_set: Set[Location] = set(write_locs)
                for loc in write_locs:
                    forward_set |= influenced.get(loc, set())
                # Parameters are never written in-body: their forward flow is
                # everything depending on the synthetic argument tag seeded at
                # entry (matching `forward_slice_locations`).
                if local.is_arg and place.is_local():
                    forward_set |= influenced.get(arg_location(place.local - 1), set())
                forward = tuple(sorted(forward_set))
            entry = FocusEntry(
                place=place,
                label=place.pretty(body),
                defining_span=body.locals[place.local].span,
                backward=backward,
                forward=forward,
                backward_spans=normalize_spans(
                    location_span(body, loc) for loc in backward
                ),
                forward_spans=normalize_spans(
                    location_span(body, loc) for loc in forward
                ),
            )
            # Shadowed bindings render to the same label; the first (lowest
            # local index) keeps the bare name so name lookups agree with
            # `Body.local_by_name`, while later bindings stay addressable by
            # place (cursor queries) under a disambiguated key.
            key = entry.label
            if key in table.entries:
                key = f"{entry.label}@{place.local}"
            table.entries[key] = entry
        return table

    def respan(self, body: Body) -> "FocusTable":
        """Re-derive every span in this table from ``body``'s current spans.

        Focus tables are cached under a *span-insensitive* content
        fingerprint (the lowered MIR), so an edit that only shifts a
        function's position — a comment added above it, a sibling edited —
        legitimately serves the cached locations, but their old source
        spans would point at the wrong lines.  Locations are stable across
        such edits (same MIR); spans are positional.  Serving layers call
        this with the current body so highlights always track the text on
        screen.
        """
        respanned = FocusTable(
            fn_name=self.fn_name, condition=self.condition, fingerprint=self.fingerprint
        )
        for key, entry in self.entries.items():
            respanned.entries[key] = dataclasses.replace(
                entry,
                defining_span=body.locals[entry.place.local].span,
                backward_spans=normalize_spans(
                    location_span(body, loc) for loc in entry.backward
                ),
                forward_spans=normalize_spans(
                    location_span(body, loc) for loc in entry.forward
                ),
            )
        return respanned

    # -- serialisation ------------------------------------------------------------

    def to_json_dict(self) -> dict:
        """The whole table as the JSON value cached in the SummaryStore."""
        return {
            "fn_name": self.fn_name,
            "condition": self.condition,
            "fingerprint": self.fingerprint,
            "entries": {
                label: entry.to_json_dict()
                for label, entry in sorted(self.entries.items())
            },
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FocusTable":
        """Rebuild a table from :meth:`to_json_dict` output (a warm hit)."""
        table = cls(
            fn_name=str(data["fn_name"]),
            condition=str(data["condition"]),
            fingerprint=str(data["fingerprint"]),
        )
        for label, entry in data["entries"].items():
            table.entries[str(label)] = FocusEntry.from_json_dict(entry)
        return table

    # -- views --------------------------------------------------------------------

    def response_for(self, entry: FocusEntry, direction: str = "both") -> dict:
        """The JSON payload served for one focus query over this table."""
        out: dict = {
            "function": self.fn_name,
            "target": entry.label,
            "condition": self.condition,
            "defining_span": list(entry.defining_span.to_tuple()),
            "direction": direction,
        }
        if direction in ("backward", "both"):
            out["backward"] = {
                "locations": len(entry.backward),
                "spans": spans_to_json(entry.backward_spans),
                "lines": sorted(lines_of_spans(entry.backward_spans)),
            }
        if direction in ("forward", "both"):
            out["forward"] = {
                "locations": len(entry.forward),
                "spans": spans_to_json(entry.forward_spans),
                "lines": sorted(lines_of_spans(entry.forward_spans)),
            }
        return out
