"""Seeded, grammar-directed random program generation.

Unlike :mod:`repro.eval.corpus` — which mimics the code-style profiles of the
paper's ten crates — this generator aims for *feature diversity*: structs,
shared and mutable references, field projections, borrows with derefs,
branches, bounded loops, acyclic call chains, crate-boundary (extern) calls,
tuples, and early returns, all mixed by tunable probabilities.  Every
generated program is well-typed by construction (the seed-sweep test enforces
it) and the output is **byte-identical per (seed, config)**: generation draws
exclusively from one :class:`random.Random` stream over ordered pools, so a
seed in a bug report replays the exact program anywhere.

The generator also records a *feature histogram* per program (how many
loops/borrows/extern calls/... were emitted), which campaigns aggregate so
corpus diversity is measurable rather than asserted (``repro stats
--campaign``).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

GENERATOR_VERSION = 1


def count_loc(text: str) -> int:
    """Non-blank source lines — the single LOC metric the subsystem reports
    (programs, reductions, artifacts all use this one)."""
    return sum(1 for line in text.splitlines() if line.strip())

#: Extern (signature-only) scalar helpers: they model crate-boundary calls —
#: the modular analysis sees only these signatures — while staying trivially
#: interpretable (the oracle battery supplies pure implementations).
EXTERN_CRATE = """crate extfuzz {
    extern fn ext_mix(a: u32, b: u32) -> u32;
    extern fn ext_scale(x: u32, k: u32) -> u32;
    extern fn ext_pick(c: bool, a: u32, b: u32) -> u32;
    extern fn ext_probe(x: u32) -> bool;
}"""

EXTERN_FUNCTIONS = ("ext_mix", "ext_scale", "ext_pick", "ext_probe")

#: Every feature tag the generator can emit — the complete ``note()``
#: vocabulary, in sorted order.  The mass-evaluation harness uses this as
#: the corpus-level coverage target: at scale, every one of these buckets
#: must be non-empty, or the corpus is not exercising the whole grammar.
#: Keep in sync with the ``note(...)`` calls below (a test sweeps seeds and
#: asserts the emitted set equals exactly this tuple).
GENERATOR_FEATURES: Tuple[str, ...] = (
    "arith",
    "bool_let",
    "borrow_mut",
    "borrow_shared",
    "branch",
    "call_extern",
    "call_local",
    "deref_read",
    "deref_write",
    "div_rem",
    "early_return",
    "entry",
    "field_read",
    "field_write",
    "getter",
    "if_else",
    "if_expr",
    "loop",
    "mixer",
    "mixer_call",
    "mut_ref_param",
    "reassign",
    "setter",
    "shared_ref_param",
    "struct_def",
    "struct_literal",
    "tuple",
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and feature knobs for one generated program."""

    crate_name: str = "fuzzed"
    # Item counts.
    n_structs: int = 2
    n_helpers: int = 3
    n_getters: int = 2
    n_setters: int = 2
    n_mixers: int = 1
    n_entries: int = 3
    # Struct and body shape.
    struct_fields: Tuple[int, int] = (2, 4)
    entry_statements: Tuple[int, int] = (4, 10)
    helper_statements: Tuple[int, int] = (1, 4)
    # Entry-function parameter shape.
    p_shared_ref_param: float = 0.7
    p_mut_ref_param: float = 0.6
    # Per-statement feature probabilities (renormalised by the roll table).
    p_branch: float = 0.18
    p_loop: float = 0.10
    p_call: float = 0.18
    p_extern_call: float = 0.12
    p_borrow: float = 0.10
    p_struct_ops: float = 0.16
    p_tuple: float = 0.06
    p_early_return: float = 0.04
    include_extern_crate: bool = True

    def to_json_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["struct_fields"] = list(self.struct_fields)
        out["entry_statements"] = list(self.entry_statements)
        out["helper_statements"] = list(self.helper_statements)
        return out

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "GeneratorConfig":
        kwargs = dict(data)
        for key in ("struct_fields", "entry_statements", "helper_statements"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


#: Named size profiles for campaigns (``repro fuzz --size``).
SIZE_PROFILES: Dict[str, GeneratorConfig] = {
    "small": GeneratorConfig(),
    "medium": GeneratorConfig(
        n_structs=3, n_helpers=5, n_getters=3, n_setters=3, n_mixers=2,
        n_entries=6, entry_statements=(8, 18),
    ),
    "large": GeneratorConfig(
        n_structs=4, n_helpers=8, n_getters=4, n_setters=4, n_mixers=3,
        n_entries=14, entry_statements=(14, 30), helper_statements=(2, 6),
    ),
}


@dataclass
class GeneratedProgram:
    """One generated program: provenance, source text, feature histogram."""

    seed: int
    config: GeneratorConfig
    source: str
    features: Dict[str, int] = field(default_factory=dict)

    @property
    def crate_name(self) -> str:
        return self.config.crate_name

    def loc(self) -> int:
        """Non-blank source lines (the same LOC metric Table 1 uses)."""
        return count_loc(self.source)


class _ProgramBuilder:
    """Accumulates one generated program (all rng draws happen in emit order)."""

    def __init__(self, seed: int, config: GeneratorConfig):
        self.seed = seed
        self.config = config
        self.rng = random.Random(seed)
        self.lines: List[str] = []
        self.features: Dict[str, int] = {}
        self.struct_names: List[str] = []
        self.struct_fields: Dict[str, List[str]] = {}
        self.helpers: List[str] = []
        self.getters: List[Tuple[str, str]] = []
        self.setters: List[Tuple[str, str]] = []
        self.mixers: List[Tuple[str, str, str]] = []

    # -- bookkeeping -------------------------------------------------------------

    def emit(self, text: str = "") -> None:
        self.lines.append(text)

    def note(self, feature: str, count: int = 1) -> None:
        self.features[feature] = self.features.get(feature, 0) + count

    # -- items -------------------------------------------------------------------

    def gen_structs(self) -> None:
        for index in range(max(1, self.config.n_structs)):
            name = f"S{index}"
            lo, hi = self.config.struct_fields
            fields = [f"f{i}" for i in range(self.rng.randint(lo, hi))]
            self.struct_names.append(name)
            self.struct_fields[name] = fields
            rendered = ", ".join(f"{fld}: u32" for fld in fields)
            self.emit(f"    struct {name} {{ {rendered} }}")
            self.note("struct_def")
        self.emit()

    def gen_helpers(self) -> None:
        # helper_i may only call helper_j with j < i, so call chains are
        # acyclic and the whole-program recursion always terminates.
        for index in range(self.config.n_helpers):
            name = f"helper_{index}"
            self.emit(f"    fn {name}(a: u32, b: u32) -> u32 {{")
            pool = ["a", "b"]
            lo, hi = self.config.helper_statements
            for stmt_index in range(self.rng.randint(lo, hi)):
                v = f"h{stmt_index}"
                roll = self.rng.random()
                x, y = self.rng.choice(pool), self.rng.choice(pool)
                if roll < 0.3 and self.helpers:
                    callee = self.rng.choice(self.helpers)
                    self.emit(f"        let {v} = {callee}({x}, {y});")
                    self.note("call_local")
                elif roll < 0.45 and self.config.include_extern_crate:
                    self.emit(f"        let {v} = ext_mix({x}, {y});")
                    self.note("call_extern")
                elif roll < 0.65:
                    k = self.rng.randint(2, 9)
                    self.emit(f"        let {v} = if {x} > {k} {{ {y} + {k} }} else {{ {x} * 2 }};")
                    self.note("if_expr")
                else:
                    op = self.rng.choice(["+", "*", "-"])
                    self.emit(f"        let {v} = {x} {op} {y};")
                    self.note("arith")
                pool.append(v)
            self.emit(f"        {self.rng.choice(pool)} + 1")
            self.emit("    }")
            self.emit()
            self.helpers.append(name)

    def gen_accessors(self) -> None:
        for index in range(self.config.n_getters):
            struct = self.rng.choice(self.struct_names)
            fields = self.struct_fields[struct]
            name = f"get_{index}"
            self.getters.append((name, struct))
            self.emit(f"    fn {name}(s: &{struct}) -> u32 {{")
            if self.rng.random() < 0.5 and len(fields) > 1:
                a, b = self.rng.sample(fields, 2)
                self.emit(f"        s.{a} + s.{b}")
            else:
                self.emit(f"        s.{self.rng.choice(fields)}")
            self.emit("    }")
            self.emit()
            self.note("getter")
        for index in range(self.config.n_setters):
            struct = self.rng.choice(self.struct_names)
            fld = self.rng.choice(self.struct_fields[struct])
            name = f"set_{index}"
            self.setters.append((name, struct))
            self.emit(f"    fn {name}(s: &mut {struct}, v: u32) {{")
            if self.rng.random() < 0.4:
                self.emit(f"        if v > {self.rng.randint(3, 40)} {{")
                self.emit(f"            s.{fld} = v;")
                self.emit("        }")
                self.note("branch")
            else:
                self.emit(f"        s.{fld} = v;")
            self.emit("    }")
            self.emit()
            self.note("setter")
        for index in range(self.config.n_mixers):
            src = self.rng.choice(self.struct_names)
            dst = self.rng.choice(self.struct_names)
            src_fld = self.rng.choice(self.struct_fields[src])
            dst_fld = self.rng.choice(self.struct_fields[dst])
            name = f"mix_{index}"
            self.mixers.append((name, src, dst))
            threshold = self.rng.randint(1, 9)
            self.emit(f"    fn {name}(src: &{src}, dst: &mut {dst}, k: u32) -> bool {{")
            self.emit(f"        if k == {threshold} {{")
            self.emit("            return false;")
            self.emit("        }")
            self.emit(f"        dst.{dst_fld} = src.{src_fld} + k;")
            self.emit("        true")
            self.emit("    }")
            self.emit()
            self.note("mixer")

    # -- entry functions -----------------------------------------------------------

    def gen_entries(self) -> None:
        for index in range(max(1, self.config.n_entries)):
            self._gen_entry(index)

    def _gen_entry(self, index: int) -> None:
        rng = self.rng
        params = ["a: u32", "b: u32", "c: bool"]
        shared_struct: Optional[str] = None
        mut_struct: Optional[str] = None
        if rng.random() < self.config.p_shared_ref_param:
            shared_struct = rng.choice(self.struct_names)
            params.append(f"sp: &{shared_struct}")
            self.note("shared_ref_param")
        if rng.random() < self.config.p_mut_ref_param:
            mut_struct = rng.choice(self.struct_names)
            params.append(f"mp: &mut {mut_struct}")
            self.note("mut_ref_param")
        name = f"entry_{index}"
        self.emit(f"    fn {name}({', '.join(params)}) -> u32 {{")

        state = _EntryState(
            scalars=["a", "b"],
            mut_scalars=[],
            bools=["c"],
            shared_struct=shared_struct,
            mut_struct=mut_struct,
        )
        self.emit(f"        let mut acc = a + {rng.randint(1, 9)};")
        state.scalars.append("acc")
        state.mut_scalars.append("acc")

        lo, hi = self.config.entry_statements
        for _ in range(rng.randint(lo, hi)):
            self._gen_statement(state, depth=0)

        tail = rng.choice(state.scalars)
        if rng.random() < 0.5:
            self.emit(f"        acc + {tail}")
        else:
            self.emit(f"        {tail}")
        self.emit("    }")
        self.emit()
        self.note("entry")

    def _gen_statement(self, state: "_EntryState", depth: int, indent: str = "        ") -> None:
        rng = self.rng
        cfg = self.config
        x, y = rng.choice(state.scalars), rng.choice(state.scalars)
        fresh = state.fresh

        weights = [
            ("branch", cfg.p_branch if depth < 2 else 0.0),
            ("loop", cfg.p_loop if depth == 0 else 0.0),
            ("call", cfg.p_call),
            ("extern", cfg.p_extern_call if cfg.include_extern_crate else 0.0),
            ("borrow", cfg.p_borrow),
            ("struct", cfg.p_struct_ops),
            ("tuple", cfg.p_tuple),
            ("early_return", cfg.p_early_return if depth == 0 else 0.0),
            ("arith", 0.25),
            ("bool", 0.08),
        ]
        total = sum(w for _, w in weights)
        roll = rng.random() * total
        kind = weights[-1][0]
        for candidate, weight in weights:
            if roll < weight:
                kind = candidate
                break
            roll -= weight

        if kind == "arith":
            v = fresh("v")
            op = rng.choice(["+", "*", "-", "%", "/"])
            if op in ("%", "/"):
                self.emit(f"{indent}let {v} = {x} {op} {rng.randint(2, 9)};")
                self.note("div_rem")
            else:
                self.emit(f"{indent}let {v} = {x} {op} {y};")
                self.note("arith")
            state.scalars.append(v)
            if state.mut_scalars and rng.random() < 0.4:
                target = rng.choice(state.mut_scalars)
                self.emit(f"{indent}{target} = {target} + {v};")
                self.note("reassign")
        elif kind == "bool":
            p = fresh("p")
            choice = rng.random()
            if choice < 0.4:
                self.emit(f"{indent}let {p} = {x} < {y};")
            elif choice < 0.7 and state.bools:
                q = rng.choice(state.bools)
                self.emit(f"{indent}let {p} = {q} && {x} <= {rng.randint(5, 60)};")
            else:
                q = rng.choice(state.bools)
                self.emit(f"{indent}let {p} = !{q};")
            state.bools.append(p)
            self.note("bool_let")
        elif kind == "branch":
            cond = self._condition(state)
            self.emit(f"{indent}if {cond} {{")
            for _ in range(rng.randint(1, 2)):
                self._gen_statement(state.nested(), depth + 1, indent + "    ")
            if rng.random() < 0.6:
                self.emit(f"{indent}}} else {{")
                for _ in range(rng.randint(1, 2)):
                    self._gen_statement(state.nested(), depth + 1, indent + "    ")
                self.note("if_else")
            self.emit(f"{indent}}}")
            self.note("branch")
        elif kind == "loop":
            i = fresh("i")
            bound = rng.randint(3, 8)
            target = rng.choice(state.mut_scalars) if state.mut_scalars else None
            self.emit(f"{indent}let mut {i} = 0;")
            self.emit(f"{indent}while {i} < {x} % {bound} {{")
            if target is not None:
                self.emit(f"{indent}    {target} = {target} + {i} + {y};")
            self.emit(f"{indent}    {i} = {i} + 1;")
            self.emit(f"{indent}}}")
            state.scalars.append(i)
            self.note("loop")
        elif kind == "call":
            pool: List[Tuple[str, str]] = [("helper", h) for h in self.helpers]
            if state.shared_struct is not None:
                pool.extend(
                    ("getter_param", g) for g, struct in self.getters
                    if struct == state.shared_struct
                )
            if state.mut_struct is not None:
                pool.extend(
                    ("setter_param", s) for s, struct in self.setters
                    if struct == state.mut_struct
                )
            for g, struct in self.getters:
                if struct in state.structs:
                    pool.append(("getter_local:" + struct, g))
            for s, struct in self.setters:
                if struct in state.structs:
                    pool.append(("setter_local:" + struct, s))
            if not pool:
                v = fresh("v")
                self.emit(f"{indent}let {v} = {x} + {y};")
                state.scalars.append(v)
                self.note("arith")
                return
            role, callee = rng.choice(pool)
            if role == "helper":
                v = fresh("hc")
                self.emit(f"{indent}let {v} = {callee}({x}, {y});")
                state.scalars.append(v)
            elif role == "getter_param":
                v = fresh("gp")
                self.emit(f"{indent}let {v} = {callee}(sp) + {x};")
                state.scalars.append(v)
            elif role == "setter_param":
                self.emit(f"{indent}{callee}(mp, {x});")
            elif role.startswith("getter_local:"):
                struct_var = state.structs[role.split(":", 1)[1]]
                v = fresh("gl")
                self.emit(f"{indent}let {v} = {callee}(&{struct_var});")
                state.scalars.append(v)
            else:
                struct_var = state.structs[role.split(":", 1)[1]]
                self.emit(f"{indent}{callee}(&mut {struct_var}, {x});")
            self.note("call_local")
        elif kind == "extern":
            choice = rng.random()
            if choice < 0.4:
                v = fresh("e")
                self.emit(f"{indent}let {v} = ext_mix({x}, {y});")
                state.scalars.append(v)
            elif choice < 0.6:
                v = fresh("e")
                self.emit(f"{indent}let {v} = ext_scale({x}, {rng.randint(1, 7)});")
                state.scalars.append(v)
            elif choice < 0.8:
                v = fresh("e")
                cond = rng.choice(state.bools)
                self.emit(f"{indent}let {v} = ext_pick({cond}, {x}, {y});")
                state.scalars.append(v)
            else:
                p = fresh("ep")
                self.emit(f"{indent}let {p} = ext_probe({x});")
                state.bools.append(p)
            self.note("call_extern")
        elif kind == "borrow":
            if state.mut_scalars and rng.random() < 0.6:
                target = rng.choice(state.mut_scalars)
                r = fresh("rm")
                self.emit(f"{indent}let {r} = &mut {target};")
                self.emit(f"{indent}*{r} = {x} + {rng.randint(1, 9)};")
                self.note("borrow_mut")
                self.note("deref_write")
            else:
                r = fresh("rs")
                v = fresh("d")
                self.emit(f"{indent}let {r} = &{x};")
                self.emit(f"{indent}let {v} = *{r} + {y};")
                state.scalars.append(v)
                self.note("borrow_shared")
                self.note("deref_read")
        elif kind == "struct":
            self._gen_struct_op(state, indent)
        elif kind == "tuple":
            t = fresh("t")
            v = fresh("tv")
            self.emit(f"{indent}let {t} = ({x}, {y});")
            self.emit(f"{indent}let {v} = {t}.0 + {t}.1;")
            state.scalars.append(v)
            self.note("tuple")
        elif kind == "early_return":
            cond = self._condition(state)
            self.emit(f"{indent}if {cond} {{")
            self.emit(f"{indent}    return {x} + {rng.randint(0, 9)};")
            self.emit(f"{indent}}}")
            self.note("early_return")

    def _gen_struct_op(self, state: "_EntryState", indent: str) -> None:
        rng = self.rng
        fresh = state.fresh
        x = rng.choice(state.scalars)
        options = ["new_local"]
        if state.structs:
            options.extend(["local_read", "local_write"])
        if state.shared_struct is not None:
            options.append("param_read")
        if state.mut_struct is not None:
            options.extend(["param_write", "param_read_mut"])
        if self.mixers and state.structs:
            options.append("mixer")
        choice = rng.choice(options)
        if choice == "new_local":
            struct = rng.choice(self.struct_names)
            var = fresh("st")
            literal = self._struct_literal(struct, state)
            self.emit(f"{indent}let mut {var} = {literal};")
            state.structs[struct] = var
            self.note("struct_literal")
        elif choice == "local_read":
            struct = rng.choice(sorted(state.structs))
            var = state.structs[struct]
            fld = rng.choice(self.struct_fields[struct])
            v = fresh("fr")
            self.emit(f"{indent}let {v} = {var}.{fld} + {x};")
            state.scalars.append(v)
            self.note("field_read")
        elif choice == "local_write":
            struct = rng.choice(sorted(state.structs))
            var = state.structs[struct]
            fld = rng.choice(self.struct_fields[struct])
            self.emit(f"{indent}{var}.{fld} = {x};")
            self.note("field_write")
        elif choice == "param_read":
            fld = rng.choice(self.struct_fields[state.shared_struct])
            v = fresh("pr")
            self.emit(f"{indent}let {v} = sp.{fld} + {x};")
            state.scalars.append(v)
            self.note("field_read")
        elif choice == "param_read_mut":
            fld = rng.choice(self.struct_fields[state.mut_struct])
            v = fresh("mr")
            self.emit(f"{indent}let {v} = mp.{fld} + {x};")
            state.scalars.append(v)
            self.note("field_read")
        elif choice == "param_write":
            fld = rng.choice(self.struct_fields[state.mut_struct])
            self.emit(f"{indent}mp.{fld} = {x};")
            self.note("field_write")
        else:  # mixer
            name, src_struct, dst_struct = rng.choice(self.mixers)
            src_literal = self._struct_literal(src_struct, state)
            src_var = fresh("ms")
            dst_var = fresh("md")
            dst_literal = self._struct_literal(dst_struct, state)
            ok = fresh("ok")
            self.emit(f"{indent}let {src_var} = {src_literal};")
            self.emit(f"{indent}let mut {dst_var} = {dst_literal};")
            self.emit(f"{indent}let {ok} = {name}(&{src_var}, &mut {dst_var}, {x});")
            self.emit(f"{indent}if {ok} {{")
            if state.mut_scalars:
                target = rng.choice(state.mut_scalars)
                self.emit(f"{indent}    {target} = {target} + 1;")
            self.emit(f"{indent}}}")
            state.bools.append(ok)
            self.note("mixer_call")

    def _condition(self, state: "_EntryState") -> str:
        rng = self.rng
        if state.bools and rng.random() < 0.5:
            return rng.choice(state.bools)
        x = rng.choice(state.scalars)
        op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
        return f"{x} {op} {rng.randint(0, 50)}"

    def _struct_literal(self, struct: str, state: "_EntryState") -> str:
        parts = []
        for fld in self.struct_fields[struct]:
            if self.rng.random() < 0.5 and state.scalars:
                parts.append(f"{fld}: {self.rng.choice(state.scalars)}")
            else:
                parts.append(f"{fld}: {self.rng.randint(0, 30)}")
        return f"{struct} {{ {', '.join(parts)} }}"

    # -- top level --------------------------------------------------------------------

    def build(self) -> GeneratedProgram:
        header = (
            f"// repro.fuzz generated program (generator v{GENERATOR_VERSION}, "
            f"seed={self.seed})"
        )
        self.emit(header)
        # The fuzzed crate comes first: the parser's local-crate fallback
        # picks the first crate, so an exported .mrs file analyses its
        # generated functions under bare `repro analyze FILE` too.
        self.emit(f"crate {self.config.crate_name} {{")
        self.gen_structs()
        self.gen_helpers()
        self.gen_accessors()
        self.gen_entries()
        self.emit("}")
        if self.config.include_extern_crate:
            self.emit(EXTERN_CRATE)
        source = "\n".join(self.lines) + "\n"
        return GeneratedProgram(
            seed=self.seed,
            config=self.config,
            source=source,
            features=dict(sorted(self.features.items())),
        )


@dataclass
class _EntryState:
    """Per-entry generation pools (ordered lists keep draws deterministic)."""

    scalars: List[str]
    mut_scalars: List[str]
    bools: List[str]
    shared_struct: Optional[str]
    mut_struct: Optional[str]
    structs: Dict[str, str] = field(default_factory=dict)  # struct name -> local var
    counter: List[int] = field(default_factory=lambda: [0])

    def fresh(self, prefix: str) -> str:
        self.counter[0] += 1
        return f"{prefix}{self.counter[0]}"

    def nested(self) -> "_EntryState":
        """The state visible inside a nested block.

        Bindings introduced inside the block must not leak into the outer
        pools (the block scopes them out), but mutations through already
        visible names are fine — so nested statements share the counter and
        the struct map is copied.
        """
        return _EntryState(
            scalars=list(self.scalars),
            mut_scalars=list(self.mut_scalars),
            bools=list(self.bools),
            shared_struct=self.shared_struct,
            mut_struct=self.mut_struct,
            structs=dict(self.structs),
            counter=self.counter,
        )


def generate(seed: int, config: Optional[GeneratorConfig] = None) -> GeneratedProgram:
    """Generate one program (deterministic, byte-identical per seed+config)."""
    return _ProgramBuilder(seed, config or GeneratorConfig()).build()


def generate_program(seed: int, config: Optional[GeneratorConfig] = None) -> GeneratedProgram:
    """Alias of :func:`generate` (the name the CLI and campaigns use)."""
    return generate(seed, config)


def generate_source(seed: int, config: Optional[GeneratorConfig] = None) -> str:
    """Generated source text only."""
    return generate(seed, config).source


def profile(size: str, crate_name: Optional[str] = None) -> GeneratorConfig:
    """The named size profile, optionally rebound to another crate name."""
    if size not in SIZE_PROFILES:
        raise KeyError(f"unknown fuzz size profile {size!r} (expected one of "
                       f"{sorted(SIZE_PROFILES)})")
    config = SIZE_PROFILES[size]
    if crate_name is not None:
        config = replace(config, crate_name=crate_name)
    return config
