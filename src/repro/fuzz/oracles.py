"""The metamorphic/differential oracle battery.

Every generated program is run through five oracles, each checking one
property the rest of the system promises:

* ``validate`` — the full pipeline (parse → typecheck → lower) succeeds and
  every lowered body passes MIR structural validation *and* the span-fidelity
  pass (:mod:`repro.mir.validate`).  Any crash in any oracle is also folded
  into a failing verdict, so this doubles as the crash oracle.
* ``engine_equivalence`` — the indexed bitset engine and the legacy object
  engine agree byte-for-byte (dependency sizes and exit-Θ entries) on every
  local function, under both the Modular and Whole-program conditions.
* ``cache_equality`` — analysing the program through
  :class:`~repro.service.session.AnalysisSession` twice over one shared
  store (cold, then warm) yields byte-identical canonical JSON, and the warm
  pass actually hits the cache.
* ``noninterference`` — the interpreter-backed soundness check (Theorem
  3.1): perturbing arguments *outside* the computed dependency set of the
  return value never changes the observed result.
* ``focus_agreement`` — the precomputed all-places
  :class:`~repro.focus.table.FocusTable` agrees with per-query slices
  computed directly from the flow result, in both directions.

Injected oracles (``injected:*``) deliberately fail on harmless syntactic
features; they exist so the shrinker and the repro pipeline can be exercised
end-to-end without a real bug.
"""

from __future__ import annotations

import json
import random
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import MODULAR, WHOLE_PROGRAM, AnalysisConfig
from repro.core.engine import FlowEngine
from repro.core.theta import arg_location
from repro.errors import ReproError
from repro.lang import ast
from repro.lang.interp import (
    Interpreter,
    Value,
    VBool,
    VInt,
    VRef,
    VStruct,
    VTuple,
)
from repro.lang.parser import parse_program
from repro.lang.typeck import CheckedProgram, check_program
from repro.lang.types import (
    BoolType,
    Mutability,
    RefType,
    StructType,
    TupleType,
    Type,
    U32Type,
)
from repro.mir.lower import LoweredProgram, lower_program
from repro.mir.validate import validate_program


# ---------------------------------------------------------------------------
# Verdicts and prepared programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OracleVerdict:
    """The outcome of one oracle on one program."""

    oracle: str
    ok: bool
    detail: str = ""

    def kind(self) -> str:
        """A stable failure signature: the detail up to the first ``:``.

        The shrinker matches on ``(oracle, kind)`` so reduction cannot drift
        from one failure mode into a different one.
        """
        return self.detail.split(":", 1)[0] if self.detail else ""

    def to_json_dict(self) -> Dict[str, object]:
        return {"oracle": self.oracle, "ok": self.ok, "detail": self.detail}


@dataclass
class PreparedProgram:
    """A program that made it through the front end, shared by the oracles."""

    source: str
    crate_name: str
    checked: CheckedProgram
    lowered: LoweredProgram


def prepare(source: str, crate_name: str = "fuzzed") -> PreparedProgram:
    """Parse, typecheck, and lower; raises :class:`ReproError` on failure."""
    program = parse_program(source, local_crate=crate_name)
    checked = check_program(program)
    lowered = lower_program(checked)
    return PreparedProgram(
        source=source, crate_name=crate_name, checked=checked, lowered=lowered
    )


# ---------------------------------------------------------------------------
# Oracle: pipeline validity
# ---------------------------------------------------------------------------


def oracle_validate(prep: PreparedProgram) -> OracleVerdict:
    """Structural + span validity of every lowered local body."""
    problems = validate_program(prep.lowered, check_spans=True, local_only=True)
    if problems:
        fn_name, issues = sorted(problems.items())[0]
        return OracleVerdict(
            "validate",
            ok=False,
            detail=f"invalid_mir: {fn_name}: {issues[0]}"
            + (f" (+{len(issues) - 1} more)" if len(issues) > 1 else ""),
        )
    return OracleVerdict("validate", ok=True)


# ---------------------------------------------------------------------------
# Oracle: bitset vs object engine equivalence
# ---------------------------------------------------------------------------


def _engine_snapshot(prep: PreparedProgram, config: AnalysisConfig) -> Dict[str, object]:
    engine = FlowEngine(prep.checked, lowered=prep.lowered, config=config)
    out: Dict[str, object] = {}
    for fn_name in engine.local_function_names():
        result = engine.analyze_function(fn_name)
        theta_items = sorted(
            (place.pretty(result.body), sorted(loc.pretty() for loc in deps))
            for place, deps in result.exit_theta.items()
        )
        out[fn_name] = {
            "sizes": result.dependency_sizes(),
            "theta": theta_items,
        }
    return out


def oracle_engine_equivalence(prep: PreparedProgram) -> OracleVerdict:
    """All engine tiers must agree under Modular and Whole-program.

    The object engine is the referee; bitset always participates, and the
    vector (numpy) tier joins whenever numpy is importable — so every fuzz
    campaign and mass run on a numpy-equipped machine is also a three-way
    differential pass.
    """
    import dataclasses

    from repro.dataflow.vecbitset import HAVE_NUMPY

    tiers = ("bitset", "vector", "object") if HAVE_NUMPY else ("bitset", "object")
    for base in (MODULAR, WHOLE_PROGRAM):
        snapshots = {
            name: _engine_snapshot(prep, dataclasses.replace(base, engine=name))
            for name in tiers
        }
        for name in tiers:
            if name == "object" or snapshots[name] == snapshots["object"]:
                continue
            diverged = sorted(
                fn for fn in snapshots[name]
                if snapshots[name][fn] != snapshots["object"].get(fn)
            )
            return OracleVerdict(
                "engine_equivalence",
                ok=False,
                detail=f"engine_divergence: condition={base.name} "
                f"engine={name} functions={diverged[:3]}",
            )
    return OracleVerdict("engine_equivalence", ok=True)


# ---------------------------------------------------------------------------
# Oracle: warm-vs-cold cache byte-equality through the service session
# ---------------------------------------------------------------------------


def oracle_cache_equality(prep: PreparedProgram) -> OracleVerdict:
    """A warm session over a shared store answers byte-identically to cold."""
    from repro.service.cache import SummaryStore
    from repro.service.session import AnalysisSession

    store = SummaryStore(max_entries=1 << 14)

    def one_pass() -> Tuple[bytes, AnalysisSession]:
        session = AnalysisSession(store=store, local_crate=prep.crate_name)
        session.open_unit("fuzz", prep.source)
        snapshot = session.snapshot(max_variables_per_function=6)
        return json.dumps(snapshot, sort_keys=True).encode("utf-8"), session

    cold_bytes, _ = one_pass()
    hits_before = store.stats.to_dict().get("hits", 0)
    warm_bytes, warm_session = one_pass()
    hits_after = store.stats.to_dict().get("hits", 0)

    if cold_bytes != warm_bytes:
        return OracleVerdict(
            "cache_equality",
            ok=False,
            detail=f"cache_divergence: cold and warm snapshots differ "
            f"({len(cold_bytes)} vs {len(warm_bytes)} bytes)",
        )
    if warm_session.function_names() and hits_after <= hits_before:
        return OracleVerdict(
            "cache_equality",
            ok=False,
            detail="cache_cold_warm: warm pass recorded no store hits",
        )
    return OracleVerdict("cache_equality", ok=True)


# ---------------------------------------------------------------------------
# Oracle: interpreter-backed noninterference
# ---------------------------------------------------------------------------

#: Deterministic pure implementations for the generator's extern crate.
U32_MODULUS = 2 ** 32


def _ext_int(args: Sequence[Value], index: int) -> int:
    value = args[index]
    if not isinstance(value, VInt):
        raise ReproError(f"extern argument {index} is not a u32")
    return value.value


EXTERN_IMPLS = {
    "ext_mix": lambda interp, args: VInt(
        (_ext_int(args, 0) * 31 + _ext_int(args, 1)) % U32_MODULUS
    ),
    "ext_scale": lambda interp, args: VInt(
        (_ext_int(args, 0) * _ext_int(args, 1) + 7) % U32_MODULUS
    ),
    "ext_pick": lambda interp, args: (
        args[1] if isinstance(args[0], VBool) and args[0].value else args[2]
    ),
    "ext_probe": lambda interp, args: VBool(_ext_int(args, 0) % 3 == 0),
}


def _build_value(ty: Type, registry, fill: Callable[[], int]) -> Value:
    """A concrete value of ``ty`` with scalar leaves drawn from ``fill``."""
    if isinstance(ty, U32Type):
        return VInt(fill() % U32_MODULUS)
    if isinstance(ty, BoolType):
        return VBool(fill() % 2 == 0)
    if isinstance(ty, TupleType):
        return VTuple([_build_value(t, registry, fill) for t in ty.elements])
    if isinstance(ty, StructType):
        resolved = registry.lookup(ty.name) or ty
        return VStruct(
            resolved.name, [_build_value(t, registry, fill) for _, t in resolved.fields]
        )
    raise ReproError(f"cannot build an interpreter value for {ty.pretty()}")


def _run_function(
    checked: CheckedProgram,
    fn_name: str,
    param_types: Sequence[Type],
    leaf_values: Sequence[Sequence[int]],
) -> Value:
    """Run ``fn_name`` with arguments built from per-parameter scalar leaves.

    Reference parameters point into a synthetic caller frame, exactly like
    real calls would; ``leaf_values[i]`` supplies the scalar leaves of
    parameter ``i`` in deterministic construction order.
    """
    interpreter = Interpreter(checked, extern_impls=EXTERN_IMPLS, fuel=400_000)
    frame = interpreter.stack.push("<fuzz-caller>")
    registry = checked.registry
    args: List[Value] = []
    for index, ty in enumerate(param_types):
        leaves = list(leaf_values[index])
        cursor = [0]

        def fill() -> int:
            value = leaves[cursor[0] % len(leaves)]
            cursor[0] += 1
            return value

        if isinstance(ty, RefType):
            slot = f"__arg{index}"
            frame.slots[slot] = _build_value(ty.pointee, registry, fill)
            args.append(
                VRef(frame.frame_id, slot, (), ty.mutability is Mutability.MUT)
            )
        else:
            args.append(_build_value(ty, registry, fill))
    try:
        return interpreter.call_function(fn_name, args)
    finally:
        interpreter.stack.pop()


def _leaf_count(ty: Type, registry) -> int:
    if isinstance(ty, (U32Type, BoolType)):
        return 1
    if isinstance(ty, TupleType):
        return sum(_leaf_count(t, registry) for t in ty.elements)
    if isinstance(ty, StructType):
        resolved = registry.lookup(ty.name) or ty
        return sum(_leaf_count(t, registry) for _, t in resolved.fields)
    if isinstance(ty, RefType):
        return _leaf_count(ty.pointee, registry)
    return -1  # unsupported


def oracle_noninterference(
    prep: PreparedProgram, trials: int = 3, seed: int = 0
) -> OracleVerdict:
    """Theorem 3.1, empirically: arguments outside the return value's
    dependency set cannot influence the returned value.

    Checked under both the Modular and the (more precise, hence stricter)
    Whole-program condition, for every local function whose parameters the
    interpreter can construct.
    """
    rng = random.Random(0xF0CC ^ seed)
    checked = prep.checked
    registry = checked.registry
    for config in (MODULAR, WHOLE_PROGRAM):
        engine = FlowEngine(prep.checked, lowered=prep.lowered, config=config)
        for fn_name in engine.local_function_names():
            sig = checked.signatures.get(fn_name)
            if sig is None:
                continue
            param_types = list(sig.param_types)
            leaf_counts = [_leaf_count(ty, registry) for ty in param_types]
            if any(count < 0 for count in leaf_counts):
                continue  # parameter shape the runner cannot construct
            result = engine.analyze_function(fn_name)
            return_deps = result.deps_of_return()
            relevant = {
                index
                for index in range(len(param_types))
                if arg_location(index) in return_deps
            }
            irrelevant = [i for i in range(len(param_types)) if i not in relevant]

            base_leaves = [
                [rng.randrange(0, 64) for _ in range(max(1, count))]
                for count in leaf_counts
            ]
            try:
                baseline = _run_function(checked, fn_name, param_types, base_leaves)
            except ReproError as error:
                return OracleVerdict(
                    "noninterference",
                    ok=False,
                    detail=f"interp_error: {fn_name}: {error}",
                )
            if not irrelevant:
                continue
            for _ in range(trials):
                varied = [list(leaves) for leaves in base_leaves]
                for index in irrelevant:
                    varied[index] = [
                        rng.randrange(0, 64) for _ in range(len(varied[index]))
                    ]
                try:
                    outcome = _run_function(checked, fn_name, param_types, varied)
                except ReproError as error:
                    return OracleVerdict(
                        "noninterference",
                        ok=False,
                        detail=f"interp_error: {fn_name}: {error}",
                    )
                if outcome != baseline:
                    names = [sig.param_names[i] for i in irrelevant]
                    return OracleVerdict(
                        "noninterference",
                        ok=False,
                        detail=f"noninterference_violation: {fn_name} "
                        f"({config.name}): varying {names} (outside the return "
                        f"dependency set) changed the result from "
                        f"{baseline.pretty()} to {outcome.pretty()}",
                    )
    return OracleVerdict("noninterference", ok=True)


# ---------------------------------------------------------------------------
# Oracle: focus-table vs per-query slice agreement
# ---------------------------------------------------------------------------


def oracle_focus_agreement(prep: PreparedProgram) -> OracleVerdict:
    """The all-places focus table must equal per-query slices exactly."""
    from repro.apps.slicer import forward_slice_locations
    from repro.focus.table import FocusTable

    engine = FlowEngine(prep.checked, lowered=prep.lowered, config=MODULAR)
    for fn_name in engine.local_function_names():
        result = engine.analyze_function(fn_name)
        table = FocusTable.build(result)
        body = result.body
        for local in body.user_locals():
            if local.name is None:
                continue
            entry = table.entry_for_variable(local.name)
            backward = frozenset(entry.backward)
            expected_backward = result.backward_slice_of_variable(local.name)
            if backward != expected_backward:
                return OracleVerdict(
                    "focus_agreement",
                    ok=False,
                    detail=f"focus_backward_mismatch: {fn_name}.{local.name}: "
                    f"table {len(backward)} vs query {len(expected_backward)}",
                )
            forward = frozenset(entry.forward)
            expected_forward = forward_slice_locations(result, local.name)
            if forward != expected_forward:
                return OracleVerdict(
                    "focus_agreement",
                    ok=False,
                    detail=f"focus_forward_mismatch: {fn_name}.{local.name}: "
                    f"table {len(forward)} vs query {len(expected_forward)}",
                )
    return OracleVerdict("focus_agreement", ok=True)


# ---------------------------------------------------------------------------
# Injected oracles (pipeline self-tests)
# ---------------------------------------------------------------------------


def _injected_while_loop(prep: PreparedProgram) -> OracleVerdict:
    from repro.fuzz.reduce import walk_statements

    loops = 0
    for fn in prep.checked.program.local.functions():
        if fn.body is None:
            continue
        loops += sum(
            1 for stmt in walk_statements(fn.body) if isinstance(stmt, ast.WhileStmt)
        )
    if loops:
        return OracleVerdict(
            "injected:while_loop",
            ok=False,
            detail=f"injected_while_loop: program contains {loops} while loop(s)",
        )
    return OracleVerdict("injected:while_loop", ok=True)


def _injected_deref_write(prep: PreparedProgram) -> OracleVerdict:
    from repro.fuzz.reduce import walk_statements

    for fn in prep.checked.program.local.functions():
        if fn.body is None:
            continue
        for stmt in walk_statements(fn.body):
            if isinstance(stmt, ast.AssignStmt) and isinstance(stmt.target, ast.Deref):
                return OracleVerdict(
                    "injected:deref_write",
                    ok=False,
                    detail=f"injected_deref_write: {fn.name} assigns through a deref",
                )
    return OracleVerdict("injected:deref_write", ok=True)


INJECTED_ORACLES: Dict[str, Callable[[PreparedProgram], OracleVerdict]] = {
    "while_loop": _injected_while_loop,
    "deref_write": _injected_deref_write,
}


# ---------------------------------------------------------------------------
# The battery
# ---------------------------------------------------------------------------


_ORACLE_FUNCTIONS: Dict[str, Callable[[PreparedProgram], OracleVerdict]] = {
    "validate": oracle_validate,
    "engine_equivalence": oracle_engine_equivalence,
    "cache_equality": oracle_cache_equality,
    "noninterference": oracle_noninterference,
    "focus_agreement": oracle_focus_agreement,
}

DEFAULT_ORACLES: Tuple[str, ...] = tuple(_ORACLE_FUNCTIONS)


def oracle_names(include_injected: bool = False) -> List[str]:
    names = list(DEFAULT_ORACLES)
    if include_injected:
        names.extend(f"injected:{name}" for name in sorted(INJECTED_ORACLES))
    return names


def run_battery(
    source: str,
    crate_name: str = "fuzzed",
    oracles: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[OracleVerdict]:
    """Run the selected oracles (default: all five) on one program.

    A front-end failure is reported as a failing ``validate`` verdict and the
    remaining oracles are skipped (they need a prepared program).  Any
    unexpected exception inside an oracle becomes a failing verdict with a
    ``crash`` signature, so the battery never raises.
    """
    selected = list(oracles) if oracles is not None else list(DEFAULT_ORACLES)
    for name in selected:
        base = name.split(":", 1)
        if name not in _ORACLE_FUNCTIONS and (
            base[0] != "injected" or len(base) != 2 or base[1] not in INJECTED_ORACLES
        ):
            raise ReproError(
                f"unknown oracle {name!r} (known: {oracle_names(include_injected=True)})"
            )

    try:
        prep = prepare(source, crate_name)
    except ReproError as error:
        verdict = OracleVerdict(
            "validate", ok=False, detail=f"{type(error).__name__}: {error}"
        )
        return [verdict]
    except Exception as error:  # pragma: no cover - defensive crash oracle
        return [
            OracleVerdict(
                "validate",
                ok=False,
                detail=f"crash: {type(error).__name__}: {error}",
            )
        ]

    verdicts: List[OracleVerdict] = []
    for name in selected:
        if name.startswith("injected:"):
            runner = INJECTED_ORACLES[name.split(":", 1)[1]]
        else:
            runner = _ORACLE_FUNCTIONS[name]
        try:
            if name == "noninterference":
                verdicts.append(oracle_noninterference(prep, seed=seed))
            else:
                verdicts.append(runner(prep))
        except Exception as error:
            trace = traceback.format_exc(limit=3).strip().splitlines()[-1]
            verdicts.append(
                OracleVerdict(
                    name,
                    ok=False,
                    detail=f"crash: {type(error).__name__}: {error} [{trace}]",
                )
            )
    return verdicts


def first_failure(verdicts: Sequence[OracleVerdict]) -> Optional[OracleVerdict]:
    for verdict in verdicts:
        if not verdict.ok:
            return verdict
    return None
