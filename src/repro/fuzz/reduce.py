"""Delta-debugging reduction of failing fuzz programs.

The shrinker is structure-aware but text-based: it parses the current
candidate, collects removable *units* (whole functions, then individual
statements, each with the source-line range its span covers), and greedily
tries removing them largest-first.  A candidate is accepted only when the
caller's predicate — "the oracle still fails with the same signature" —
holds, so reduction can never drift from one failure mode into another.

Because the only operation is whole-line removal, two properties hold by
construction and are locked in by tests:

* **monotonicity** — the line count never increases across accepted steps,
* **idempotence** — re-shrinking an already shrunk program is a no-op
  (the final pass over every unit made no progress; a rerun repeats it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.errors import ReproError
from repro.fuzz.generator import count_loc
from repro.lang import ast
from repro.lang.parser import parse_program


@dataclass
class ReductionResult:
    """The outcome of shrinking one failing program."""

    original: str
    reduced: str
    probes: int
    rounds: int

    @property
    def original_loc(self) -> int:
        return count_loc(self.original)

    @property
    def reduced_loc(self) -> int:
        return count_loc(self.reduced)

    def to_json_dict(self) -> dict:
        return {
            "original_loc": self.original_loc,
            "reduced_loc": self.reduced_loc,
            "probes": self.probes,
            "rounds": self.rounds,
        }


def _stmt_blocks(stmt: ast.Stmt) -> List[ast.Block]:
    """Nested blocks reachable from one statement (for recursive walks)."""
    if isinstance(stmt, ast.WhileStmt):
        return [stmt.body]
    if isinstance(stmt, ast.ExprStmt) and isinstance(stmt.expr, ast.If):
        blocks = [stmt.expr.then_block]
        if stmt.expr.else_block is not None:
            blocks.append(stmt.expr.else_block)
        return blocks
    return []


def walk_statements(block: ast.Block):
    """Yield every statement in ``block``, descending into nested blocks.

    Shared with :mod:`repro.fuzz.oracles` (the injected oracles) so both
    sides always agree on what a program contains.
    """
    for stmt in block.stmts:
        yield stmt
        for nested in _stmt_blocks(stmt):
            yield from walk_statements(nested)


def removable_units(source: str, crate_name: str = "fuzzed") -> List[Tuple[int, int, str]]:
    """``(start_line, end_line, kind)`` of every removable unit, largest first.

    Function bodies come first (whole definitions disappear in one accepted
    probe when nothing depends on them), then struct/extern items, then
    individual statements.  Returns an empty list when the source no longer
    parses (nothing structured left to remove).
    """
    try:
        program = parse_program(source, local_crate=crate_name)
    except ReproError:
        return []
    functions: List[Tuple[int, int, str]] = []
    items: List[Tuple[int, int, str]] = []
    statements: List[Tuple[int, int, str]] = []
    for crate in program.crates:
        for struct in crate.structs():
            if not struct.span.is_dummy():
                items.append((struct.span.start_line, struct.span.end_line, "struct"))
        for fn in crate.functions():
            if fn.span.is_dummy():
                continue
            if fn.body is None:
                # Signature-only (extern) declarations are single-line items.
                items.append((fn.span.start_line, fn.span.end_line, "extern"))
                continue
            functions.append((fn.span.start_line, fn.span.end_line, "fn"))
            for stmt in walk_statements(fn.body):
                if stmt.span.is_dummy():
                    continue
                statements.append((stmt.span.start_line, stmt.span.end_line, "stmt"))

    def size(unit: Tuple[int, int, str]) -> Tuple[int, int]:
        return (unit[1] - unit[0], unit[1])

    functions.sort(key=size, reverse=True)
    items.sort(key=size, reverse=True)
    statements.sort(key=size, reverse=True)
    return functions + items + statements


def remove_lines(source: str, start_line: int, end_line: int) -> str:
    """Delete the 1-based inclusive line range from ``source``."""
    lines = source.splitlines()
    kept = [
        line
        for number, line in enumerate(lines, start=1)
        if number < start_line or number > end_line
    ]
    return "\n".join(kept) + ("\n" if source.endswith("\n") else "")


def shrink(
    source: str,
    predicate: Callable[[str], bool],
    crate_name: str = "fuzzed",
    max_probes: int = 1500,
) -> ReductionResult:
    """Minimise ``source`` while ``predicate`` (same failure) stays true.

    ``predicate`` receives a candidate source and must return ``True`` only
    when the candidate still exhibits the target failure; candidates that no
    longer parse or fail differently should return ``False``.
    """
    current = source
    probes = 0
    rounds = 0
    changed = True
    while changed and probes < max_probes:
        rounds += 1
        changed = False
        units = removable_units(current, crate_name)
        index = 0
        while index < len(units) and probes < max_probes:
            start, end, _kind = units[index]
            candidate = remove_lines(current, start, end)
            if candidate == current:
                index += 1
                continue
            probes += 1
            if predicate(candidate):
                current = candidate
                changed = True
                units = removable_units(current, crate_name)
                index = 0
            else:
                index += 1

    # Cosmetic last step: collapse blank-line runs (still predicate-gated, so
    # even formatting cannot change the verdict).
    collapsed = _collapse_blank_lines(current)
    if collapsed != current and probes < max_probes:
        probes += 1
        if predicate(collapsed):
            current = collapsed

    return ReductionResult(original=source, reduced=current, probes=probes, rounds=rounds)


def _collapse_blank_lines(source: str) -> str:
    out: List[str] = []
    previous_blank = False
    for line in source.splitlines():
        blank = not line.strip()
        if blank and previous_blank:
            continue
        previous_blank = blank
        out.append(line)
    return "\n".join(out) + ("\n" if source.endswith("\n") else "")
