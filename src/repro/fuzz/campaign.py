"""Budgeted fuzzing campaigns, JSON reports, repro artifacts, corpus export.

A campaign generates ``count`` programs (or as many as fit a wall-clock
budget) from consecutive seeds, runs the oracle battery on each, aggregates a
feature-coverage histogram, shrinks every failure to a minimal repro, and
writes everything under ``benchmarks/reports/`` (created idempotently):

* ``fuzz_campaign.json`` — the machine-readable campaign report,
* ``fuzz_repro_seed<seed>_<oracle>.json`` — one self-contained artifact per
  failure, replayable with ``repro fuzz repro <artifact>``.

The report's ``feature_histogram`` is what ``repro stats --campaign``
renders: per feature, how many occurrences were generated and how many
programs contained it — corpus diversity as a measured quantity.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import get_registry, snapshot_delta
from repro.fuzz.generator import (
    GENERATOR_VERSION,
    GeneratedProgram,
    GeneratorConfig,
    count_loc,
    generate_program,
    profile,
)
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    INJECTED_ORACLES,
    OracleVerdict,
    first_failure,
    run_battery,
)
from repro.fuzz.reduce import ReductionResult, shrink

ARTIFACT_KIND = "repro-fuzz-artifact"
ARTIFACT_VERSION = 1
DEFAULT_REPORT_DIR = "benchmarks/reports"


def ensure_report_dir(path) -> Path:
    """Create (idempotently) and return the report directory."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    return directory


# ---------------------------------------------------------------------------
# Configuration and report
# ---------------------------------------------------------------------------


@dataclass
class CampaignConfig:
    """One fuzzing campaign's budget and feature selection."""

    seed: int = 0
    count: int = 50
    time_budget: Optional[float] = None  # seconds; stops early when exceeded
    size: str = "small"
    oracles: Optional[Sequence[str]] = None  # None = the default battery
    inject: Optional[str] = None  # name of an injected oracle to add
    shrink_failures: bool = True
    max_shrink_probes: int = 1500
    crate_name: str = "fuzzed"
    report_dir: Optional[str] = DEFAULT_REPORT_DIR
    export_dir: Optional[str] = None

    def generator_config(self) -> GeneratorConfig:
        return profile(self.size, crate_name=self.crate_name)

    def oracle_names(self) -> List[str]:
        names = list(self.oracles) if self.oracles is not None else list(DEFAULT_ORACLES)
        if self.inject is not None:
            if self.inject not in INJECTED_ORACLES:
                raise ReproError(
                    f"unknown injected oracle {self.inject!r} "
                    f"(known: {sorted(INJECTED_ORACLES)})"
                )
            names.append(f"injected:{self.inject}")
        return names


@dataclass
class CampaignFailure:
    """One failing (seed, oracle) pair with its shrunk repro."""

    seed: int
    oracle: str
    detail: str
    source: str
    reduced_source: str
    reduction: Optional[ReductionResult] = None
    artifact_path: Optional[str] = None

    def to_json_dict(self) -> dict:
        out = {
            "seed": self.seed,
            "oracle": self.oracle,
            "detail": self.detail,
            "artifact": self.artifact_path,
        }
        if self.reduction is not None:
            out["reduction"] = self.reduction.to_json_dict()
        return out


@dataclass
class CampaignReport:
    """Aggregated campaign outcome (what ``fuzz_campaign.json`` serialises)."""

    config: CampaignConfig
    generated: int = 0
    elapsed_seconds: float = 0.0
    oracle_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    feature_histogram: Dict[str, int] = field(default_factory=dict)
    feature_programs: Dict[str, int] = field(default_factory=dict)
    total_loc: int = 0
    failures: List[CampaignFailure] = field(default_factory=list)
    report_path: Optional[str] = None
    # Metrics-registry delta over the campaign window (stage_seconds,
    # fixpoint_iterations, cache counters): where the fuzzing time went.
    metrics: Optional[dict] = None

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def passed(self) -> bool:
        return not self.failures

    def note_program(self, program: GeneratedProgram) -> None:
        self.generated += 1
        self.total_loc += program.loc()
        for feature, count in program.features.items():
            self.feature_histogram[feature] = (
                self.feature_histogram.get(feature, 0) + count
            )
            self.feature_programs[feature] = self.feature_programs.get(feature, 0) + 1

    def note_verdicts(self, verdicts: Sequence[OracleVerdict]) -> None:
        for verdict in verdicts:
            bucket = self.oracle_counts.setdefault(
                verdict.oracle, {"pass": 0, "fail": 0}
            )
            bucket["pass" if verdict.ok else "fail"] += 1

    def to_json_dict(self) -> dict:
        return {
            "kind": "repro-fuzz-campaign",
            "version": ARTIFACT_VERSION,
            "generator_version": GENERATOR_VERSION,
            "seed": self.config.seed,
            "count": self.config.count,
            "size": self.config.size,
            "oracles": self.config.oracle_names(),
            "generated": self.generated,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "total_loc": self.total_loc,
            "oracle_counts": {
                name: dict(counts) for name, counts in sorted(self.oracle_counts.items())
            },
            "feature_histogram": dict(sorted(self.feature_histogram.items())),
            "feature_programs": dict(sorted(self.feature_programs.items())),
            "failures": [failure.to_json_dict() for failure in self.failures],
            "metrics": self.metrics,
        }


# ---------------------------------------------------------------------------
# Running a campaign
# ---------------------------------------------------------------------------


def _shrink_failure(
    program: GeneratedProgram,
    failing: OracleVerdict,
    config: CampaignConfig,
) -> CampaignFailure:
    target_oracle = failing.oracle
    target_kind = failing.kind()

    def still_fails(candidate: str) -> bool:
        verdicts = run_battery(
            candidate,
            crate_name=config.crate_name,
            oracles=[target_oracle],
            seed=program.seed,
        )
        for verdict in verdicts:
            if not verdict.ok and verdict.oracle == target_oracle:
                return verdict.kind() == target_kind
        return False

    reduction: Optional[ReductionResult] = None
    reduced_source = program.source
    if config.shrink_failures:
        reduction = shrink(
            program.source,
            still_fails,
            crate_name=config.crate_name,
            max_probes=config.max_shrink_probes,
        )
        reduced_source = reduction.reduced
    return CampaignFailure(
        seed=program.seed,
        oracle=target_oracle,
        detail=failing.detail,
        source=program.source,
        reduced_source=reduced_source,
        reduction=reduction,
    )


def write_repro_artifact(
    directory,
    *,
    seed: int,
    oracle: str,
    detail: str,
    source: str,
    size: str = "small",
    crate_name: str = "fuzzed",
    original_loc: Optional[int] = None,
    generator_config: Optional[dict] = None,
    reduction: Optional[ReductionResult] = None,
    name: Optional[str] = None,
) -> str:
    """Write one self-contained repro artifact; returns its path.

    The format is shared between campaign failures and the mass-evaluation
    harness's per-program failure artifacts, so every failure — fuzzed or
    ingested from a committed corpus — replays with ``repro fuzz repro``.
    The file name is routed through the path-traversal guard: artifact
    names derived from corpus program names can never escape ``directory``.
    """
    from repro.eval.corpus import safe_artifact_path

    artifact = {
        "kind": ARTIFACT_KIND,
        "version": ARTIFACT_VERSION,
        "generator_version": GENERATOR_VERSION,
        "seed": seed,
        "size": size,
        "crate_name": crate_name,
        "oracle": oracle,
        "detail": detail,
        "source": source,
        "original_loc": original_loc if original_loc is not None else count_loc(source),
    }
    if generator_config is not None:
        artifact["generator_config"] = generator_config
    if reduction is not None:
        artifact["reduction"] = reduction.to_json_dict()
    safe_oracle = oracle.replace(":", "_")
    stem = name if name is not None else f"fuzz_repro_seed{seed}_{safe_oracle}"
    path = safe_artifact_path(directory, stem, suffix=".json")
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return str(path)


def _write_artifact(failure: CampaignFailure, config: CampaignConfig, directory: Path) -> str:
    return write_repro_artifact(
        directory,
        seed=failure.seed,
        oracle=failure.oracle,
        detail=failure.detail,
        source=failure.reduced_source,
        size=config.size,
        crate_name=config.crate_name,
        original_loc=count_loc(failure.source),
        generator_config=config.generator_config().to_json_dict(),
        reduction=failure.reduction,
    )


def run_campaign(config: CampaignConfig, on_progress=None) -> CampaignReport:
    """Generate programs, run the battery, shrink failures, write reports."""
    oracle_names = config.oracle_names()
    generator_config = config.generator_config()
    report = CampaignReport(config=config)
    exported: List[GeneratedProgram] = []
    metrics_before = get_registry().snapshot()
    start = time.perf_counter()

    for index in range(max(0, config.count)):
        if (
            config.time_budget is not None
            and time.perf_counter() - start > config.time_budget
        ):
            break
        seed = config.seed + index
        program = generate_program(seed, generator_config)
        report.note_program(program)
        if config.export_dir is not None:
            exported.append(program)
        verdicts = run_battery(
            program.source,
            crate_name=config.crate_name,
            oracles=oracle_names,
            seed=seed,
        )
        report.note_verdicts(verdicts)
        failing = first_failure(verdicts)
        if failing is not None:
            report.failures.append(_shrink_failure(program, failing, config))
        if on_progress is not None:
            on_progress(index + 1, report)

    report.elapsed_seconds = time.perf_counter() - start
    report.metrics = snapshot_delta(metrics_before, get_registry().snapshot())

    if config.export_dir is not None:
        # Write exactly the programs this campaign ran (no regeneration; a
        # time budget may have stopped the loop short of `count`).
        write_corpus_files(exported, config.size, config.export_dir)

    if config.report_dir is not None:
        directory = ensure_report_dir(config.report_dir)
        for failure in report.failures:
            failure.artifact_path = _write_artifact(failure, config, directory)
        report_path = directory / "fuzz_campaign.json"
        report_path.write_text(
            json.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        report.report_path = str(report_path)
    return report


def write_corpus_files(programs: Sequence[GeneratedProgram], size: str, directory) -> List[str]:
    """Write generated programs as ``.mrs`` files (one per seed), plus a
    ``corpus_manifest.json`` carrying each program's content digest and
    feature histogram — the histogram export that lets the mass-evaluation
    harness key per-feature breakdowns on committed corpora too."""
    from repro.eval.corpus import CorpusProgram, dedup_programs, program_digest

    out_dir = ensure_report_dir(directory)
    paths: List[str] = []
    members: List[CorpusProgram] = []
    for program in programs:
        name = f"fuzz_{size}_seed{program.seed}"
        path = out_dir / f"{name}.mrs"
        path.write_text(program.source, encoding="utf-8")
        paths.append(str(path))
        members.append(
            CorpusProgram(
                name=name,
                source=program.source,
                digest=program_digest(program.source),
                origin="fuzz",
                crate_name=program.crate_name,
                seed=program.seed,
                features=dict(program.features),
            )
        )
    dedup_programs(members).write_manifest(out_dir)
    return paths


def export_corpus(config: CampaignConfig, directory) -> List[str]:
    """Generate and write the campaign's program set as ``.mrs`` files.

    The exported corpus feeds workloads the hand-built template corpus
    cannot reach (``repro.eval.corpus.generate_fuzz_corpus`` builds the same
    programs in memory for the fig2 perf benchmarks).
    """
    generator_config = config.generator_config()
    programs = [
        generate_program(config.seed + index, generator_config)
        for index in range(max(0, config.count))
    ]
    return write_corpus_files(programs, config.size, directory)


# ---------------------------------------------------------------------------
# Artifact replay (``repro fuzz repro``)
# ---------------------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """The result of replaying a repro artifact."""

    artifact: dict
    verdicts: List[OracleVerdict]
    reproduced: bool

    @property
    def source(self) -> str:
        return self.artifact["source"]


def load_artifact(path) -> dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("kind") != ARTIFACT_KIND:
        raise ReproError(
            f"{path} is not a repro fuzz artifact (kind={data.get('kind')!r})"
        )
    return data


def replay_artifact(path) -> ReplayOutcome:
    """Re-run the recorded oracle on the artifact's (shrunk) program."""
    artifact = load_artifact(path)
    oracle = artifact["oracle"]
    expected_kind = str(artifact.get("detail", "")).split(":", 1)[0]
    verdicts = run_battery(
        artifact["source"],
        crate_name=artifact.get("crate_name", "fuzzed"),
        oracles=[oracle],
        seed=int(artifact.get("seed", 0)),
    )
    reproduced = any(
        not verdict.ok
        and verdict.oracle == oracle
        and (not expected_kind or verdict.kind() == expected_kind)
        for verdict in verdicts
    )
    return ReplayOutcome(artifact=artifact, verdicts=verdicts, reproduced=reproduced)


# ---------------------------------------------------------------------------
# Rendering (CLI + ``repro stats --campaign``)
# ---------------------------------------------------------------------------


def render_oracle_counts(oracle_counts: Dict[str, Dict[str, int]]) -> List[str]:
    """One line per oracle from a ``oracle_counts`` mapping — the shared
    rendering between campaign output and ``repro stats --campaign``."""
    lines = []
    for name, counts in sorted(oracle_counts.items()):
        fails = counts.get("fail", 0)
        status = "ok" if fails == 0 else f"FAIL x{fails}"
        lines.append(f"  {name:<22} pass {counts.get('pass', 0):>5}   {status}")
    return lines


def render_campaign_report(report: CampaignReport) -> str:
    data = report.to_json_dict()
    lines = [
        f"fuzz campaign: {data['generated']} programs "
        f"(seed {data['seed']}, size {data['size']}, "
        f"{data['total_loc']} LOC total) in {data['elapsed_seconds']:.2f}s",
        "",
        "oracle battery:",
    ]
    lines.extend(render_oracle_counts(data["oracle_counts"]))
    if report.failures:
        lines.append("")
        lines.append("failures (shrunk repros):")
        for failure in report.failures:
            reduced = (
                f"{failure.reduction.original_loc} -> {failure.reduction.reduced_loc} LOC"
                if failure.reduction is not None
                else "not shrunk"
            )
            lines.append(
                f"  seed {failure.seed} [{failure.oracle}] {reduced}"
            )
            lines.append(f"    {failure.detail}")
            if failure.artifact_path:
                lines.append(f"    artifact: {failure.artifact_path}")
                lines.append(f"    replay:   repro fuzz repro {failure.artifact_path}")
    if report.report_path:
        lines.append("")
        lines.append(f"report: {report.report_path}")
    return "\n".join(lines)


def render_feature_histogram(data: dict) -> str:
    """The feature-coverage histogram of a campaign report (JSON dict)."""
    histogram = data.get("feature_histogram", {})
    programs = data.get("feature_programs", {})
    generated = max(1, int(data.get("generated", 1)))
    lines = [
        f"feature coverage over {data.get('generated', '?')} generated programs "
        f"(seed {data.get('seed', '?')}, size {data.get('size', '?')}):",
        "",
        f"{'feature':<20} {'occurrences':>12} {'programs':>9} {'coverage':>9}",
    ]
    width = 24
    peak = max(histogram.values(), default=1)
    for feature in sorted(histogram, key=lambda f: (-histogram[f], f)):
        count = histogram[feature]
        share = programs.get(feature, 0) / generated
        bar = "#" * max(1, round(count / peak * width))
        lines.append(
            f"{feature:<20} {count:>12} {programs.get(feature, 0):>9} "
            f"{share:>8.0%}  {bar}"
        )
    return "\n".join(lines)
