"""``repro.fuzz`` — differential fuzzing and metamorphic testing.

The paper's claim is that modular, ownership-based information flow is sound
and precise across real programs; the rest of this repository tests that
claim against one hand-built corpus and fixed unit tests.  This subsystem
turns scenario diversity into a machine-checked property:

* :mod:`repro.fuzz.generator` — a seeded, grammar-directed random program
  generator producing well-typed multi-function MiniRust programs
  (byte-identical output per seed),
* :mod:`repro.fuzz.oracles` — the metamorphic/differential oracle battery
  run on every generated program (engine equivalence, cache byte-equality,
  interpreter-backed noninterference, focus-table agreement, MIR validity),
* :mod:`repro.fuzz.reduce` — a delta-debugging shrinker that minimises a
  failing program while preserving the oracle verdict,
* :mod:`repro.fuzz.campaign` — budgeted campaigns, JSON reports, corpus
  export, and self-contained repro artifacts behind ``repro fuzz``.
"""

from repro.fuzz.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.fuzz.generator import (
    SIZE_PROFILES,
    GeneratedProgram,
    GeneratorConfig,
    generate_program,
    generate_source,
)
from repro.fuzz.oracles import (
    DEFAULT_ORACLES,
    OracleVerdict,
    run_battery,
)
from repro.fuzz.reduce import ReductionResult, shrink

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "DEFAULT_ORACLES",
    "GeneratedProgram",
    "GeneratorConfig",
    "OracleVerdict",
    "ReductionResult",
    "SIZE_PROFILES",
    "generate_program",
    "generate_source",
    "run_battery",
    "run_campaign",
    "shrink",
]
