"""AST-level information flow: the formal judgment of Section 2.

The paper describes the analysis twice: once as an extension of Oxide's
typing judgment over *expressions* (Section 2, the form used for the
noninterference proof), and once as a dataflow analysis over MIR (Section 4,
the implemented form).  This module reproduces the first: a structural walk
of a type-checked MiniRust function that maintains the dependency context Θ
over surface-level places ``x.q`` and computes a dependency set κ for every
expression, following the rules

* ``T-u32``/literals: a constant depends only on its own label,
* ``T-Move``/``T-Copy``: reading a place yields Θ over its loan set,
* ``T-Assign``/``T-AssignDeref``: mutation updates all conflicts of all
  places the target may denote,
* ``T-Borrow``: borrows carry the dependencies of the borrowed place,
* ``T-Branch``: both branches are analysed, contexts joined, and the
  condition's κ added to every place either branch may have mutated,
* ``T-App``: the modular rule — arguments' transitive unique references are
  assumed mutated using every transitively readable input.

The labels ``ℓ`` are AST node ids; each parameter is additionally labelled by
its declaring node so results can speak about "the initial value of x".  The
empirical noninterference tests (Theorem 3.1) compare this analysis against
the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.borrowck.signatures import summarize_signature
from repro.errors import AnalysisError
from repro.lang import ast
from repro.lang.typeck import CheckedProgram
from repro.lang.types import Mutability, RefType, StructType, TupleType, Type


# A surface-level place: a variable name plus a path of field indices.
APlace = Tuple[str, Tuple[int, ...]]

Deps = FrozenSet[int]

EMPTY: Deps = frozenset()


def place_conflicts(a: APlace, b: APlace) -> bool:
    """The ``⊓`` relation of Section 2.1 over surface places."""
    if a[0] != b[0]:
        return False
    shorter, longer = (a[1], b[1]) if len(a[1]) <= len(b[1]) else (b[1], a[1])
    return longer[: len(shorter)] == shorter


@dataclass
class OxideTheta:
    """Θ over surface places, with the conflict-aware read/write helpers."""

    deps: Dict[APlace, Deps] = field(default_factory=dict)

    def get(self, place: APlace) -> Deps:
        return self.deps.get(place, EMPTY)

    def set(self, place: APlace, value: Deps) -> None:
        self.deps[place] = value

    def read_conflicts(self, place: APlace) -> Deps:
        """Dependencies of reading ``place``: tracked descendants (including
        the place itself), falling back to the nearest tracked ancestor when
        the place has no entry of its own — the same field-sensitive read the
        MIR-level analysis uses."""
        out: Set[int] = set()
        name, path = place
        for tracked, deps in self.deps.items():
            if tracked[0] == name and tracked[1][: len(path)] == path:
                out |= deps
        if place not in self.deps:
            nearest: Optional[APlace] = None
            for tracked in self.deps:
                if tracked[0] == name and len(tracked[1]) < len(path) and path[: len(tracked[1])] == tracked[1]:
                    if nearest is None or len(tracked[1]) > len(nearest[1]):
                        nearest = tracked
            if nearest is not None:
                out |= self.deps[nearest]
        return frozenset(out)

    def update_conflicts(self, place: APlace, new_deps: Deps) -> None:
        """``update-conflicts(Θ, p, κ)``: add κ to every conflicting place."""
        for tracked in list(self.deps.keys()):
            if place_conflicts(tracked, place):
                self.deps[tracked] = self.deps[tracked] | new_deps
        self.deps.setdefault(place, EMPTY)
        self.deps[place] = self.deps[place] | new_deps

    def join(self, other: "OxideTheta") -> "OxideTheta":
        merged = dict(self.deps)
        for place, deps in other.deps.items():
            merged[place] = merged.get(place, EMPTY) | deps
        return OxideTheta(merged)

    def changed_places(self, baseline: "OxideTheta") -> List[APlace]:
        """Places whose dependencies grew relative to ``baseline`` (Θ' \\ Θ1)."""
        out = []
        for place, deps in self.deps.items():
            if deps - baseline.get(place):
                out.append(place)
        return out

    def copy(self) -> "OxideTheta":
        return OxideTheta(dict(self.deps))

    def equals(self, other: "OxideTheta") -> bool:
        return self.deps == other.deps


@dataclass
class OxideFlowResult:
    """Result of the AST-level analysis of one function."""

    fn_name: str
    theta: OxideTheta
    return_deps: Deps
    param_labels: Dict[str, int]

    def label_of_param(self, name: str) -> int:
        return self.param_labels[name]

    def params_in_deps(self, deps: Deps) -> Set[str]:
        """Parameters whose initial value is among ``deps``."""
        return {name for name, label in self.param_labels.items() if label in deps}

    def return_depends_on(self, param: str) -> bool:
        return self.param_labels.get(param) in self.return_deps

    def final_deps_of(self, name: str) -> Deps:
        return self.theta.read_conflicts((name, ()))


class OxideFlowAnalysis:
    """Runs the Section 2 judgment over a type-checked function body."""

    def __init__(self, checked: CheckedProgram, fn_name: str, max_loop_iterations: int = 64):
        self.checked = checked
        self.fn_name = fn_name
        decl = checked.program.function(fn_name)
        if decl is None or decl.body is None:
            raise AnalysisError(f"function {fn_name!r} has no body to analyse")
        self.decl = decl
        self.max_loop_iterations = max_loop_iterations
        # Loan environment: reference-typed places -> surface places they may
        # point to.  This is the AST-level analogue of the loan sets of §2.2.
        self.loans: Dict[APlace, Set[APlace]] = {}
        self.param_labels: Dict[str, int] = {}

    # -- type helpers ------------------------------------------------------------

    def _subplaces(self, name: str, ty: Type, path: Tuple[int, ...] = ()) -> List[Tuple[APlace, Type]]:
        out: List[Tuple[APlace, Type]] = [((name, path), ty)]
        if isinstance(ty, TupleType):
            for index, element in enumerate(ty.elements):
                out.extend(self._subplaces(name, element, path + (index,)))
        elif isinstance(ty, StructType) and not ty.opaque:
            for index, (_, field_ty) in enumerate(ty.fields):
                out.extend(self._subplaces(name, field_ty, path + (index,)))
        return out

    # -- public API ----------------------------------------------------------------

    def run(self) -> OxideFlowResult:
        theta = OxideTheta()
        for param in self.decl.params:
            label = param.node_id
            self.param_labels[param.name] = label
            for place, _ty in self._subplaces(param.name, param.ty):
                theta.set(place, frozenset({label}))

        return_deps, theta = self._analyze_block(self.decl.body, theta)
        # Early `return` statements record their dependencies under the
        # synthetic "<return>" place; fold those into the result.
        return_deps = return_deps | theta.read_conflicts(("<return>", ()))
        return OxideFlowResult(
            fn_name=self.fn_name,
            theta=theta,
            return_deps=return_deps,
            param_labels=dict(self.param_labels),
        )

    # -- places and loans --------------------------------------------------------------

    def _as_place(self, expr: ast.Expr) -> Optional[APlace]:
        """Surface place of a non-dereferencing place expression."""
        if isinstance(expr, ast.Var):
            return (expr.name, ())
        if isinstance(expr, ast.FieldAccess):
            base_ty = expr.base.ty
            if isinstance(base_ty, RefType):
                # Field access through a reference involves a deref.
                return None
            base = self._as_place(expr.base)
            if base is None:
                return None
            index = expr.field_index if expr.field_index is not None else expr.fld
            if not isinstance(index, int):
                return None
            return (base[0], base[1] + (index,))
        return None

    def _loan_targets(self, expr: ast.Expr) -> Set[APlace]:
        """Places a (possibly dereferencing) place expression may denote."""
        direct = self._as_place(expr)
        if direct is not None:
            return {direct}
        if isinstance(expr, ast.Deref):
            targets: Set[APlace] = set()
            base_place = self._as_place(expr.base)
            if base_place is not None and base_place in self.loans:
                targets |= self.loans[base_place]
            elif base_place is not None:
                # A reference parameter: represent caller memory symbolically.
                targets.add((f"*{base_place[0]}", base_place[1]))
            else:
                for target in self._loan_targets(expr.base):
                    targets.add((f"*{target[0]}", target[1]))
            return targets
        if isinstance(expr, ast.FieldAccess):
            base_ty = expr.base.ty
            index = expr.field_index if expr.field_index is not None else expr.fld
            if not isinstance(index, int):
                return set()
            if isinstance(base_ty, RefType):
                # Auto-deref: project the field on every pointee.
                inner = self._loan_targets(ast.Deref(base=expr.base, span=expr.span))
                return {(name, path + (index,)) for name, path in inner}
            out = set()
            for name, path in self._loan_targets(expr.base):
                out.add((name, path + (index,)))
            return out
        return set()

    def _record_loans(self, dest: Optional[APlace], expr: ast.Expr) -> None:
        """Track which places a reference stored into ``dest`` may point to."""
        if dest is None:
            return
        if isinstance(expr, ast.Borrow):
            self.loans.setdefault(dest, set()).update(self._loan_targets(expr.place))
        elif isinstance(expr, (ast.Var, ast.FieldAccess)) and isinstance(expr.ty, RefType):
            src = self._as_place(expr)
            if src is not None and src in self.loans:
                self.loans.setdefault(dest, set()).update(self.loans[src])
        elif isinstance(expr, ast.Call) and isinstance(expr.ty, RefType):
            sig = self.checked.signatures.get(expr.func)
            if sig is None:
                return
            summary = summarize_signature(sig)
            for index in summary.params_tied_to_return:
                if index >= len(expr.args):
                    continue
                arg = expr.args[index]
                if isinstance(arg, ast.Borrow):
                    self.loans.setdefault(dest, set()).update(self._loan_targets(arg.place))
                else:
                    arg_place = self._as_place(arg)
                    if arg_place is not None and arg_place in self.loans:
                        self.loans.setdefault(dest, set()).update(self.loans[arg_place])

    # -- blocks and statements --------------------------------------------------------------

    def _analyze_block(self, block: ast.Block, theta: OxideTheta) -> Tuple[Deps, OxideTheta]:
        for stmt in block.stmts:
            theta = self._analyze_stmt(stmt, theta)
        if block.tail is not None:
            return self._analyze_expr(block.tail, theta)
        return EMPTY, theta

    def _analyze_stmt(self, stmt: ast.Stmt, theta: OxideTheta) -> OxideTheta:
        if isinstance(stmt, ast.LetStmt):
            deps: Deps = EMPTY
            if stmt.init is not None:
                deps, theta = self._analyze_expr(stmt.init, theta)
            ty = stmt.declared_ty or (stmt.init.ty if stmt.init is not None else None)
            if ty is None:
                ty = stmt.init.ty if stmt.init is not None else None
            # T-Let: every place rooted at the new binding starts with κ1.
            if ty is not None:
                for place, _ty in self._subplaces(stmt.name, self.checked.registry.resolve(ty)):
                    theta.set(place, deps)
            else:
                theta.set((stmt.name, ()), deps)
            if stmt.init is not None:
                self._record_loans((stmt.name, ()), stmt.init)
            return theta

        if isinstance(stmt, ast.AssignStmt):
            deps, theta = self._analyze_expr(stmt.value, theta)
            deps = deps | frozenset({stmt.node_id})
            targets = self._loan_targets(stmt.target)
            for target in targets:
                theta.update_conflicts(target, deps)
            direct = self._as_place(stmt.target)
            if direct is not None:
                self._record_loans(direct, stmt.value)
            return theta

        if isinstance(stmt, ast.ExprStmt):
            _deps, theta = self._analyze_expr(stmt.expr, theta)
            return theta

        if isinstance(stmt, ast.WhileStmt):
            return self._analyze_while(stmt, theta)

        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                deps, theta = self._analyze_expr(stmt.value, theta)
                theta.update_conflicts(("<return>", ()), deps | frozenset({stmt.node_id}))
            return theta

        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            return theta

        raise AnalysisError(f"unsupported statement {type(stmt).__name__}")

    def _analyze_while(self, stmt: ast.WhileStmt, theta: OxideTheta) -> OxideTheta:
        """A loop is the fixpoint of the branch rule applied repeatedly."""
        current = theta
        for _ in range(self.max_loop_iterations):
            baseline = current.copy()
            cond_deps, after_cond = self._analyze_expr(stmt.cond, current.copy())
            _deps, after_body = self._analyze_block(stmt.body, after_cond)
            joined = baseline.join(after_body)
            # Control dependence: everything the body may have mutated picks
            # up the condition's dependencies (T-Branch).
            for place in joined.changed_places(baseline):
                joined.update_conflicts(place, cond_deps | frozenset({stmt.node_id}))
            if joined.equals(current):
                return joined
            current = joined
        return current

    # -- expressions ----------------------------------------------------------------------------

    def _analyze_expr(self, expr: ast.Expr, theta: OxideTheta) -> Tuple[Deps, OxideTheta]:
        label = frozenset({expr.node_id})

        if isinstance(expr, ast.Literal):
            # T-u32 and friends: a constant's dependency is itself.
            return label, theta

        if isinstance(expr, (ast.Var, ast.FieldAccess, ast.Deref)):
            # T-Move / T-Copy: look up every place the expression may denote.
            deps: Set[int] = set(label)
            targets = self._loan_targets(expr)
            for target in targets:
                deps |= theta.read_conflicts(target)
            if not targets and isinstance(expr, (ast.FieldAccess, ast.Deref)):
                # Projection out of a non-place base (e.g. `(a, b).0`): the
                # value depends on whatever the base expression depends on.
                base_deps, theta = self._analyze_expr(expr.base, theta)
                deps |= base_deps
            # Reading through a pointer also depends on the pointer itself.
            if isinstance(expr, ast.Deref):
                base_place = self._as_place(expr.base)
                if base_place is not None:
                    deps |= theta.read_conflicts(base_place)
            return frozenset(deps), theta

        if isinstance(expr, ast.Unary):
            deps, theta = self._analyze_expr(expr.operand, theta)
            return deps | label, theta

        if isinstance(expr, ast.Binary):
            lhs, theta = self._analyze_expr(expr.lhs, theta)
            rhs, theta = self._analyze_expr(expr.rhs, theta)
            return lhs | rhs | label, theta

        if isinstance(expr, ast.Borrow):
            # T-Borrow: carry the dependencies of the borrowed place.
            deps: Set[int] = set(label)
            for target in self._loan_targets(expr.place):
                deps |= theta.read_conflicts(target)
            return frozenset(deps), theta

        if isinstance(expr, ast.TupleExpr):
            deps = set(label)
            for element in expr.elements:
                element_deps, theta = self._analyze_expr(element, theta)
                deps |= element_deps
            return frozenset(deps), theta

        if isinstance(expr, ast.StructLit):
            deps = set(label)
            for _name, value in expr.fields:
                value_deps, theta = self._analyze_expr(value, theta)
                deps |= value_deps
            return frozenset(deps), theta

        if isinstance(expr, ast.If):
            return self._analyze_if(expr, theta)

        if isinstance(expr, ast.BlockExpr):
            return self._analyze_block(expr.block, theta)

        if isinstance(expr, ast.Call):
            return self._analyze_call(expr, theta)

        raise AnalysisError(f"unsupported expression {type(expr).__name__}")

    def _analyze_if(self, expr: ast.If, theta: OxideTheta) -> Tuple[Deps, OxideTheta]:
        cond_deps, theta1 = self._analyze_expr(expr.cond, theta)
        then_deps, theta2 = self._analyze_block(expr.then_block, theta1.copy())
        if expr.else_block is not None:
            else_deps, theta3 = self._analyze_block(expr.else_block, theta1.copy())
        else:
            else_deps, theta3 = EMPTY, theta1.copy()
        joined = theta2.join(theta3)
        # T-Branch: places mutated in either branch gain the condition's deps.
        for place in joined.changed_places(theta1):
            joined.update_conflicts(place, cond_deps | frozenset({expr.node_id}))
        return cond_deps | then_deps | else_deps | frozenset({expr.node_id}), joined

    def _analyze_call(self, expr: ast.Call, theta: OxideTheta) -> Tuple[Deps, OxideTheta]:
        """T-App: the modular approximation from the callee's signature."""
        sig = self.checked.signatures.get(expr.func)
        summary = summarize_signature(sig) if sig is not None else None

        arg_deps: Set[int] = set()
        arg_pointees: List[Set[APlace]] = []
        for index, arg in enumerate(expr.args):
            deps, theta = self._analyze_expr(arg, theta)
            arg_deps |= deps
            pointees: Set[APlace] = set()
            if summary is not None and index < len(expr.args):
                for _info in summary.all_refs_of_param(index):
                    if isinstance(arg, ast.Borrow):
                        pointees |= self._loan_targets(arg.place)
                    else:
                        arg_place = self._as_place(arg)
                        if arg_place is not None and arg_place in self.loans:
                            pointees |= self.loans[arg_place]
                        elif arg_place is not None:
                            pointees.add((f"*{arg_place[0]}", arg_place[1]))
            arg_pointees.append(pointees)
            for pointee in pointees:
                arg_deps |= theta.read_conflicts(pointee)

        kappa = frozenset(arg_deps) | frozenset({expr.node_id})

        if summary is not None:
            for index in range(len(expr.args)):
                refs = summary.mutable_refs_of_param(index)
                if not refs:
                    continue
                for pointee in arg_pointees[index]:
                    theta.update_conflicts(pointee, kappa)
        return kappa, theta


def analyze_function_oxide(checked: CheckedProgram, fn_name: str) -> OxideFlowResult:
    """Run the AST-level (Section 2) analysis on ``fn_name``."""
    return OxideFlowAnalysis(checked, fn_name).run()
