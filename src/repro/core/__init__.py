"""The information-flow core: Flowistry's analysis, reproduced.

This package contains the paper's primary contribution — a static, modular,
flow- and field-sensitive information flow analysis whose treatment of
function calls relies only on ownership types (mutability qualifiers and
lifetimes) from callee signatures:

* :mod:`repro.core.config` — the analysis conditions of Section 5
  (Modular, Whole-program, Mut-blind, Ref-blind and their combinations),
* :mod:`repro.core.theta` — the dependency context Θ as a join-semilattice,
* :mod:`repro.core.summaries` — modular call summaries from signatures and
  whole-program call summaries from recursively analysed bodies,
* :mod:`repro.core.transfer` — the MIR transfer function (T-Assign,
  T-AssignDeref, T-App of Section 2, adapted to CFGs per Section 4),
* :mod:`repro.core.analysis` — the per-function analysis driver,
* :mod:`repro.core.engine` — the program/crate-level API used by the
  applications and the evaluation harness,
* :mod:`repro.core.oxide` — the AST-level judgment of Section 2, used to
  test noninterference (Theorem 3.1) against the interpreter.
"""

from repro.core.config import AnalysisConfig, all_conditions, condition_name
from repro.core.theta import (
    ARG_BLOCK,
    DependencyContext,
    IndexedDependencyContext,
    IndexedThetaLattice,
    ThetaLattice,
)
from repro.core.analysis import FunctionFlowAnalysis, FunctionFlowResult, analyze_body
from repro.core.engine import FlowEngine, ProgramFlowResult, analyze_program, analyze_source
from repro.core.summaries import (
    CallSummaryProvider,
    ModularSummaryProvider,
    WholeProgramSummary,
)

__all__ = [
    "ARG_BLOCK",
    "AnalysisConfig",
    "CallSummaryProvider",
    "DependencyContext",
    "FlowEngine",
    "FunctionFlowAnalysis",
    "FunctionFlowResult",
    "IndexedDependencyContext",
    "IndexedThetaLattice",
    "ModularSummaryProvider",
    "ProgramFlowResult",
    "ThetaLattice",
    "WholeProgramSummary",
    "all_conditions",
    "analyze_body",
    "analyze_program",
    "analyze_source",
    "condition_name",
]
