"""The dependency context Θ: places mapped to sets of locations.

Section 2 of the paper introduces Θ as a map from memory places ``p`` to
dependency sets ``κ`` (sets of expression labels ``ℓ``); Section 4.1 carries
the same structure over to MIR, where the labels become CFG locations.  The
context forms a join-semilattice under key-wise union — this module provides
the lattice adapter used by the generic dataflow engine along with the read
and (strong/weak) write operations over conflicts that the transfer function
needs.

Two representations share the same semantics:

* :class:`DependencyContext` — the legacy object domain,
  ``Dict[Place, FrozenSet[Location]]``, kept behind
  ``AnalysisConfig(engine="object")`` for one release as the differential
  reference;
* :class:`IndexedDependencyContext` — the fast domain: places and locations
  interned to dense ints (:class:`~repro.mir.indices.BodyIndex`) and Θ
  stored as an :class:`~repro.dataflow.bitset.IndexMatrix` of int-bitset
  rows, making the join (the hottest operation of the whole system) a
  key-wise bitwise-or with an O(rows) dirty bit instead of a cascade of
  frozenset allocations.

Both expose the identical Place/Location-object API at the boundary, so
every consumer of analysis results is representation-agnostic; the indexed
transfer function additionally uses the ``*_bits`` index-level operations to
stay allocation-free inside the fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dataflow.bitset import IndexMatrix
from repro.mir.indices import ARG_BLOCK as _INDICES_ARG_BLOCK, BodyIndex
from repro.mir.ir import Location, Place


# Synthetic block index used to tag "argument i" pseudo-locations when
# computing whole-program call summaries: Location(ARG_BLOCK, i) means "the
# value of the i-th parameter at function entry".
ARG_BLOCK = -2

# mir.indices pre-interns the same synthetic tags without importing core.
assert ARG_BLOCK == _INDICES_ARG_BLOCK

EMPTY_DEPS: FrozenSet[Location] = frozenset()


def arg_location(index: int) -> Location:
    """The synthetic location tagging parameter ``index`` at entry."""
    return Location(ARG_BLOCK, index)


def is_arg_location(location: Location) -> bool:
    return location.block == ARG_BLOCK


@dataclass
class DependencyContext:
    """A single Θ: mapping from places to dependency sets.

    The mapping is sparse — places never written or seeded simply have the
    empty dependency set.  Values are immutable frozensets so contexts can be
    copied cheaply (shallow dict copy).
    """

    deps: Dict[Place, FrozenSet[Location]] = field(default_factory=dict)

    # -- basic access ---------------------------------------------------------

    def get(self, place: Place) -> FrozenSet[Location]:
        return self.deps.get(place, EMPTY_DEPS)

    def set(self, place: Place, value: Iterable[Location]) -> None:
        self.deps[place] = frozenset(value)

    def add(self, place: Place, value: Iterable[Location]) -> None:
        self.deps[place] = self.get(place) | frozenset(value)

    def places(self) -> List[Place]:
        return list(self.deps.keys())

    def items(self) -> Iterator[Tuple[Place, FrozenSet[Location]]]:
        return iter(self.deps.items())

    def __contains__(self, place: Place) -> bool:
        return place in self.deps

    def __len__(self) -> int:
        return len(self.deps)

    # -- reads over conflicts ----------------------------------------------------

    def read_conflicts(self, target: Place) -> FrozenSet[Location]:
        """Dependencies of reading ``target`` (T-Move / T-Copy).

        Reading a place reads all of its sub-places, so the dependencies of
        every tracked *descendant* (including the place itself) are included.
        When the place itself is not tracked, the nearest tracked *ancestor*
        describes the region it lives in and is included as a conservative
        fallback.  Tracked ancestors are deliberately **not** consulted when
        the place has its own entry — that is what makes the analysis
        field-sensitive: after ``t.1 = 3``, reading ``t.0`` only sees
        ``t.0``'s own dependencies even though ``Θ(t)`` grew (Section 2.1).
        """
        out: Set[Location] = set()
        for place, deps in self.deps.items():
            if target.is_prefix_of(place):
                out |= deps
        if target not in self.deps:
            nearest: Optional[Place] = None
            for place in self.deps:
                if place.is_prefix_of(target) and place != target:
                    if nearest is None or len(place.projection) > len(nearest.projection):
                        nearest = place
            if nearest is not None:
                out |= self.deps[nearest]
        return frozenset(out)

    def read_many(self, targets: Iterable[Place]) -> FrozenSet[Location]:
        out: Set[Location] = set()
        for target in targets:
            out |= self.read_conflicts(target)
        return frozenset(out)

    # -- writes over conflicts -----------------------------------------------------

    def write_weak(self, target: Place, new_deps: Iterable[Location]) -> None:
        """``update-conflicts`` from Section 2.1: add ``new_deps`` to every
        tracked place conflicting with ``target`` (and to ``target`` itself)."""
        additions = frozenset(new_deps)
        for place in list(self.deps.keys()):
            if place.conflicts_with(target):
                self.deps[place] = self.deps[place] | additions
        self.add(target, additions)

    def write_strong(self, target: Place, new_deps: Iterable[Location]) -> None:
        """A strong update: the target (and the sub-places it contains) now
        depend exactly on ``new_deps``; ancestors accumulate them weakly.

        Flowistry performs strong updates when the mutated place is
        unambiguous; the paper's formal rule (T-Assign) is purely additive,
        which is also available by disabling ``strong_updates`` in the
        configuration.
        """
        replacement = frozenset(new_deps)
        for place in list(self.deps.keys()):
            if place == target:
                continue
            if target.is_prefix_of(place):
                # Descendants are overwritten along with the target.
                self.deps[place] = replacement
            elif place.is_prefix_of(target):
                # Ancestors changed partially: accumulate.
                self.deps[place] = self.deps[place] | replacement
        self.deps[target] = replacement

    # -- structural operations --------------------------------------------------------

    def copy(self) -> "DependencyContext":
        return DependencyContext(dict(self.deps))

    def join(self, other: "DependencyContext") -> "DependencyContext":
        """Key-wise union: ``Θ1 ∨ Θ2`` from Section 4.1."""
        merged = dict(self.deps)
        for place, deps in other.deps.items():
            existing = merged.get(place)
            merged[place] = deps if existing is None else existing | deps
        return DependencyContext(merged)

    def equals(self, other: "DependencyContext") -> bool:
        return self.deps == other.deps

    def restrict_to_locals(self, locals_of_interest: Iterable[int]) -> "DependencyContext":
        wanted = set(locals_of_interest)
        return DependencyContext(
            {place: deps for place, deps in self.deps.items() if place.local in wanted}
        )

    def total_size(self) -> int:
        return sum(len(deps) for deps in self.deps.values())

    def pretty(self, body=None) -> str:
        lines = []
        for place in sorted(self.deps, key=lambda p: (p.local, p.projection)):
            deps = sorted(self.deps[place])
            rendered = ", ".join(d.pretty() if d.block >= 0 else f"arg{d.statement}" for d in deps)
            lines.append(f"{place.pretty(body)}: {{{rendered}}}")
        return "\n".join(lines)


class ThetaLattice:
    """Adapter exposing :class:`DependencyContext` as a join-semilattice."""

    def bottom(self) -> DependencyContext:
        return DependencyContext()

    def join(self, left: DependencyContext, right: DependencyContext) -> DependencyContext:
        return left.join(right)

    def equals(self, left: DependencyContext, right: DependencyContext) -> bool:
        return left.equals(right)

    def copy(self, state: DependencyContext) -> DependencyContext:
        return state.copy()


# ---------------------------------------------------------------------------
# The indexed (bitset) representation
# ---------------------------------------------------------------------------


class IndexedDependencyContext:
    """Θ as an :class:`IndexMatrix`: place-index rows of location bitsets.

    A thin view — all sharing happens through the per-body
    :class:`~repro.mir.indices.BodyIndex` ``domain``, which every state of
    one analysis run shares (it is append-only, so late interning by one
    state is visible, and harmless, to all).  The object-level methods
    mirror :class:`DependencyContext` exactly; the ``*_bits`` methods are
    the allocation-free forms the indexed transfer function uses.
    """

    __slots__ = ("domain", "matrix")

    def __init__(self, domain: BodyIndex, matrix: Optional[IndexMatrix] = None):
        self.domain = domain
        self.matrix = matrix if matrix is not None else IndexMatrix()

    # -- index-level access ------------------------------------------------------

    def get_bits(self, place_index: int) -> int:
        return self.matrix.rows.get(place_index, 0)

    def read_conflicts_bits(self, target: int) -> int:
        """Index form of :meth:`DependencyContext.read_conflicts`."""
        places = self.domain.places
        matrix = self.matrix
        rows = matrix.rows
        overlap = places.descendants_mask(target) & matrix.keys_mask
        if overlap == 1 << target:
            # Common case: the target is tracked and no tracked descendants
            # exist — its own row is the whole answer.
            return rows[target]
        out = 0
        while overlap:
            lsb = overlap & -overlap
            out |= rows[lsb.bit_length() - 1]
            overlap ^= lsb
        target_bit = 1 << target
        if not (matrix.keys_mask & target_bit):
            ancestors = (places.ancestors_mask(target) ^ target_bit) & matrix.keys_mask
            nearest = -1
            nearest_len = -1
            while ancestors:
                lsb = ancestors & -ancestors
                key = lsb.bit_length() - 1
                proj_len = places.projection_len(key)
                if proj_len > nearest_len:
                    nearest, nearest_len = key, proj_len
                ancestors ^= lsb
            if nearest >= 0:
                out |= rows[nearest]
        return out

    def read_many_bits(self, targets: Iterable[int]) -> int:
        out = 0
        for target in targets:
            out |= self.read_conflicts_bits(target)
        return out

    def write_weak_bits(self, target: int, additions: int) -> None:
        """Index form of :meth:`DependencyContext.write_weak`."""
        matrix = self.matrix
        rows = matrix.rows
        overlap = self.domain.places.conflicts_mask(target) & matrix.keys_mask
        while overlap:
            lsb = overlap & -overlap
            key = lsb.bit_length() - 1
            rows[key] |= additions
            overlap ^= lsb
        target_bit = 1 << target
        if not (matrix.keys_mask & target_bit):
            rows[target] = additions
            matrix.keys_mask |= target_bit

    def write_strong_bits(self, target: int, replacement: int) -> None:
        """Index form of :meth:`DependencyContext.write_strong`."""
        places = self.domain.places
        matrix = self.matrix
        rows = matrix.rows
        target_bit = 1 << target
        overlap = (places.descendants_mask(target) ^ target_bit) & matrix.keys_mask
        while overlap:
            lsb = overlap & -overlap
            rows[lsb.bit_length() - 1] = replacement
            overlap ^= lsb
        overlap = (places.ancestors_mask(target) ^ target_bit) & matrix.keys_mask
        while overlap:
            lsb = overlap & -overlap
            key = lsb.bit_length() - 1
            rows[key] |= replacement
            overlap ^= lsb
        rows[target] = replacement
        matrix.keys_mask |= target_bit

    def join_into(self, other: "IndexedDependencyContext") -> bool:
        """Key-wise in-place union; True when self grew (the dirty bit)."""
        return self.matrix.union_into(other.matrix)

    # -- object-level API (mirrors DependencyContext) ----------------------------

    def get(self, place: Place) -> FrozenSet[Location]:
        index = self.domain.places.get(place)
        if index is None:
            return EMPTY_DEPS
        bits = self.matrix.rows.get(index)
        if bits is None:
            return EMPTY_DEPS
        return self.domain.locations.frozenset_of(bits)

    def set(self, place: Place, value: Iterable[Location]) -> None:
        self.matrix.set_row(
            self.domain.places.index(place), self.domain.locations.mask(value)
        )

    def add(self, place: Place, value: Iterable[Location]) -> None:
        self.matrix.or_row(
            self.domain.places.index(place), self.domain.locations.mask(value)
        )

    def places(self) -> List[Place]:
        place_of = self.domain.places.place_of
        return [place_of(index) for index in self.matrix.rows]

    def items(self) -> Iterator[Tuple[Place, FrozenSet[Location]]]:
        place_of = self.domain.places.place_of
        frozenset_of = self.domain.locations.frozenset_of
        for index, bits in self.matrix.rows.items():
            yield place_of(index), frozenset_of(bits)

    def __contains__(self, place: Place) -> bool:
        index = self.domain.places.get(place)
        return index is not None and index in self.matrix.rows

    def __len__(self) -> int:
        return len(self.matrix.rows)

    def read_conflicts(self, target: Place) -> FrozenSet[Location]:
        return self.domain.locations.frozenset_of(
            self.read_conflicts_bits(self.domain.places.index(target))
        )

    def read_many(self, targets: Iterable[Place]) -> FrozenSet[Location]:
        index = self.domain.places.index
        return self.domain.locations.frozenset_of(
            self.read_many_bits(index(target) for target in targets)
        )

    def write_weak(self, target: Place, new_deps: Iterable[Location]) -> None:
        self.write_weak_bits(
            self.domain.places.index(target), self.domain.locations.mask(new_deps)
        )

    def write_strong(self, target: Place, new_deps: Iterable[Location]) -> None:
        self.write_strong_bits(
            self.domain.places.index(target), self.domain.locations.mask(new_deps)
        )

    # -- structural operations ---------------------------------------------------

    def copy(self) -> "IndexedDependencyContext":
        return IndexedDependencyContext(self.domain, self.matrix.copy())

    def join(self, other: "IndexedDependencyContext") -> "IndexedDependencyContext":
        joined = self.copy()
        joined.join_into(other)
        return joined

    def equals(self, other: "IndexedDependencyContext") -> bool:
        return self.matrix.rows == other.matrix.rows

    def restrict_to_locals(self, locals_of_interest: Iterable[int]) -> "IndexedDependencyContext":
        wanted = set(locals_of_interest)
        place_of = self.domain.places.place_of
        restricted = IndexMatrix(
            {
                index: bits
                for index, bits in self.matrix.rows.items()
                if place_of(index).local in wanted
            }
        )
        return IndexedDependencyContext(self.domain, restricted)

    def total_size(self) -> int:
        return self.matrix.popcount_total()

    def to_object(self) -> DependencyContext:
        """The equivalent legacy :class:`DependencyContext` (differential
        testing and pretty-printing)."""
        return DependencyContext({place: deps for place, deps in self.items()})

    def pretty(self, body=None) -> str:
        return self.to_object().pretty(body)


class IndexedThetaLattice:
    """Join-semilattice over :class:`IndexedDependencyContext` states.

    Carries the shared per-body domain so ``bottom`` states intern against
    the same tables; provides ``join_into`` — the in-place union whose dirty
    bit the fixpoint driver uses for change detection, skipping the
    full-state equality test of the object path entirely.
    """

    def __init__(self, domain: BodyIndex):
        self.domain = domain

    def bottom(self) -> IndexedDependencyContext:
        return IndexedDependencyContext(self.domain)

    def join(
        self, left: IndexedDependencyContext, right: IndexedDependencyContext
    ) -> IndexedDependencyContext:
        return left.join(right)

    def join_into(
        self, target: IndexedDependencyContext, source: IndexedDependencyContext
    ) -> bool:
        return target.join_into(source)

    def equals(
        self, left: IndexedDependencyContext, right: IndexedDependencyContext
    ) -> bool:
        return left.equals(right)

    def copy(self, state: IndexedDependencyContext) -> IndexedDependencyContext:
        return state.copy()
