"""The dependency context Θ: places mapped to sets of locations.

Section 2 of the paper introduces Θ as a map from memory places ``p`` to
dependency sets ``κ`` (sets of expression labels ``ℓ``); Section 4.1 carries
the same structure over to MIR, where the labels become CFG locations.  The
context forms a join-semilattice under key-wise union — this module provides
the lattice adapter used by the generic dataflow engine along with the read
and (strong/weak) write operations over conflicts that the transfer function
needs.

Three representations share the same semantics:

* :class:`DependencyContext` — the legacy object domain,
  ``Dict[Place, FrozenSet[Location]]``, kept behind
  ``AnalysisConfig(engine="object")`` for one release as the differential
  reference;
* :class:`IndexedDependencyContext` — the fast domain: places and locations
  interned to dense ints (:class:`~repro.mir.indices.BodyIndex`) and Θ
  stored as an :class:`~repro.dataflow.bitset.IndexMatrix` of int-bitset
  rows, making the join (the hottest operation of the whole system) a
  key-wise bitwise-or with an O(rows) dirty bit instead of a cascade of
  frozenset allocations;
* :class:`VecDependencyContext` — the vector domain behind
  ``AnalysisConfig(engine="vector")``: the same interned index space, but Θ
  packed into one contiguous numpy uint64 word matrix
  (:class:`~repro.dataflow.vecbitset.VecMatrix`), so the join is a single
  whole-matrix ``bitwise_or`` with a vectorized dirty-word reduction and
  conflict reads/writes are fancy-indexed row gathers/scatters.

All expose the identical Place/Location-object API at the boundary, so
every consumer of analysis results is representation-agnostic; the indexed
transfer function additionally uses the ``*_bits`` index-level operations to
stay allocation-free inside the fixpoint, and the vector transfer uses the
``*_words``/row-set operations to stay in word-vector space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.dataflow.bitset import IndexMatrix
from repro.dataflow import vecbitset
from repro.dataflow.vecbitset import VecMatrix, mask_rows, require_numpy, words_for
from repro.mir.indices import ARG_BLOCK as _INDICES_ARG_BLOCK, BodyIndex
from repro.mir.ir import Location, Place


# Synthetic block index used to tag "argument i" pseudo-locations when
# computing whole-program call summaries: Location(ARG_BLOCK, i) means "the
# value of the i-th parameter at function entry".
ARG_BLOCK = -2

# mir.indices pre-interns the same synthetic tags without importing core.
assert ARG_BLOCK == _INDICES_ARG_BLOCK

EMPTY_DEPS: FrozenSet[Location] = frozenset()


def arg_location(index: int) -> Location:
    """The synthetic location tagging parameter ``index`` at entry."""
    return Location(ARG_BLOCK, index)


def is_arg_location(location: Location) -> bool:
    return location.block == ARG_BLOCK


@dataclass
class DependencyContext:
    """A single Θ: mapping from places to dependency sets.

    The mapping is sparse — places never written or seeded simply have the
    empty dependency set.  Values are immutable frozensets so contexts can be
    copied cheaply (shallow dict copy).
    """

    deps: Dict[Place, FrozenSet[Location]] = field(default_factory=dict)

    # -- basic access ---------------------------------------------------------

    def get(self, place: Place) -> FrozenSet[Location]:
        return self.deps.get(place, EMPTY_DEPS)

    def set(self, place: Place, value: Iterable[Location]) -> None:
        self.deps[place] = frozenset(value)

    def add(self, place: Place, value: Iterable[Location]) -> None:
        self.deps[place] = self.get(place) | frozenset(value)

    def places(self) -> List[Place]:
        return list(self.deps.keys())

    def items(self) -> Iterator[Tuple[Place, FrozenSet[Location]]]:
        return iter(self.deps.items())

    def __contains__(self, place: Place) -> bool:
        return place in self.deps

    def __len__(self) -> int:
        return len(self.deps)

    # -- reads over conflicts ----------------------------------------------------

    def read_conflicts(self, target: Place) -> FrozenSet[Location]:
        """Dependencies of reading ``target`` (T-Move / T-Copy).

        Reading a place reads all of its sub-places, so the dependencies of
        every tracked *descendant* (including the place itself) are included.
        When the place itself is not tracked, the nearest tracked *ancestor*
        describes the region it lives in and is included as a conservative
        fallback.  Tracked ancestors are deliberately **not** consulted when
        the place has its own entry — that is what makes the analysis
        field-sensitive: after ``t.1 = 3``, reading ``t.0`` only sees
        ``t.0``'s own dependencies even though ``Θ(t)`` grew (Section 2.1).
        """
        out: Set[Location] = set()
        for place, deps in self.deps.items():
            if target.is_prefix_of(place):
                out |= deps
        if target not in self.deps:
            nearest: Optional[Place] = None
            for place in self.deps:
                if place.is_prefix_of(target) and place != target:
                    if nearest is None or len(place.projection) > len(nearest.projection):
                        nearest = place
            if nearest is not None:
                out |= self.deps[nearest]
        return frozenset(out)

    def read_many(self, targets: Iterable[Place]) -> FrozenSet[Location]:
        out: Set[Location] = set()
        for target in targets:
            out |= self.read_conflicts(target)
        return frozenset(out)

    # -- writes over conflicts -----------------------------------------------------

    def write_weak(self, target: Place, new_deps: Iterable[Location]) -> None:
        """``update-conflicts`` from Section 2.1: add ``new_deps`` to every
        tracked place conflicting with ``target`` (and to ``target`` itself)."""
        additions = frozenset(new_deps)
        for place in list(self.deps.keys()):
            if place.conflicts_with(target):
                self.deps[place] = self.deps[place] | additions
        self.add(target, additions)

    def write_strong(self, target: Place, new_deps: Iterable[Location]) -> None:
        """A strong update: the target (and the sub-places it contains) now
        depend exactly on ``new_deps``; ancestors accumulate them weakly.

        Flowistry performs strong updates when the mutated place is
        unambiguous; the paper's formal rule (T-Assign) is purely additive,
        which is also available by disabling ``strong_updates`` in the
        configuration.
        """
        replacement = frozenset(new_deps)
        for place in list(self.deps.keys()):
            if place == target:
                continue
            if target.is_prefix_of(place):
                # Descendants are overwritten along with the target.
                self.deps[place] = replacement
            elif place.is_prefix_of(target):
                # Ancestors changed partially: accumulate.
                self.deps[place] = self.deps[place] | replacement
        self.deps[target] = replacement

    # -- structural operations --------------------------------------------------------

    def copy(self) -> "DependencyContext":
        return DependencyContext(dict(self.deps))

    def join(self, other: "DependencyContext") -> "DependencyContext":
        """Key-wise union: ``Θ1 ∨ Θ2`` from Section 4.1."""
        merged = dict(self.deps)
        for place, deps in other.deps.items():
            existing = merged.get(place)
            merged[place] = deps if existing is None else existing | deps
        return DependencyContext(merged)

    def equals(self, other: "DependencyContext") -> bool:
        return self.deps == other.deps

    def restrict_to_locals(self, locals_of_interest: Iterable[int]) -> "DependencyContext":
        wanted = set(locals_of_interest)
        return DependencyContext(
            {place: deps for place, deps in self.deps.items() if place.local in wanted}
        )

    def total_size(self) -> int:
        return sum(len(deps) for deps in self.deps.values())

    def pretty(self, body=None) -> str:
        lines = []
        for place in sorted(self.deps, key=lambda p: (p.local, p.projection)):
            deps = sorted(self.deps[place])
            rendered = ", ".join(d.pretty() if d.block >= 0 else f"arg{d.statement}" for d in deps)
            lines.append(f"{place.pretty(body)}: {{{rendered}}}")
        return "\n".join(lines)


class ThetaLattice:
    """Adapter exposing :class:`DependencyContext` as a join-semilattice."""

    def bottom(self) -> DependencyContext:
        return DependencyContext()

    def join(self, left: DependencyContext, right: DependencyContext) -> DependencyContext:
        return left.join(right)

    def equals(self, left: DependencyContext, right: DependencyContext) -> bool:
        return left.equals(right)

    def copy(self, state: DependencyContext) -> DependencyContext:
        return state.copy()


# ---------------------------------------------------------------------------
# The indexed (bitset) representation
# ---------------------------------------------------------------------------


class IndexedDependencyContext:
    """Θ as an :class:`IndexMatrix`: place-index rows of location bitsets.

    A thin view — all sharing happens through the per-body
    :class:`~repro.mir.indices.BodyIndex` ``domain``, which every state of
    one analysis run shares (it is append-only, so late interning by one
    state is visible, and harmless, to all).  The object-level methods
    mirror :class:`DependencyContext` exactly; the ``*_bits`` methods are
    the allocation-free forms the indexed transfer function uses.
    """

    __slots__ = ("domain", "matrix")

    def __init__(self, domain: BodyIndex, matrix: Optional[IndexMatrix] = None):
        self.domain = domain
        self.matrix = matrix if matrix is not None else IndexMatrix()

    # -- index-level access ------------------------------------------------------

    def get_bits(self, place_index: int) -> int:
        return self.matrix.rows.get(place_index, 0)

    def read_conflicts_bits(self, target: int) -> int:
        """Index form of :meth:`DependencyContext.read_conflicts`."""
        places = self.domain.places
        matrix = self.matrix
        rows = matrix.rows
        overlap = places.descendants_mask(target) & matrix.keys_mask
        if overlap == 1 << target:
            # Common case: the target is tracked and no tracked descendants
            # exist — its own row is the whole answer.
            return rows[target]
        out = 0
        while overlap:
            lsb = overlap & -overlap
            out |= rows[lsb.bit_length() - 1]
            overlap ^= lsb
        target_bit = 1 << target
        if not (matrix.keys_mask & target_bit):
            ancestors = (places.ancestors_mask(target) ^ target_bit) & matrix.keys_mask
            nearest = -1
            nearest_len = -1
            while ancestors:
                lsb = ancestors & -ancestors
                key = lsb.bit_length() - 1
                proj_len = places.projection_len(key)
                if proj_len > nearest_len:
                    nearest, nearest_len = key, proj_len
                ancestors ^= lsb
            if nearest >= 0:
                out |= rows[nearest]
        return out

    def read_many_bits(self, targets: Iterable[int]) -> int:
        out = 0
        for target in targets:
            out |= self.read_conflicts_bits(target)
        return out

    def write_weak_bits(self, target: int, additions: int) -> None:
        """Index form of :meth:`DependencyContext.write_weak`."""
        matrix = self.matrix
        rows = matrix.rows
        overlap = self.domain.places.conflicts_mask(target) & matrix.keys_mask
        while overlap:
            lsb = overlap & -overlap
            key = lsb.bit_length() - 1
            rows[key] |= additions
            overlap ^= lsb
        target_bit = 1 << target
        if not (matrix.keys_mask & target_bit):
            rows[target] = additions
            matrix.keys_mask |= target_bit

    def write_strong_bits(self, target: int, replacement: int) -> None:
        """Index form of :meth:`DependencyContext.write_strong`."""
        places = self.domain.places
        matrix = self.matrix
        rows = matrix.rows
        target_bit = 1 << target
        overlap = (places.descendants_mask(target) ^ target_bit) & matrix.keys_mask
        while overlap:
            lsb = overlap & -overlap
            rows[lsb.bit_length() - 1] = replacement
            overlap ^= lsb
        overlap = (places.ancestors_mask(target) ^ target_bit) & matrix.keys_mask
        while overlap:
            lsb = overlap & -overlap
            key = lsb.bit_length() - 1
            rows[key] |= replacement
            overlap ^= lsb
        rows[target] = replacement
        matrix.keys_mask |= target_bit

    def join_into(self, other: "IndexedDependencyContext") -> bool:
        """Key-wise in-place union; True when self grew (the dirty bit)."""
        return self.matrix.union_into(other.matrix)

    # -- object-level API (mirrors DependencyContext) ----------------------------

    def get(self, place: Place) -> FrozenSet[Location]:
        index = self.domain.places.get(place)
        if index is None:
            return EMPTY_DEPS
        bits = self.matrix.rows.get(index)
        if bits is None:
            return EMPTY_DEPS
        return self.domain.locations.frozenset_of(bits)

    def set(self, place: Place, value: Iterable[Location]) -> None:
        self.matrix.set_row(
            self.domain.places.index(place), self.domain.locations.mask(value)
        )

    def add(self, place: Place, value: Iterable[Location]) -> None:
        self.matrix.or_row(
            self.domain.places.index(place), self.domain.locations.mask(value)
        )

    def places(self) -> List[Place]:
        place_of = self.domain.places.place_of
        return [place_of(index) for index in self.matrix.rows]

    def items(self) -> Iterator[Tuple[Place, FrozenSet[Location]]]:
        place_of = self.domain.places.place_of
        frozenset_of = self.domain.locations.frozenset_of
        for index, bits in self.matrix.rows.items():
            yield place_of(index), frozenset_of(bits)

    def __contains__(self, place: Place) -> bool:
        index = self.domain.places.get(place)
        return index is not None and index in self.matrix.rows

    def __len__(self) -> int:
        return len(self.matrix.rows)

    def read_conflicts(self, target: Place) -> FrozenSet[Location]:
        return self.domain.locations.frozenset_of(
            self.read_conflicts_bits(self.domain.places.index(target))
        )

    def read_many(self, targets: Iterable[Place]) -> FrozenSet[Location]:
        index = self.domain.places.index
        return self.domain.locations.frozenset_of(
            self.read_many_bits(index(target) for target in targets)
        )

    def write_weak(self, target: Place, new_deps: Iterable[Location]) -> None:
        self.write_weak_bits(
            self.domain.places.index(target), self.domain.locations.mask(new_deps)
        )

    def write_strong(self, target: Place, new_deps: Iterable[Location]) -> None:
        self.write_strong_bits(
            self.domain.places.index(target), self.domain.locations.mask(new_deps)
        )

    # -- structural operations ---------------------------------------------------

    def copy(self) -> "IndexedDependencyContext":
        return IndexedDependencyContext(self.domain, self.matrix.copy())

    def join(self, other: "IndexedDependencyContext") -> "IndexedDependencyContext":
        joined = self.copy()
        joined.join_into(other)
        return joined

    def equals(self, other: "IndexedDependencyContext") -> bool:
        return self.matrix.rows == other.matrix.rows

    def restrict_to_locals(self, locals_of_interest: Iterable[int]) -> "IndexedDependencyContext":
        wanted = set(locals_of_interest)
        place_of = self.domain.places.place_of
        restricted = IndexMatrix(
            {
                index: bits
                for index, bits in self.matrix.rows.items()
                if place_of(index).local in wanted
            }
        )
        return IndexedDependencyContext(self.domain, restricted)

    def total_size(self) -> int:
        return self.matrix.popcount_total()

    def to_object(self) -> DependencyContext:
        """The equivalent legacy :class:`DependencyContext` (differential
        testing and pretty-printing)."""
        return DependencyContext({place: deps for place, deps in self.items()})

    def pretty(self, body=None) -> str:
        return self.to_object().pretty(body)


class IndexedThetaLattice:
    """Join-semilattice over :class:`IndexedDependencyContext` states.

    Carries the shared per-body domain so ``bottom`` states intern against
    the same tables; provides ``join_into`` — the in-place union whose dirty
    bit the fixpoint driver uses for change detection, skipping the
    full-state equality test of the object path entirely.
    """

    def __init__(self, domain: BodyIndex):
        self.domain = domain

    def bottom(self) -> IndexedDependencyContext:
        return IndexedDependencyContext(self.domain)

    def join(
        self, left: IndexedDependencyContext, right: IndexedDependencyContext
    ) -> IndexedDependencyContext:
        return left.join(right)

    def join_into(
        self, target: IndexedDependencyContext, source: IndexedDependencyContext
    ) -> bool:
        return target.join_into(source)

    def equals(
        self, left: IndexedDependencyContext, right: IndexedDependencyContext
    ) -> bool:
        return left.equals(right)

    def copy(self, state: IndexedDependencyContext) -> IndexedDependencyContext:
        return state.copy()


# ---------------------------------------------------------------------------
# The vector (numpy uint64 word matrix) representation
# ---------------------------------------------------------------------------


class VecDependencyContext(IndexedDependencyContext):
    """Θ as a :class:`~repro.dataflow.vecbitset.VecMatrix`: one contiguous
    ``places × ceil(locations/64)`` uint64 array.

    Subclasses :class:`IndexedDependencyContext` so every consumer that fast-
    paths on the indexed representation (dependency sizes, focus tables,
    telemetry) treats the vector tier identically; every matrix-touching
    method is overridden because the backing store has rows of words, not a
    dict of ints.  The ``*_bits`` boundary methods keep their Python-int
    contract (one conversion at the edge); the ``*_rows``/``*_words`` methods
    are the word-vector forms the vectorized transfer function composes into
    single gather/scatter numpy calls.
    """

    __slots__ = ()

    def __init__(self, domain: BodyIndex, matrix: Optional[VecMatrix] = None):
        require_numpy("the vector dependency context (engine='vector')")
        self.domain = domain
        if matrix is None:
            matrix = VecMatrix(
                words_for(len(domain.locations)), capacity=len(domain.places)
            )
        self.matrix = matrix

    # -- index-level access (int boundary) ---------------------------------------

    def get_bits(self, place_index: int) -> int:
        return self.matrix.row(place_index)

    def collect_conflict_rows(self, target: int, out: List[int]) -> None:
        """Append the rows whose union answers a conflict read of ``target``.

        The masked row scan of :meth:`IndexedDependencyContext.read_conflicts_bits`
        with the gather deferred: tracked descendants, plus the nearest
        tracked strict ancestor when the target itself is untracked.  The
        vector transfer concatenates these row sets across all reads of one
        instruction into ``out`` and performs a single batched gather; the
        out-parameter shape avoids a list allocation per read.
        """
        places = self.domain.places
        keys_mask = self.matrix.keys_mask
        target_bit = 1 << target
        overlap = places.descendants_mask(target) & keys_mask
        if overlap == target_bit:
            # The overwhelmingly common case: the target itself is the only
            # tracked conflicting row.
            out.append(target)
            return
        mask = overlap
        while mask:
            lsb = mask & -mask
            out.append(lsb.bit_length() - 1)
            mask ^= lsb
        if not (keys_mask & target_bit):
            ancestors = (places.ancestors_mask(target) ^ target_bit) & keys_mask
            nearest = -1
            nearest_len = -1
            while ancestors:
                lsb = ancestors & -ancestors
                key = lsb.bit_length() - 1
                proj_len = places.projection_len(key)
                if proj_len > nearest_len:
                    nearest, nearest_len = key, proj_len
                ancestors ^= lsb
            if nearest >= 0:
                out.append(nearest)

    def read_conflicts_rows(self, target: int) -> List[int]:
        """The conflict row set of ``target`` as a fresh list."""
        rows: List[int] = []
        self.collect_conflict_rows(target, rows)
        return rows

    def read_conflicts_bits(self, target: int) -> int:
        rows: List[int] = []
        self.collect_conflict_rows(target, rows)
        return vecbitset.words_to_int(self.matrix.gather_or(rows))

    def read_many_bits(self, targets: Iterable[int]) -> int:
        rows: List[int] = []
        for target in targets:
            self.collect_conflict_rows(target, rows)
        return vecbitset.words_to_int(self.matrix.gather_or(rows))

    def conflict_sizes(self, targets: List[int], exclude_bits: int = 0) -> List[int]:
        """Per-target conflict-read popcounts, batched.

        One whole-matrix ``bitwise_count`` answers every single-row read (the
        overwhelmingly common shape of the dependency-size metric); only
        multi-row conflict reads fall back to a per-target gather.
        ``exclude_bits`` masks columns (e.g. argument tags) out of the counts.
        """
        np = vecbitset.np
        matrix = self.matrix
        if exclude_bits:
            keep = ~vecbitset.int_to_words(exclude_bits, matrix.num_words)
            counts = np.bitwise_count(matrix.words & keep).sum(axis=1)
        else:
            keep = None
            counts = np.bitwise_count(matrix.words).sum(axis=1)
        out: List[int] = []
        for target in targets:
            rows: List[int] = []
            self.collect_conflict_rows(target, rows)
            if not rows:
                out.append(0)
            elif len(rows) == 1:
                out.append(int(counts[rows[0]]))
            else:
                vec = matrix.gather_or(rows)
                if keep is not None:
                    np.bitwise_and(vec, keep, out=vec)
                out.append(int(np.bitwise_count(vec).sum()))
        return out

    # -- word-level writes (the hot path) ----------------------------------------

    def write_weak_words(self, target: int, additions) -> None:
        """Word form of :meth:`IndexedDependencyContext.write_weak_bits`."""
        matrix = self.matrix
        target_bit = 1 << target
        overlap = self.domain.places.conflicts_mask(target) & matrix.keys_mask
        if overlap == target_bit:
            # Common case: the tracked target is its own only conflict.
            words = matrix.words
            vecbitset.np.bitwise_or(words[target], additions, out=words[target])
            return
        if overlap:
            matrix.or_rows_words(mask_rows(overlap), additions)
        if not (matrix.keys_mask & target_bit):
            matrix.set_row_words(target, additions)

    def write_strong_words(self, target: int, replacement) -> None:
        """Word form of :meth:`IndexedDependencyContext.write_strong_bits`."""
        places = self.domain.places
        matrix = self.matrix
        keys_mask = matrix.keys_mask
        target_bit = 1 << target
        descendants_mask = places.descendants_mask(target)
        ancestors_mask = places.ancestors_mask(target)
        if not (((descendants_mask | ancestors_mask) ^ target_bit) & keys_mask):
            # Common case: no tracked strict relatives — one row assignment.
            matrix.set_row_words(target, replacement)
            return
        descendants = (descendants_mask ^ target_bit) & keys_mask
        if descendants:
            rows = mask_rows(descendants)
            if len(rows) <= VecMatrix._SMALL_ROWS:
                words = matrix.words
                for index in rows:
                    words[index] = replacement
            else:
                matrix.words[rows] = replacement
        ancestors = (ancestors_mask ^ target_bit) & keys_mask
        if ancestors:
            matrix.or_rows_words(mask_rows(ancestors), replacement)
        matrix.set_row_words(target, replacement)

    def write_weak_bits(self, target: int, additions: int) -> None:
        self.write_weak_words(
            target, vecbitset.int_to_words(additions, self.matrix.num_words)
        )

    def write_strong_bits(self, target: int, replacement: int) -> None:
        self.write_strong_words(
            target, vecbitset.int_to_words(replacement, self.matrix.num_words)
        )

    # -- object-level API --------------------------------------------------------

    def set(self, place: Place, value: Iterable[Location]) -> None:
        self.matrix.set_row(
            self.domain.places.index(place), self.domain.locations.mask(value)
        )

    def add(self, place: Place, value: Iterable[Location]) -> None:
        self.matrix.or_row(
            self.domain.places.index(place), self.domain.locations.mask(value)
        )

    def places(self) -> List[Place]:
        place_of = self.domain.places.place_of
        return [place_of(index) for index in self.matrix.row_indices()]

    def items(self) -> Iterator[Tuple[Place, FrozenSet[Location]]]:
        place_of = self.domain.places.place_of
        frozenset_of = self.domain.locations.frozenset_of
        for index, bits in self.matrix.items():
            yield place_of(index), frozenset_of(bits)

    def __contains__(self, place: Place) -> bool:
        index = self.domain.places.get(place)
        return index is not None and index in self.matrix

    def __len__(self) -> int:
        return len(self.matrix)

    # -- structural operations ---------------------------------------------------

    def copy(self) -> "VecDependencyContext":
        return VecDependencyContext(self.domain, self.matrix.copy())

    def join(self, other: "VecDependencyContext") -> "VecDependencyContext":
        # Out-of-place join needs no dirty bit: VecMatrix.union skips the
        # new-bit reduction that union_into pays on the fixpoint path.
        return VecDependencyContext(self.domain, self.matrix.union(other.matrix))

    def equals(self, other: "VecDependencyContext") -> bool:
        return self.matrix.equals(other.matrix)

    def restrict_to_locals(self, locals_of_interest: Iterable[int]) -> "VecDependencyContext":
        wanted = set(locals_of_interest)
        place_of = self.domain.places.place_of
        restricted = VecMatrix(self.matrix.num_words, capacity=self.matrix.words.shape[0])
        for index, bits in self.matrix.items():
            if place_of(index).local in wanted:
                restricted.set_row(index, bits)
        return VecDependencyContext(self.domain, restricted)

    def total_size(self) -> int:
        return self.matrix.popcount_total()


class VecThetaLattice(IndexedThetaLattice):
    """Join-semilattice over :class:`VecDependencyContext` states.

    The word count is fixed once per body (locations are fully pre-interned
    by :func:`~repro.mir.indices.index_body`); row capacity starts at the
    place-table size and grows by amortised doubling as late interning
    appends places.  ``join_into`` inherits the in-place dirty-bit contract
    the fixpoint driver keys off.
    """

    def __init__(self, domain: BodyIndex):
        require_numpy("the vector theta lattice (engine='vector')")
        super().__init__(domain)
        self.num_words = words_for(len(domain.locations))

    def bottom(self) -> VecDependencyContext:
        return VecDependencyContext(
            self.domain,
            VecMatrix(self.num_words, capacity=len(self.domain.places)),
        )
