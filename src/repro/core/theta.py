"""The dependency context Θ: places mapped to sets of locations.

Section 2 of the paper introduces Θ as a map from memory places ``p`` to
dependency sets ``κ`` (sets of expression labels ``ℓ``); Section 4.1 carries
the same structure over to MIR, where the labels become CFG locations.  The
context forms a join-semilattice under key-wise union — this module provides
the lattice adapter used by the generic dataflow engine along with the read
and (strong/weak) write operations over conflicts that the transfer function
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.mir.ir import Location, Place


# Synthetic block index used to tag "argument i" pseudo-locations when
# computing whole-program call summaries: Location(ARG_BLOCK, i) means "the
# value of the i-th parameter at function entry".
ARG_BLOCK = -2

EMPTY_DEPS: FrozenSet[Location] = frozenset()


def arg_location(index: int) -> Location:
    """The synthetic location tagging parameter ``index`` at entry."""
    return Location(ARG_BLOCK, index)


def is_arg_location(location: Location) -> bool:
    return location.block == ARG_BLOCK


@dataclass
class DependencyContext:
    """A single Θ: mapping from places to dependency sets.

    The mapping is sparse — places never written or seeded simply have the
    empty dependency set.  Values are immutable frozensets so contexts can be
    copied cheaply (shallow dict copy).
    """

    deps: Dict[Place, FrozenSet[Location]] = field(default_factory=dict)

    # -- basic access ---------------------------------------------------------

    def get(self, place: Place) -> FrozenSet[Location]:
        return self.deps.get(place, EMPTY_DEPS)

    def set(self, place: Place, value: Iterable[Location]) -> None:
        self.deps[place] = frozenset(value)

    def add(self, place: Place, value: Iterable[Location]) -> None:
        self.deps[place] = self.get(place) | frozenset(value)

    def places(self) -> List[Place]:
        return list(self.deps.keys())

    def items(self) -> Iterator[Tuple[Place, FrozenSet[Location]]]:
        return iter(self.deps.items())

    def __contains__(self, place: Place) -> bool:
        return place in self.deps

    def __len__(self) -> int:
        return len(self.deps)

    # -- reads over conflicts ----------------------------------------------------

    def read_conflicts(self, target: Place) -> FrozenSet[Location]:
        """Dependencies of reading ``target`` (T-Move / T-Copy).

        Reading a place reads all of its sub-places, so the dependencies of
        every tracked *descendant* (including the place itself) are included.
        When the place itself is not tracked, the nearest tracked *ancestor*
        describes the region it lives in and is included as a conservative
        fallback.  Tracked ancestors are deliberately **not** consulted when
        the place has its own entry — that is what makes the analysis
        field-sensitive: after ``t.1 = 3``, reading ``t.0`` only sees
        ``t.0``'s own dependencies even though ``Θ(t)`` grew (Section 2.1).
        """
        out: Set[Location] = set()
        for place, deps in self.deps.items():
            if target.is_prefix_of(place):
                out |= deps
        if target not in self.deps:
            nearest: Optional[Place] = None
            for place in self.deps:
                if place.is_prefix_of(target) and place != target:
                    if nearest is None or len(place.projection) > len(nearest.projection):
                        nearest = place
            if nearest is not None:
                out |= self.deps[nearest]
        return frozenset(out)

    def read_many(self, targets: Iterable[Place]) -> FrozenSet[Location]:
        out: Set[Location] = set()
        for target in targets:
            out |= self.read_conflicts(target)
        return frozenset(out)

    # -- writes over conflicts -----------------------------------------------------

    def write_weak(self, target: Place, new_deps: Iterable[Location]) -> None:
        """``update-conflicts`` from Section 2.1: add ``new_deps`` to every
        tracked place conflicting with ``target`` (and to ``target`` itself)."""
        additions = frozenset(new_deps)
        for place in list(self.deps.keys()):
            if place.conflicts_with(target):
                self.deps[place] = self.deps[place] | additions
        self.add(target, additions)

    def write_strong(self, target: Place, new_deps: Iterable[Location]) -> None:
        """A strong update: the target (and the sub-places it contains) now
        depend exactly on ``new_deps``; ancestors accumulate them weakly.

        Flowistry performs strong updates when the mutated place is
        unambiguous; the paper's formal rule (T-Assign) is purely additive,
        which is also available by disabling ``strong_updates`` in the
        configuration.
        """
        replacement = frozenset(new_deps)
        for place in list(self.deps.keys()):
            if place == target:
                continue
            if target.is_prefix_of(place):
                # Descendants are overwritten along with the target.
                self.deps[place] = replacement
            elif place.is_prefix_of(target):
                # Ancestors changed partially: accumulate.
                self.deps[place] = self.deps[place] | replacement
        self.deps[target] = replacement

    # -- structural operations --------------------------------------------------------

    def copy(self) -> "DependencyContext":
        return DependencyContext(dict(self.deps))

    def join(self, other: "DependencyContext") -> "DependencyContext":
        """Key-wise union: ``Θ1 ∨ Θ2`` from Section 4.1."""
        merged = dict(self.deps)
        for place, deps in other.deps.items():
            existing = merged.get(place)
            merged[place] = deps if existing is None else existing | deps
        return DependencyContext(merged)

    def equals(self, other: "DependencyContext") -> bool:
        return self.deps == other.deps

    def restrict_to_locals(self, locals_of_interest: Iterable[int]) -> "DependencyContext":
        wanted = set(locals_of_interest)
        return DependencyContext(
            {place: deps for place, deps in self.deps.items() if place.local in wanted}
        )

    def total_size(self) -> int:
        return sum(len(deps) for deps in self.deps.values())

    def pretty(self, body=None) -> str:
        lines = []
        for place in sorted(self.deps, key=lambda p: (p.local, p.projection)):
            deps = sorted(self.deps[place])
            rendered = ", ".join(d.pretty() if d.block >= 0 else f"arg{d.statement}" for d in deps)
            lines.append(f"{place.pretty(body)}: {{{rendered}}}")
        return "\n".join(lines)


class ThetaLattice:
    """Adapter exposing :class:`DependencyContext` as a join-semilattice."""

    def bottom(self) -> DependencyContext:
        return DependencyContext()

    def join(self, left: DependencyContext, right: DependencyContext) -> DependencyContext:
        return left.join(right)

    def equals(self, left: DependencyContext, right: DependencyContext) -> bool:
        return left.equals(right)

    def copy(self, state: DependencyContext) -> DependencyContext:
        return state.copy()
