"""Analysis configurations: the 2³ condition grid of the evaluation.

Section 5 of the paper evaluates three modifications of the baseline
(Modular) analysis:

* **Whole-program** — recursively analyse callee definitions when available
  (only within the crate under analysis),
* **Mut-blind** — ignore mutability qualifiers: assume any reference argument
  can be mutated by a call,
* **Ref-blind** — ignore lifetimes: assume any two references of the same
  type may alias.

Every combination is a valid :class:`AnalysisConfig`; the evaluation focuses
on the four conditions the paper reports (Modular, Whole-program, Mut-blind,
Ref-blind individually).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class AnalysisConfig:
    """Switches controlling how the information flow analysis treats calls
    and references."""

    whole_program: bool = False
    mut_blind: bool = False
    ref_blind: bool = False
    # Maximum recursion depth for whole-program callee analysis; cycles and
    # deeper chains fall back to the modular approximation.
    max_whole_program_depth: int = 32
    # When True (the default, matching Flowistry), assignments whose target
    # resolves to a single concrete place overwrite its dependencies instead
    # of accumulating them.  Exposed for the design-ablation benchmarks.
    strong_updates: bool = True
    # When True (the default), control dependencies of a mutation are added
    # to the mutated place's dependency set.
    track_control_deps: bool = True
    # Which dataflow substrate runs the analysis.  "bitset" (the default) is
    # the indexed engine: places/locations interned to dense ints, Θ stored
    # as an int-bitset matrix with in-place bitwise-or joins.  "vector"
    # packs the same matrix into one contiguous numpy uint64 word array so
    # joins and transfer gathers/scatters are vectorized row operations
    # (requires numpy).  "object" is the legacy Dict[Place, FrozenSet[Location]]
    # domain, kept as the differential-testing reference; all three produce
    # identical results on every query.
    engine: str = "bitset"

    def __post_init__(self) -> None:
        if self.engine not in ("bitset", "vector", "object"):
            raise ValueError(
                f"unknown analysis engine {self.engine!r} "
                "(expected 'bitset', 'vector', or 'object')"
            )

    @property
    def name(self) -> str:
        return condition_name(self)

    def describe(self) -> str:
        parts = []
        parts.append("whole-program" if self.whole_program else "modular calls")
        parts.append("mut-blind" if self.mut_blind else "mutability-aware")
        parts.append("ref-blind" if self.ref_blind else "lifetime-aware")
        return ", ".join(parts)


MODULAR = AnalysisConfig()
WHOLE_PROGRAM = AnalysisConfig(whole_program=True)
MUT_BLIND = AnalysisConfig(mut_blind=True)
REF_BLIND = AnalysisConfig(ref_blind=True)


def condition_name(config: AnalysisConfig) -> str:
    """The paper's name for a configuration (e.g. ``Modular``, ``Mut-blind``)."""
    flags = []
    if config.whole_program:
        flags.append("Whole-program")
    if config.mut_blind:
        flags.append("Mut-blind")
    if config.ref_blind:
        flags.append("Ref-blind")
    if not flags:
        return "Modular"
    return "+".join(flags)


def all_conditions() -> List[AnalysisConfig]:
    """All 2³ = 8 combinations of the three modifications (Section 5.1)."""
    out: List[AnalysisConfig] = []
    for whole_program in (False, True):
        for mut_blind in (False, True):
            for ref_blind in (False, True):
                out.append(
                    AnalysisConfig(
                        whole_program=whole_program,
                        mut_blind=mut_blind,
                        ref_blind=ref_blind,
                    )
                )
    return out


def primary_conditions() -> List[AnalysisConfig]:
    """The four conditions the paper reports individually (Section 5.2)."""
    return [MODULAR, WHOLE_PROGRAM, MUT_BLIND, REF_BLIND]
