"""The MIR transfer function for information flow.

This is the operational heart of the reproduction: the per-instruction state
update of the forward dataflow analysis described in Section 4.1, whose
formal counterparts are the typing rules of Section 2:

* assignments (``T-Assign`` / ``T-AssignDeref``): the mutated place's
  conflicts — resolved through the alias oracle when the place dereferences a
  pointer — receive the dependencies of the right-hand side, the instruction
  location, and the control dependencies of the enclosing block;
* calls (``T-App``): with only the callee's signature, every place reachable
  through a unique reference of an argument is assumed mutated with the
  collective dependencies of all transitively readable argument data, and the
  return value receives the same; with a whole-program summary, flows are
  translated parameter-by-parameter instead;
* borrows (``T-Borrow``): carry the dependencies of the borrowed place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.borrowck.oracle import AliasOracle
from repro.borrowck.signatures import SignatureSummary, summarize_signature
from repro.core.config import AnalysisConfig
from repro.core.summaries import CallSummaryProvider, ModularSummaryProvider, WholeProgramSummary
from repro.core.theta import DependencyContext
from repro.dataflow.control_deps import ControlDependencies
from repro.lang.ast import FnSig
from repro.mir.ir import (
    Aggregate,
    BinaryOp,
    Body,
    CallTerminator,
    Constant,
    Location,
    Operand,
    Place,
    Ref,
    Rvalue,
    Statement,
    StatementKind,
    SwitchBool,
    Terminator,
    UnaryOp,
    Use,
)


@dataclass
class FlowTransfer:
    """Applies the effect of one MIR instruction to a dependency context Θ."""

    body: Body
    config: AnalysisConfig
    oracle: AliasOracle
    control_deps: ControlDependencies
    signatures: Dict[str, FnSig]
    provider: CallSummaryProvider = field(default_factory=ModularSummaryProvider)
    # Populated during the analysis: call locations that cross a crate
    # boundary (Section 5.4.2) and calls that fell back to the modular rule.
    boundary_call_locations: Set[Location] = field(default_factory=set)
    modular_fallback_locations: Set[Location] = field(default_factory=set)
    _sig_summaries: Dict[str, SignatureSummary] = field(default_factory=dict)

    # -- entry point -------------------------------------------------------------

    def __call__(self, state: DependencyContext, body: Body, location: Location) -> None:
        instruction = body.instruction_at(location)
        if isinstance(instruction, Statement):
            if instruction.kind is StatementKind.ASSIGN:
                assert instruction.place is not None and instruction.rvalue is not None
                self._transfer_assign(state, location, instruction.place, instruction.rvalue)
            return
        if isinstance(instruction, CallTerminator):
            self._transfer_call(state, location, instruction)
            return
        # Gotos, switches, and returns do not modify Θ directly; indirect
        # flows from switches are accounted for via control dependencies at
        # each mutation site.

    # -- reading dependencies ------------------------------------------------------

    def deps_of_place_read(self, state: DependencyContext, place: Place) -> FrozenSet[Location]:
        """Dependencies of reading ``place`` (T-Move / T-Copy).

        The read is resolved through the alias oracle (a dereference may
        denote several places) and gathered over conflicts; when the place
        dereferences a pointer, the pointer's own dependencies are included
        because *which* location is read depends on the pointer value.
        """
        resolved = self.oracle.resolve(place)
        deps = set(state.read_many(resolved))
        if place.has_deref():
            deps |= state.read_conflicts(place.base_local())
        return frozenset(deps)

    def deps_of_operand(self, state: DependencyContext, operand: Operand) -> FrozenSet[Location]:
        place = operand.place()
        if place is None:
            return frozenset()
        return self.deps_of_place_read(state, place)

    def deps_of_rvalue(self, state: DependencyContext, rvalue: Rvalue) -> FrozenSet[Location]:
        if isinstance(rvalue, Ref):
            # T-Borrow: the borrow's dependencies are those of the places the
            # new reference may point to.
            return self.deps_of_place_read(state, rvalue.referent)
        deps: Set[Location] = set()
        for operand in rvalue.operands():
            deps |= self.deps_of_operand(state, operand)
        return frozenset(deps)

    # -- control dependence -----------------------------------------------------------

    def control_dependencies(
        self, state: DependencyContext, block: int
    ) -> FrozenSet[Location]:
        """Locations and discriminant dependencies of the switches controlling
        ``block`` (the indirect-flow component of Figure 1)."""
        if not self.config.track_control_deps:
            return frozenset()
        deps: Set[Location] = set()
        for controller in self.control_deps.controlling_blocks(block):
            terminator = self.body.blocks[controller].terminator
            deps.add(self.body.terminator_location(controller))
            if isinstance(terminator, SwitchBool):
                deps |= self.deps_of_operand(state, terminator.discr)
        return frozenset(deps)

    # -- mutation -----------------------------------------------------------------------

    def mutate(
        self,
        state: DependencyContext,
        target: Place,
        new_deps: FrozenSet[Location],
        force_weak: bool = False,
    ) -> None:
        """Update ``target`` (through the alias oracle) with ``new_deps``.

        A strong update — replacing rather than accumulating dependencies —
        is only sound when the mutated place is unambiguous: the target
        resolves to exactly one place.  Otherwise (or when strong updates are
        disabled for the ablation benches) the paper's additive
        ``update-conflicts`` is used.
        """
        resolved = self.oracle.resolve(target)
        strong = (
            self.config.strong_updates
            and not force_weak
            and len(resolved) == 1
        )
        for concrete in resolved:
            if strong:
                state.write_strong(concrete, new_deps)
            else:
                state.write_weak(concrete, new_deps)

    # -- statements ------------------------------------------------------------------------

    def _transfer_assign(
        self,
        state: DependencyContext,
        location: Location,
        place: Place,
        rvalue: Rvalue,
    ) -> None:
        control = self.control_dependencies(state, location.block)
        deps = set(self.deps_of_rvalue(state, rvalue))
        deps.add(location)
        deps |= control
        self.mutate(state, place, frozenset(deps))

        # Field-sensitive refinement for aggregate construction (the paper's
        # T-Let seeds every place within the new binding): each field of the
        # destination depends only on the operand stored into it, so a later
        # read of `t.0` does not see the dependencies of `t.1`.
        if isinstance(rvalue, Aggregate):
            resolved = self.oracle.resolve(place)
            if len(resolved) == 1:
                target = next(iter(resolved))
                base = frozenset({location}) | control
                for index, operand in enumerate(rvalue.ops):
                    field_deps = self.deps_of_operand(state, operand) | base
                    state.write_strong(target.project_field(index), field_deps)

    # -- calls -----------------------------------------------------------------------------

    def _sig_summary(self, callee: str) -> Optional[SignatureSummary]:
        if callee in self._sig_summaries:
            return self._sig_summaries[callee]
        sig = self.signatures.get(callee)
        if sig is None:
            return None
        summary = summarize_signature(sig)
        self._sig_summaries[callee] = summary
        return summary

    @staticmethod
    def _ref_place(arg_place: Place, path: Sequence[int]) -> Place:
        place = arg_place
        for index in path:
            place = place.project_field(index)
        return place

    def _arg_pointee_deps(
        self,
        state: DependencyContext,
        arg_place: Place,
        sig_summary: SignatureSummary,
        param_index: int,
    ) -> FrozenSet[Location]:
        """Dependencies of everything readable *through* an argument's refs."""
        deps: Set[Location] = set()
        for info in sig_summary.all_refs_of_param(param_index):
            ref_place = self._ref_place(arg_place, info.path)
            pointee = ref_place.project_deref()
            deps |= self.deps_of_place_read(state, pointee)
        return frozenset(deps)

    def _transfer_call(
        self, state: DependencyContext, location: Location, call: CallTerminator
    ) -> None:
        sig_summary = self._sig_summary(call.func)
        control = self.control_dependencies(state, location.block)

        if self.provider.is_crate_boundary(call.func):
            self.boundary_call_locations.add(location)

        # Per-argument dependency bundles.
        operand_deps: List[FrozenSet[Location]] = []
        pointee_deps: List[FrozenSet[Location]] = []
        arg_places: List[Optional[Place]] = []
        for index, arg in enumerate(call.args):
            operand_deps.append(self.deps_of_operand(state, arg))
            place = arg.place()
            arg_places.append(place)
            if place is not None and sig_summary is not None:
                pointee_deps.append(
                    self._arg_pointee_deps(state, place, sig_summary, index)
                )
            else:
                pointee_deps.append(frozenset())

        summary: Optional[WholeProgramSummary] = None
        if self.config.whole_program:
            summary = self.provider.summary_for(call.func)
            if summary is None:
                self.modular_fallback_locations.add(location)

        if summary is not None:
            self._apply_whole_program_call(
                state, location, call, summary, control, operand_deps, pointee_deps, arg_places
            )
        else:
            self._apply_modular_call(
                state, location, call, sig_summary, control, operand_deps, pointee_deps, arg_places
            )

    def _apply_modular_call(
        self,
        state: DependencyContext,
        location: Location,
        call: CallTerminator,
        sig_summary: Optional[SignatureSummary],
        control: FrozenSet[Location],
        operand_deps: List[FrozenSet[Location]],
        pointee_deps: List[FrozenSet[Location]],
        arg_places: List[Optional[Place]],
    ) -> None:
        """T-App with only the signature available (the paper's key rule)."""
        kappa_arg: Set[Location] = {location}
        kappa_arg |= control
        for deps in operand_deps:
            kappa_arg |= deps
        for deps in pointee_deps:
            kappa_arg |= deps
        kappa = frozenset(kappa_arg)

        # Every place reachable through a unique reference of an argument may
        # be mutated with all readable data as input.  Under Mut-blind, the
        # mutability qualifier is ignored and shared references are treated
        # the same way.
        if sig_summary is not None:
            for index, arg_place in enumerate(arg_places):
                if arg_place is None:
                    continue
                refs = (
                    sig_summary.all_refs_of_param(index)
                    if self.config.mut_blind
                    else sig_summary.mutable_refs_of_param(index)
                )
                for info in refs:
                    ref_place = self._ref_place(arg_place, info.path)
                    self.mutate(state, ref_place.project_deref(), kappa, force_weak=True)

        # The return value is assumed to depend on every readable input.
        self.mutate(state, call.destination, kappa)

    def _apply_whole_program_call(
        self,
        state: DependencyContext,
        location: Location,
        call: CallTerminator,
        summary: WholeProgramSummary,
        control: FrozenSet[Location],
        operand_deps: List[FrozenSet[Location]],
        pointee_deps: List[FrozenSet[Location]],
        arg_places: List[Optional[Place]],
    ) -> None:
        """Translate a recursively-computed callee summary to the call site."""

        def arg_bundle(indices: FrozenSet[int]) -> Set[Location]:
            deps: Set[Location] = set()
            for index in indices:
                if index < len(operand_deps):
                    deps |= operand_deps[index]
                    deps |= pointee_deps[index]
            return deps

        return_deps: Set[Location] = {location}
        return_deps |= control
        return_deps |= arg_bundle(summary.return_sources)
        self.mutate(state, call.destination, frozenset(return_deps))

        for (param_index, ref_path), sources in summary.mutations.items():
            if param_index >= len(arg_places):
                continue
            arg_place = arg_places[param_index]
            if arg_place is None:
                continue
            kappa: Set[Location] = {location}
            kappa |= control
            kappa |= arg_bundle(sources)
            target = self._ref_place(arg_place, ref_path).project_deref()
            self.mutate(state, target, frozenset(kappa), force_weak=True)
