"""The MIR transfer function for information flow.

This is the operational heart of the reproduction: the per-instruction state
update of the forward dataflow analysis described in Section 4.1, whose
formal counterparts are the typing rules of Section 2:

* assignments (``T-Assign`` / ``T-AssignDeref``): the mutated place's
  conflicts — resolved through the alias oracle when the place dereferences a
  pointer — receive the dependencies of the right-hand side, the instruction
  location, and the control dependencies of the enclosing block;
* calls (``T-App``): with only the callee's signature, every place reachable
  through a unique reference of an argument is assumed mutated with the
  collective dependencies of all transitively readable argument data, and the
  return value receives the same; with a whole-program summary, flows are
  translated parameter-by-parameter instead;
* borrows (``T-Borrow``): carry the dependencies of the borrowed place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.borrowck.oracle import AliasOracle
from repro.borrowck.signatures import SignatureSummary, summarize_signature
from repro.core.config import AnalysisConfig
from repro.core.summaries import CallSummaryProvider, ModularSummaryProvider, WholeProgramSummary
from repro.core.theta import (
    EMPTY_DEPS,
    DependencyContext,
    IndexedDependencyContext,
    VecDependencyContext,
)
from repro.dataflow import vecbitset
from repro.dataflow.control_deps import ControlDependencies
from repro.mir.indices import BodyIndex
from repro.lang.ast import FnSig
from repro.mir.ir import (
    Aggregate,
    BinaryOp,
    Body,
    CallTerminator,
    Constant,
    Location,
    Operand,
    Place,
    Ref,
    Rvalue,
    Statement,
    StatementKind,
    SwitchBool,
    Terminator,
    UnaryOp,
    Use,
)


@dataclass
class FlowTransfer:
    """Applies the effect of one MIR instruction to a dependency context Θ."""

    body: Body
    config: AnalysisConfig
    oracle: AliasOracle
    control_deps: ControlDependencies
    signatures: Dict[str, FnSig]
    provider: CallSummaryProvider = field(default_factory=ModularSummaryProvider)
    # Populated during the analysis: call locations that cross a crate
    # boundary (Section 5.4.2) and calls that fell back to the modular rule.
    boundary_call_locations: Set[Location] = field(default_factory=set)
    modular_fallback_locations: Set[Location] = field(default_factory=set)
    _sig_summaries: Dict[str, SignatureSummary] = field(default_factory=dict)

    # -- entry point -------------------------------------------------------------

    def __call__(self, state: DependencyContext, body: Body, location: Location) -> None:
        instruction = body.instruction_at(location)
        if isinstance(instruction, Statement):
            if instruction.kind is StatementKind.ASSIGN:
                assert instruction.place is not None and instruction.rvalue is not None
                self._transfer_assign(state, location, instruction.place, instruction.rvalue)
            return
        if isinstance(instruction, CallTerminator):
            self._transfer_call(state, location, instruction)
            return
        # Gotos, switches, and returns do not modify Θ directly; indirect
        # flows from switches are accounted for via control dependencies at
        # each mutation site.

    # -- reading dependencies ------------------------------------------------------

    def deps_of_place_read(self, state: DependencyContext, place: Place) -> FrozenSet[Location]:
        """Dependencies of reading ``place`` (T-Move / T-Copy).

        The read is resolved through the alias oracle (a dereference may
        denote several places) and gathered over conflicts; when the place
        dereferences a pointer, the pointer's own dependencies are included
        because *which* location is read depends on the pointer value.
        """
        resolved = self.oracle.resolve(place)
        deps = state.read_many(resolved)
        if place.has_deref():
            deps |= state.read_conflicts(place.base_local())
        return deps

    def deps_of_operand(self, state: DependencyContext, operand: Operand) -> FrozenSet[Location]:
        place = operand.place()
        if place is None:
            return EMPTY_DEPS
        return self.deps_of_place_read(state, place)

    def deps_of_rvalue(self, state: DependencyContext, rvalue: Rvalue) -> FrozenSet[Location]:
        if isinstance(rvalue, Ref):
            # T-Borrow: the borrow's dependencies are those of the places the
            # new reference may point to.
            return self.deps_of_place_read(state, rvalue.referent)
        deps: FrozenSet[Location] = EMPTY_DEPS
        for operand in rvalue.operands():
            deps |= self.deps_of_operand(state, operand)
        return deps

    # -- control dependence -----------------------------------------------------------

    def control_dependencies(
        self, state: DependencyContext, block: int
    ) -> FrozenSet[Location]:
        """Locations and discriminant dependencies of the switches controlling
        ``block`` (the indirect-flow component of Figure 1)."""
        if not self.config.track_control_deps:
            return frozenset()
        deps: Set[Location] = set()
        for controller in self.control_deps.controlling_blocks(block):
            terminator = self.body.blocks[controller].terminator
            deps.add(self.body.terminator_location(controller))
            if isinstance(terminator, SwitchBool):
                deps |= self.deps_of_operand(state, terminator.discr)
        return frozenset(deps)

    # -- mutation -----------------------------------------------------------------------

    def mutate(
        self,
        state: DependencyContext,
        target: Place,
        new_deps: FrozenSet[Location],
        force_weak: bool = False,
    ) -> None:
        """Update ``target`` (through the alias oracle) with ``new_deps``.

        A strong update — replacing rather than accumulating dependencies —
        is only sound when the mutated place is unambiguous: the target
        resolves to exactly one place.  Otherwise (or when strong updates are
        disabled for the ablation benches) the paper's additive
        ``update-conflicts`` is used.
        """
        resolved = self.oracle.resolve(target)
        strong = (
            self.config.strong_updates
            and not force_weak
            and len(resolved) == 1
        )
        for concrete in resolved:
            if strong:
                state.write_strong(concrete, new_deps)
            else:
                state.write_weak(concrete, new_deps)

    # -- statements ------------------------------------------------------------------------

    def _transfer_assign(
        self,
        state: DependencyContext,
        location: Location,
        place: Place,
        rvalue: Rvalue,
    ) -> None:
        control = self.control_dependencies(state, location.block)
        deps = set(self.deps_of_rvalue(state, rvalue))
        deps.add(location)
        deps |= control
        self.mutate(state, place, frozenset(deps))

        # Field-sensitive refinement for aggregate construction (the paper's
        # T-Let seeds every place within the new binding): each field of the
        # destination depends only on the operand stored into it, so a later
        # read of `t.0` does not see the dependencies of `t.1`.
        if isinstance(rvalue, Aggregate):
            resolved = self.oracle.resolve(place)
            if len(resolved) == 1:
                target = next(iter(resolved))
                base = frozenset({location}) | control
                for index, operand in enumerate(rvalue.ops):
                    field_deps = self.deps_of_operand(state, operand) | base
                    state.write_strong(target.project_field(index), field_deps)

    # -- calls -----------------------------------------------------------------------------

    def _sig_summary(self, callee: str) -> Optional[SignatureSummary]:
        if callee in self._sig_summaries:
            return self._sig_summaries[callee]
        sig = self.signatures.get(callee)
        if sig is None:
            return None
        summary = summarize_signature(sig)
        self._sig_summaries[callee] = summary
        return summary

    @staticmethod
    def _ref_place(arg_place: Place, path: Sequence[int]) -> Place:
        place = arg_place
        for index in path:
            place = place.project_field(index)
        return place

    def _arg_pointee_deps(
        self,
        state: DependencyContext,
        arg_place: Place,
        sig_summary: SignatureSummary,
        param_index: int,
    ) -> FrozenSet[Location]:
        """Dependencies of everything readable *through* an argument's refs."""
        deps: Set[Location] = set()
        for info in sig_summary.all_refs_of_param(param_index):
            ref_place = self._ref_place(arg_place, info.path)
            pointee = ref_place.project_deref()
            deps |= self.deps_of_place_read(state, pointee)
        return frozenset(deps)

    def _transfer_call(
        self, state: DependencyContext, location: Location, call: CallTerminator
    ) -> None:
        sig_summary = self._sig_summary(call.func)
        control = self.control_dependencies(state, location.block)

        if self.provider.is_crate_boundary(call.func):
            self.boundary_call_locations.add(location)

        # Per-argument dependency bundles.
        operand_deps: List[FrozenSet[Location]] = []
        pointee_deps: List[FrozenSet[Location]] = []
        arg_places: List[Optional[Place]] = []
        for index, arg in enumerate(call.args):
            operand_deps.append(self.deps_of_operand(state, arg))
            place = arg.place()
            arg_places.append(place)
            if place is not None and sig_summary is not None:
                pointee_deps.append(
                    self._arg_pointee_deps(state, place, sig_summary, index)
                )
            else:
                pointee_deps.append(frozenset())

        summary: Optional[WholeProgramSummary] = None
        if self.config.whole_program:
            summary = self.provider.summary_for(call.func)
            if summary is None:
                self.modular_fallback_locations.add(location)

        if summary is not None:
            self._apply_whole_program_call(
                state, location, call, summary, control, operand_deps, pointee_deps, arg_places
            )
        else:
            self._apply_modular_call(
                state, location, call, sig_summary, control, operand_deps, pointee_deps, arg_places
            )

    def _apply_modular_call(
        self,
        state: DependencyContext,
        location: Location,
        call: CallTerminator,
        sig_summary: Optional[SignatureSummary],
        control: FrozenSet[Location],
        operand_deps: List[FrozenSet[Location]],
        pointee_deps: List[FrozenSet[Location]],
        arg_places: List[Optional[Place]],
    ) -> None:
        """T-App with only the signature available (the paper's key rule)."""
        kappa_arg: Set[Location] = {location}
        kappa_arg |= control
        for deps in operand_deps:
            kappa_arg |= deps
        for deps in pointee_deps:
            kappa_arg |= deps
        kappa = frozenset(kappa_arg)

        # Every place reachable through a unique reference of an argument may
        # be mutated with all readable data as input.  Under Mut-blind, the
        # mutability qualifier is ignored and shared references are treated
        # the same way.
        if sig_summary is not None:
            for index, arg_place in enumerate(arg_places):
                if arg_place is None:
                    continue
                refs = (
                    sig_summary.all_refs_of_param(index)
                    if self.config.mut_blind
                    else sig_summary.mutable_refs_of_param(index)
                )
                for info in refs:
                    ref_place = self._ref_place(arg_place, info.path)
                    self.mutate(state, ref_place.project_deref(), kappa, force_weak=True)

        # The return value is assumed to depend on every readable input.
        self.mutate(state, call.destination, kappa)

    def _apply_whole_program_call(
        self,
        state: DependencyContext,
        location: Location,
        call: CallTerminator,
        summary: WholeProgramSummary,
        control: FrozenSet[Location],
        operand_deps: List[FrozenSet[Location]],
        pointee_deps: List[FrozenSet[Location]],
        arg_places: List[Optional[Place]],
    ) -> None:
        """Translate a recursively-computed callee summary to the call site."""

        def arg_bundle(indices: FrozenSet[int]) -> Set[Location]:
            deps: Set[Location] = set()
            for index in indices:
                if index < len(operand_deps):
                    deps |= operand_deps[index]
                    deps |= pointee_deps[index]
            return deps

        return_deps: Set[Location] = {location}
        return_deps |= control
        return_deps |= arg_bundle(summary.return_sources)
        self.mutate(state, call.destination, frozenset(return_deps))

        for (param_index, ref_path), sources in summary.mutations.items():
            if param_index >= len(arg_places):
                continue
            arg_place = arg_places[param_index]
            if arg_place is None:
                continue
            kappa: Set[Location] = {location}
            kappa |= control
            kappa |= arg_bundle(sources)
            target = self._ref_place(arg_place, ref_path).project_deref()
            self.mutate(state, target, frozenset(kappa), force_weak=True)


@dataclass
class IndexedFlowTransfer(FlowTransfer):
    """The transfer function over the indexed (bitset) dependency context.

    Semantically identical to :class:`FlowTransfer` — the differential test
    suite asserts result equality on the whole corpus — but every dependency
    set is a raw int bitset over the shared per-body
    :class:`~repro.mir.indices.BodyIndex`, so the per-instruction state
    update is bitwise arithmetic with zero set allocations.  Static
    structure is memoised across the fixpoint's repeated replays: alias
    resolutions per place, the location-bit component of each block's
    control dependencies, and the projected places of aggregate fields and
    callee reference paths.
    """

    domain: BodyIndex = None  # type: ignore[assignment]
    # id(place) -> (place, resolved place indices, deref base index or -1).
    # Keyed by identity: the places reaching the hot path are owned by the
    # body's statements or by this transfer's own caches, so they outlive
    # the analysis; keeping the place in the value pins that invariant.
    _resolve_cache: Dict[int, Tuple[Place, Tuple[int, ...], int]] = field(default_factory=dict)
    # Block -> (controlling terminator location bits, discriminant read indices).
    _control_cache: Dict[int, Tuple[int, Tuple[int, ...]]] = field(default_factory=dict)
    # (arg place, callee, param index, mutable_only) -> deref'd ref pointees.
    _pointee_cache: Dict[Tuple[Place, str, int, bool], Tuple[Place, ...]] = field(
        default_factory=dict
    )
    # Location -> compiled transfer plan (see _compile_location).
    _plans: Dict[Location, tuple] = field(default_factory=dict)
    # (id(call), param index, ref path) -> resolved weak-write target rows
    # of a whole-program summary mutation (the call is pinned by its plan).
    _mutation_cache: Dict[Tuple[int, int, Tuple[int, ...]], Tuple[int, ...]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        assert self.domain is not None, "IndexedFlowTransfer needs a BodyIndex"

    # -- the compiled hot path ---------------------------------------------------
    #
    # The fixpoint replays every location of a block each time the block
    # re-enters the worklist, but almost everything about an instruction's
    # effect is static: which rows a read gathers over (alias resolution),
    # which rows a write hits, whether the write is strong, the location
    # bit, the control-dependence skeleton of its block.  On first visit a
    # location is *compiled* into a flat tuple of pre-resolved indices;
    # every replay after that is bitwise arithmetic over the state matrix
    # with no isinstance dispatch, no Place hashing, and no allocation.
    #
    # Plan layouts:
    #   (0,)                      — no effect on Θ (nop/goto/switch/return)
    #   (1, reads, strong_target, weak_targets, loc_bit, agg, block)
    #                             — assignment: OR the rows of ``reads``,
    #                               add loc_bit and block control, write
    #                               strongly to ``strong_target`` (or weakly
    #                               to each of ``weak_targets`` when it is
    #                               -1); ``agg`` holds per-field
    #                               (read indices, target row) refinements
    #                               for uniquely-resolved aggregates.
    #   (2, call)                 — call terminator: the dynamic path
    #                               (summaries are provider-dependent).

    _NOP_PLAN = (0,)

    def __call__(self, state: IndexedDependencyContext, body: Body, location: Location) -> None:
        plan = self._plans.get(location)
        if plan is None:
            plan = self._compile_location(location)
            self._plans[location] = plan
        tag = plan[0]
        if tag == 0:
            return
        if tag == 1:
            _tag, reads, strong_target, weak_targets, loc_bit, agg, block = plan
            read_conflicts = state.read_conflicts_bits
            control = self._control_bits(state, block)
            bits = loc_bit | control
            for index in reads:
                bits |= read_conflicts(index)
            if strong_target >= 0:
                state.write_strong_bits(strong_target, bits)
            else:
                for target in weak_targets:
                    state.write_weak_bits(target, bits)
            if agg:
                base = loc_bit | control
                for field_reads, field_target in agg:
                    field_bits = base
                    for index in field_reads:
                        field_bits |= read_conflicts(index)
                    state.write_strong_bits(field_target, field_bits)
            return
        self._apply_call_plan(state, location, plan)

    def _read_indices(self, place: Place) -> Tuple[int, ...]:
        """The rows a read of ``place`` gathers conflicts over.

        ``read_many`` over the alias resolution is a union of per-row
        conflict reads, and the deref case adds one more row (the pointer's
        base local), so a whole place-read flattens to one index tuple.
        """
        _, resolved, base = self._place_info(place)
        if base < 0:
            return resolved
        return resolved + (base,)

    def _compile_location(self, location: Location) -> tuple:
        instruction = self.body.instruction_at(location)
        if isinstance(instruction, Statement):
            if instruction.kind is not StatementKind.ASSIGN:
                return self._NOP_PLAN
            place, rvalue = instruction.place, instruction.rvalue
            assert place is not None and rvalue is not None
            reads: List[int] = []
            if isinstance(rvalue, Ref):
                reads.extend(self._read_indices(rvalue.referent))
            else:
                for operand in rvalue.operands():
                    operand_place = operand.place()
                    if operand_place is not None:
                        reads.extend(self._read_indices(operand_place))
            _, resolved, _base = self._place_info(place)
            strong = self.config.strong_updates and len(resolved) == 1
            agg: Tuple[Tuple[Tuple[int, ...], int], ...] = ()
            if isinstance(rvalue, Aggregate) and len(resolved) == 1:
                target = resolved[0]
                field_plans = []
                for index, operand in enumerate(rvalue.ops):
                    operand_place = operand.place()
                    field_reads = (
                        self._read_indices(operand_place)
                        if operand_place is not None
                        else ()
                    )
                    field_plans.append(
                        (field_reads, self.domain.places.project_field_index(target, index))
                    )
                agg = tuple(field_plans)
            return (
                1,
                tuple(dict.fromkeys(reads)),
                resolved[0] if strong else -1,
                resolved,
                1 << self.domain.locations.index(location),
                agg,
                location.block,
            )
        if isinstance(instruction, CallTerminator):
            return self._compile_call(location, instruction)
        return self._NOP_PLAN

    def _compile_call(self, location: Location, call: CallTerminator) -> tuple:
        """Compile a call terminator's static structure.

        Per argument: the read indices of the operand itself and of every
        place reachable through the argument's references (the T-App input
        bundle).  For the modular rule additionally the pre-resolved weak
        write targets (pointees of unique — or, under Mut-blind, all —
        references).  Whether the callee has a whole-program summary stays
        dynamic: it depends on the provider (recursion depth, cycles,
        cache), so the summary lookup happens per application.
        """
        sig_summary = self._sig_summary(call.func)
        arg_places = tuple(arg.place() for arg in call.args)
        arg_reads = tuple(
            self._read_indices(place) if place is not None else ()
            for place in arg_places
        )
        pointee_reads: List[Tuple[int, ...]] = []
        for index, place in enumerate(arg_places):
            if place is None or sig_summary is None:
                pointee_reads.append(())
                continue
            reads: List[int] = []
            for pointee in self._ref_pointees(place, call.func, sig_summary, index, False):
                reads.extend(self._read_indices(pointee))
            pointee_reads.append(tuple(dict.fromkeys(reads)))

        mut_targets: List[Tuple[int, ...]] = []
        if sig_summary is not None:
            mutable_only = not self.config.mut_blind
            for index, place in enumerate(arg_places):
                if place is None:
                    continue
                for pointee in self._ref_pointees(
                    place, call.func, sig_summary, index, mutable_only
                ):
                    _, resolved, _base = self._place_info(pointee)
                    mut_targets.append(resolved)

        _, dest_resolved, _base = self._place_info(call.destination)
        dest_strong = self.config.strong_updates and len(dest_resolved) == 1
        return (
            2,
            call,
            1 << self.domain.locations.index(location),
            location.block,
            arg_places,
            arg_reads,
            tuple(pointee_reads),
            tuple(mut_targets),
            dest_resolved,
            dest_strong,
            self.provider.is_crate_boundary(call.func),
        )

    def _apply_call_plan(
        self, state: IndexedDependencyContext, location: Location, plan: tuple
    ) -> None:
        (
            _tag,
            call,
            loc_bit,
            block,
            arg_places,
            arg_reads,
            pointee_reads,
            mut_targets,
            dest_resolved,
            dest_strong,
            boundary,
        ) = plan
        if boundary:
            self.boundary_call_locations.add(location)
        control = self._control_bits(state, block)
        read_conflicts = state.read_conflicts_bits

        operand_bits: List[int] = []
        pointee_bits: List[int] = []
        for reads, pointees in zip(arg_reads, pointee_reads):
            bits = 0
            for index in reads:
                bits |= read_conflicts(index)
            operand_bits.append(bits)
            bits = 0
            for index in pointees:
                bits |= read_conflicts(index)
            pointee_bits.append(bits)

        summary: Optional[WholeProgramSummary] = None
        if self.config.whole_program:
            summary = self.provider.summary_for(call.func)
            if summary is None:
                self.modular_fallback_locations.add(location)

        if summary is not None:
            self._apply_whole_program_plan(
                state, call, loc_bit, control, summary, arg_places, operand_bits, pointee_bits,
                dest_resolved, dest_strong,
            )
            return

        # The modular rule (T-App from the signature alone).
        kappa = loc_bit | control
        for bits in operand_bits:
            kappa |= bits
        for bits in pointee_bits:
            kappa |= bits
        for targets in mut_targets:
            for target in targets:
                state.write_weak_bits(target, kappa)
        if dest_strong:
            state.write_strong_bits(dest_resolved[0], kappa)
        else:
            for target in dest_resolved:
                state.write_weak_bits(target, kappa)

    def _apply_whole_program_plan(
        self,
        state: IndexedDependencyContext,
        call: CallTerminator,
        loc_bit: int,
        control: int,
        summary: WholeProgramSummary,
        arg_places: Tuple[Optional[Place], ...],
        operand_bits: List[int],
        pointee_bits: List[int],
        dest_resolved: Tuple[int, ...],
        dest_strong: bool,
    ) -> None:
        """Translate a recursively-computed callee summary to the call site."""

        def arg_bundle(indices: FrozenSet[int]) -> int:
            bits = 0
            for index in indices:
                if index < len(operand_bits):
                    bits |= operand_bits[index] | pointee_bits[index]
            return bits

        return_bits = loc_bit | control | arg_bundle(summary.return_sources)
        if dest_strong:
            state.write_strong_bits(dest_resolved[0], return_bits)
        else:
            for target in dest_resolved:
                state.write_weak_bits(target, return_bits)

        for (param_index, ref_path), sources in summary.mutations.items():
            if param_index >= len(arg_places):
                continue
            arg_place = arg_places[param_index]
            if arg_place is None:
                continue
            kappa = loc_bit | control | arg_bundle(sources)
            target = self._mutation_target(call, param_index, ref_path, arg_place)
            for index in target:
                state.write_weak_bits(index, kappa)

    def _mutation_target(
        self,
        call: CallTerminator,
        param_index: int,
        ref_path: Tuple[int, ...],
        arg_place: Place,
    ) -> Tuple[int, ...]:
        """Pre-resolved weak-write targets of one summary mutation."""
        key = (id(call), param_index, ref_path)
        resolved = self._mutation_cache.get(key)
        if resolved is None:
            place = self._ref_place(arg_place, ref_path).project_deref()
            _, resolved, _base = self._place_info(place)
            self._mutation_cache[key] = resolved
        return resolved

    def _control_bits(self, state: IndexedDependencyContext, block: int) -> int:
        """Control dependencies of ``block``: static terminator-location bits
        plus the (state-dependent) reads of the controlling discriminants."""
        cached = self._control_cache.get(block)
        if cached is None:
            cached = self._compile_control(block)
            self._control_cache[block] = cached
        bits, reads = cached
        if reads:
            read_conflicts = state.read_conflicts_bits
            for index in reads:
                bits |= read_conflicts(index)
        return bits

    def _compile_control(self, block: int) -> Tuple[int, Tuple[int, ...]]:
        if not self.config.track_control_deps:
            return (0, ())
        location_bits = 0
        reads: List[int] = []
        for controller in self.control_deps.controlling_blocks(block):
            terminator = self.body.blocks[controller].terminator
            location_bits |= 1 << self.domain.locations.index(
                self.body.terminator_location(controller)
            )
            if isinstance(terminator, SwitchBool):
                discr_place = terminator.discr.place()
                if discr_place is not None:
                    reads.extend(self._read_indices(discr_place))
        return (location_bits, tuple(dict.fromkeys(reads)))

    # -- reading dependencies (index form) ---------------------------------------

    def _place_info(self, place: Place) -> Tuple[Place, Tuple[int, ...], int]:
        """Memoised alias resolution: (place, resolved indices, deref base)."""
        info = self._resolve_cache.get(id(place))
        if info is None:
            resolved = self.oracle.resolve_indices(place, self.domain.places)
            base = (
                self.domain.places.base_index(place.local)
                if place.has_deref()
                else -1
            )
            info = (place, resolved, base)
            self._resolve_cache[id(place)] = info
        return info

    def deps_of_place_read_bits(self, state: IndexedDependencyContext, place: Place) -> int:
        _, resolved, base = self._place_info(place)
        bits = state.read_many_bits(resolved)
        if base >= 0:
            bits |= state.read_conflicts_bits(base)
        return bits

    def deps_of_operand_bits(self, state: IndexedDependencyContext, operand: Operand) -> int:
        place = operand.place()
        if place is None:
            return 0
        return self.deps_of_place_read_bits(state, place)

    def deps_of_rvalue_bits(self, state: IndexedDependencyContext, rvalue: Rvalue) -> int:
        if isinstance(rvalue, Ref):
            return self.deps_of_place_read_bits(state, rvalue.referent)
        bits = 0
        for operand in rvalue.operands():
            bits |= self.deps_of_operand_bits(state, operand)
        return bits

    # -- mutation ----------------------------------------------------------------

    def mutate_bits(
        self,
        state: IndexedDependencyContext,
        target: Place,
        new_bits: int,
        force_weak: bool = False,
    ) -> None:
        _, resolved, _base = self._place_info(target)
        if self.config.strong_updates and not force_weak and len(resolved) == 1:
            state.write_strong_bits(resolved[0], new_bits)
        else:
            for concrete in resolved:
                state.write_weak_bits(concrete, new_bits)

    # -- statements --------------------------------------------------------------

    # -- calls -------------------------------------------------------------------

    def _ref_pointees(
        self,
        arg_place: Place,
        callee: str,
        sig_summary: SignatureSummary,
        param_index: int,
        mutable_only: bool,
    ) -> Tuple[Place, ...]:
        """Memoised deref'd reference pointees of one call argument."""
        key = (arg_place, callee, param_index, mutable_only)
        places = self._pointee_cache.get(key)
        if places is None:
            refs = (
                sig_summary.mutable_refs_of_param(param_index)
                if mutable_only
                else sig_summary.all_refs_of_param(param_index)
            )
            places = tuple(
                self._ref_place(arg_place, info.path).project_deref() for info in refs
            )
            self._pointee_cache[key] = places
        return places


@dataclass
class VectorFlowTransfer(IndexedFlowTransfer):
    """The transfer function over the vector (numpy word-matrix) context.

    Reuses the compiled plans of :class:`IndexedFlowTransfer` verbatim — the
    static structure of an instruction (which rows a read gathers over, which
    rows a write hits, the location bit, the control skeleton) is engine
    independent — but executes them in word space: every read bundle of an
    instruction becomes **one** concatenated row list fed to a single
    ``np.bitwise_or.reduce`` gather, static location/control bits are cached
    as word vectors, and writes go through the word-level scatter methods of
    :class:`~repro.core.theta.VecDependencyContext`.  No per-bit or
    per-Python-int work happens on the hot path; the only int↔word
    conversions are the one-time plan/static-mask compilations.
    """

    # Static int bit masks (location bit | control terminator bits) cached as
    # immutable word vectors; the word count is fixed per body so the mask
    # value alone keys the cache.
    _word_cache: Dict[int, object] = field(default_factory=dict)

    def _static_words(self, bits: int):
        vec = self._word_cache.get(bits)
        if vec is None:
            vec = vecbitset.int_to_words(
                bits, vecbitset.words_for(len(self.domain.locations))
            )
            self._word_cache[bits] = vec
        return vec

    def _control_rows(
        self, state: VecDependencyContext, block: int, rows: List[int]
    ) -> int:
        """Append the control-dependence conflict rows of ``block`` to
        ``rows`` and return the static terminator-location bits."""
        cached = self._control_cache.get(block)
        if cached is None:
            cached = self._compile_control(block)
            self._control_cache[block] = cached
        static_bits, reads = cached
        if reads:
            collect = state.collect_conflict_rows
            for index in reads:
                collect(index, rows)
        return static_bits

    def __call__(self, state: VecDependencyContext, body: Body, location: Location) -> None:
        plan = self._plans.get(location)
        if plan is None:
            plan = self._compile_location(location)
            self._plans[location] = plan
        tag = plan[0]
        if tag == 0:
            return
        np = vecbitset.np
        matrix = state.matrix
        collect = state.collect_conflict_rows
        if tag == 1:
            _tag, reads, strong_target, weak_targets, loc_bit, agg, block = plan
            if not agg:
                # The common shape: control rows and read rows fold into ONE
                # gather; zero-row instructions share the cached static
                # vector directly (every write copies its input words).
                rows: List[int] = []
                static_bits = self._control_rows(state, block, rows)
                for index in reads:
                    collect(index, rows)
                if rows:
                    vec = matrix.gather_or(rows)
                    np.bitwise_or(
                        vec, self._static_words(loc_bit | static_bits), out=vec
                    )
                else:
                    vec = self._static_words(loc_bit | static_bits)
                if strong_target >= 0:
                    state.write_strong_words(strong_target, vec)
                else:
                    for target in weak_targets:
                        state.write_weak_words(target, vec)
                return
            control_rows: List[int] = []
            static_bits = self._control_rows(state, block, control_rows)
            base_vec = matrix.gather_or(control_rows)
            np.bitwise_or(base_vec, self._static_words(loc_bit | static_bits), out=base_vec)
            rows = []
            for index in reads:
                collect(index, rows)
            if rows:
                vec = matrix.gather_or(rows)
                np.bitwise_or(vec, base_vec, out=vec)
            else:
                vec = base_vec
            if strong_target >= 0:
                state.write_strong_words(strong_target, vec)
            else:
                for target in weak_targets:
                    state.write_weak_words(target, vec)
            # Aggregate field refinements read the post-write state, matching
            # the int engine's sequential field loop.
            for field_reads, field_target in agg:
                rows = []
                for index in field_reads:
                    collect(index, rows)
                if rows:
                    field_vec = matrix.gather_or(rows)
                    np.bitwise_or(field_vec, base_vec, out=field_vec)
                else:
                    field_vec = base_vec
                state.write_strong_words(field_target, field_vec)
            return
        self._apply_call_plan(state, location, plan)

    def _apply_call_plan(
        self, state: VecDependencyContext, location: Location, plan: tuple
    ) -> None:
        (
            _tag,
            call,
            loc_bit,
            block,
            arg_places,
            arg_reads,
            pointee_reads,
            mut_targets,
            dest_resolved,
            dest_strong,
            boundary,
        ) = plan
        if boundary:
            self.boundary_call_locations.add(location)
        np = vecbitset.np
        matrix = state.matrix
        collect = state.collect_conflict_rows

        control_rows: List[int] = []
        static_bits = self._control_rows(state, block, control_rows)

        summary: Optional[WholeProgramSummary] = None
        if self.config.whole_program:
            summary = self.provider.summary_for(call.func)
            if summary is None:
                self.modular_fallback_locations.add(location)

        if summary is not None:
            # Per-argument bundles stay separate: the summary selects which
            # arguments feed each mutation/return.
            base_vec = matrix.gather_or(control_rows)
            np.bitwise_or(
                base_vec, self._static_words(loc_bit | static_bits), out=base_vec
            )
            operand_vecs = []
            pointee_vecs = []
            for reads, pointees in zip(arg_reads, pointee_reads):
                rows: List[int] = []
                for index in reads:
                    collect(index, rows)
                operand_vecs.append(matrix.gather_or(rows))
                rows = []
                for index in pointees:
                    collect(index, rows)
                pointee_vecs.append(matrix.gather_or(rows))
            self._apply_whole_program_words(
                state, call, base_vec, summary, arg_places, operand_vecs,
                pointee_vecs, dest_resolved, dest_strong,
            )
            return

        # The modular rule: κ is one gather over every operand and pointee
        # read of the call plus the control/location base.
        rows = control_rows
        for reads, pointees in zip(arg_reads, pointee_reads):
            for index in reads:
                collect(index, rows)
            for index in pointees:
                collect(index, rows)
        if rows:
            kappa = matrix.gather_or(rows)
            np.bitwise_or(kappa, self._static_words(loc_bit | static_bits), out=kappa)
        else:
            kappa = self._static_words(loc_bit | static_bits)
        for targets in mut_targets:
            for target in targets:
                state.write_weak_words(target, kappa)
        if dest_strong:
            state.write_strong_words(dest_resolved[0], kappa)
        else:
            for target in dest_resolved:
                state.write_weak_words(target, kappa)

    def _apply_whole_program_words(
        self,
        state: VecDependencyContext,
        call: CallTerminator,
        base_vec,
        summary: WholeProgramSummary,
        arg_places: Tuple[Optional[Place], ...],
        operand_vecs: List,
        pointee_vecs: List,
        dest_resolved: Tuple[int, ...],
        dest_strong: bool,
    ) -> None:
        """Translate a callee summary to the call site, in word space."""
        np = vecbitset.np

        def arg_bundle(indices: FrozenSet[int]):
            vec = base_vec.copy()
            for index in indices:
                if index < len(operand_vecs):
                    np.bitwise_or(vec, operand_vecs[index], out=vec)
                    np.bitwise_or(vec, pointee_vecs[index], out=vec)
            return vec

        return_vec = arg_bundle(summary.return_sources)
        if dest_strong:
            state.write_strong_words(dest_resolved[0], return_vec)
        else:
            for target in dest_resolved:
                state.write_weak_words(target, return_vec)

        for (param_index, ref_path), sources in summary.mutations.items():
            if param_index >= len(arg_places):
                continue
            arg_place = arg_places[param_index]
            if arg_place is None:
                continue
            kappa = arg_bundle(sources)
            target = self._mutation_target(call, param_index, ref_path, arg_place)
            for index in target:
                state.write_weak_words(index, kappa)

