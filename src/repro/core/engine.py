"""Program-level analysis engine: the public entry point of the library.

A :class:`FlowEngine` owns a checked and lowered program plus one analysis
configuration, and produces :class:`~repro.core.analysis.FunctionFlowResult`
objects on demand.  It also implements the recursive whole-program summary
provider used by the ``Whole-program`` evaluation condition: callee bodies
are analysed on demand (memoised), but only when they live in the same crate
as the analysis root — calls into other crates always fall back to the
modular approximation, reproducing the paper's constraint that "the only
available definitions are those within the package being analyzed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.borrowck.signatures import summarize_signature
from repro.core.analysis import FunctionFlowAnalysis, FunctionFlowResult
from repro.core.config import AnalysisConfig
from repro.core.summaries import (
    CallSummaryProvider,
    WholeProgramSummary,
    summary_from_exit_state,
)
from repro.lang.ast import FnSig, Program
from repro.lang.parser import parse_program
from repro.lang.typeck import CheckedProgram, check_program
from repro.mir.callgraph import CallGraph, build_call_graph
from repro.mir.ir import Body
from repro.mir.lower import LoweredProgram, lower_program


class RecursiveSummaryProvider(CallSummaryProvider):
    """Computes whole-program call summaries by recursively analysing callees.

    Recursion is bounded by ``config.max_whole_program_depth`` and broken on
    call cycles; in both cases ``summary_for`` returns ``None`` and the caller
    uses the modular rule instead, matching Flowistry's behaviour.

    The :meth:`lookup_summary`/:meth:`store_summary` hooks let an external
    summary backend (the service's content-addressed
    :class:`~repro.service.cache.SummaryStore`) short-circuit the recursion:
    a hit skips re-analysing the callee's whole call-graph cone.  The default
    hooks do nothing, preserving the original in-engine-only memoisation.

    Cached results must be indistinguishable from fresh recursion, so two
    rules apply.  Only *complete* summaries are memoised or offered to the
    backend: a summary whose computation hit the depth bound, or broke a call
    cycle entered higher up the stack, depends on where the recursion started
    — a different analysis root could compute a more precise one.  And a
    complete summary is only *served* when the remaining depth budget could
    have computed it fresh (its recorded computation height fits below the
    bound); otherwise the recursion proceeds as if the cache were empty and
    truncates exactly where a cold run would.
    """

    def __init__(self, engine: "FlowEngine", root_crate: str):
        self.engine = engine
        self.root_crate = root_crate
        self._cache: Dict[str, Optional[WholeProgramSummary]] = {}
        # Computation height (number of stack frames a fresh recursion
        # needs) per complete cached summary.
        self._heights: Dict[str, int] = {}
        self._in_progress: Set[str] = set()
        # The recursion stack: [callee name, tainted?, height] per frame.
        self._stack: List[List[object]] = []

    def is_crate_boundary(self, callee: str) -> bool:
        body = self.engine.lowered.body(callee)
        return body is None or body.crate != self.root_crate

    def _taint_all(self) -> None:
        """Mark every active frame as context-dependent.

        After a depth-bound fallback, any frame computed from a shallower
        start would have had budget to recurse further; after a cycle-break,
        every active frame's result depends on where the recursion entered
        the cycle (the break lands at the inherited in-progress position).
        Either way, none of the summaries on the stack may be cached.
        """
        for frame in self._stack:
            frame[1] = True

    def _fits_budget(self, height: int) -> bool:
        """Whether a fresh recursion of ``height`` frames would complete
        without hitting the depth bound from the current stack."""
        return len(self._stack) + height <= self.engine.config.max_whole_program_depth

    def _bump_parent(self, child_height: int) -> None:
        if self._stack:
            frame = self._stack[-1]
            frame[2] = max(frame[2], child_height + 1)

    # -- external backend hooks ------------------------------------------------

    def lookup_summary(
        self, callee: str, body: Body
    ) -> Optional[Tuple[WholeProgramSummary, int]]:
        """Consult an external summary backend.

        Returns ``(summary, computation height)`` or ``None`` for a miss.
        Backends must only ever hold complete summaries together with the
        height recorded when they were stored.
        """
        return None

    def store_summary(
        self, callee: str, body: Body, summary: WholeProgramSummary, height: int
    ) -> None:
        """Offer a freshly computed complete summary to an external backend."""

    def summary_for(self, callee: str) -> Optional[WholeProgramSummary]:
        if callee in self._cache:
            cached = self._cache[callee]
            if cached is None:
                return None  # negative entry: crate boundary
            if self._fits_budget(self._heights[callee]):
                self._bump_parent(self._heights[callee])
                return cached
            # Not enough budget left: recompute below, truncating exactly
            # where a fresh recursion would.
        if self.is_crate_boundary(callee):
            self._cache[callee] = None
            return None
        if callee in self._in_progress:
            # Call cycle: fall back to the modular approximation.
            self._taint_all()
            return None

        body = self.engine.lowered.body(callee)
        assert body is not None
        if callee not in self._cache:
            external = self.lookup_summary(callee, body)
            if external is not None:
                summary, height = external
                if self._fits_budget(height):
                    self._cache[callee] = summary
                    self._heights[callee] = height
                    self._bump_parent(height)
                    return summary
                # Insufficient budget: ignore the hit and recompute.
        if len(self._stack) >= self.engine.config.max_whole_program_depth:
            self._taint_all()
            return None

        self._in_progress.add(callee)
        frame: List[object] = [callee, False, 1]
        self._stack.append(frame)
        try:
            result = FunctionFlowAnalysis(
                body=body,
                signatures=self.engine.signatures,
                config=self.engine.config,
                provider=self,
            ).run()
            # The exit state is materialised while the callee is still marked
            # in-progress: computing it replays the transfer function, which
            # re-resolves recursive calls and must keep hitting the cycle
            # guard rather than re-entering this method unboundedly.
            summary = summary_from_exit_state(
                body=body,
                exit_theta=result.exit_theta,
                mutable_ref_paths=self.engine.mutable_ref_paths(callee),
            )
        finally:
            self._stack.pop()
            self._in_progress.discard(callee)

        height = int(frame[2])
        if not frame[1]:
            self.store_summary(callee, body, summary, height)
            self._cache[callee] = summary
            self._heights[callee] = height
        self._bump_parent(height)
        return summary


# Backwards-compatible alias for the pre-service private name.
_RecursiveSummaryProvider = RecursiveSummaryProvider


@dataclass
class ProgramFlowResult:
    """Results of analysing every function of the local crate."""

    config: AnalysisConfig
    results: Dict[str, FunctionFlowResult] = field(default_factory=dict)

    def function_names(self) -> List[str]:
        return sorted(self.results)

    def result(self, name: str) -> FunctionFlowResult:
        return self.results[name]

    def dependency_sizes(self) -> Dict[Tuple[str, str], int]:
        """(function, variable) → dependency set size at exit.

        This is the raw data behind Figures 2–4: one entry per analysed
        variable per function.
        """
        out: Dict[Tuple[str, str], int] = {}
        for fn_name, result in self.results.items():
            for var, size in result.dependency_sizes().items():
                out[(fn_name, var)] = size
        return out

    def total_variables(self) -> int:
        return len(self.dependency_sizes())


class FlowEngine:
    """Analyse a whole MiniRust program under one configuration."""

    def __init__(
        self,
        checked: CheckedProgram,
        lowered: Optional[LoweredProgram] = None,
        config: Optional[AnalysisConfig] = None,
    ):
        self.checked = checked
        self.lowered = lowered if lowered is not None else lower_program(checked)
        self.config = config or AnalysisConfig()
        self.signatures: Dict[str, FnSig] = checked.signatures
        self._results: Dict[str, FunctionFlowResult] = {}
        self._call_graph: Optional[CallGraph] = None
        self._mutable_ref_paths: Dict[str, Dict[int, Tuple[Tuple[int, ...], ...]]] = {}
        self._provider = self._make_provider()

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_program(cls, program: Program, config: Optional[AnalysisConfig] = None) -> "FlowEngine":
        checked = check_program(program)
        return cls(checked, config=config)

    @classmethod
    def from_source(cls, source: str, config: Optional[AnalysisConfig] = None) -> "FlowEngine":
        return cls.from_program(parse_program(source), config=config)

    def _make_provider(self) -> CallSummaryProvider:
        return RecursiveSummaryProvider(self, root_crate=self.local_crate)

    def set_provider(self, provider: CallSummaryProvider) -> None:
        """Install an external call-summary provider (e.g. one backed by the
        service's :class:`~repro.service.cache.SummaryStore`).

        Memoised per-function results are dropped: they may have been computed
        under the previous provider.
        """
        self._provider = provider
        self._results.clear()

    # -- program structure ---------------------------------------------------------

    @property
    def program(self) -> Program:
        return self.checked.program

    @property
    def local_crate(self) -> str:
        return self.program.local_crate

    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = build_call_graph(self.lowered)
        return self._call_graph

    def local_function_names(self) -> List[str]:
        return sorted(body.fn_name for body in self.lowered.local_bodies())

    def body(self, name: str) -> Optional[Body]:
        return self.lowered.body(name)

    def mutable_ref_paths(self, fn_name: str) -> Dict[int, Tuple[Tuple[int, ...], ...]]:
        """Per parameter, the paths of its mutable references (cached)."""
        if fn_name not in self._mutable_ref_paths:
            sig = self.signatures.get(fn_name)
            paths: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
            if sig is not None:
                summary = summarize_signature(sig)
                for index in range(sig.arity()):
                    refs = summary.mutable_refs_of_param(index)
                    if refs:
                        paths[index] = tuple(info.path for info in refs)
            self._mutable_ref_paths[fn_name] = paths
        return self._mutable_ref_paths[fn_name]

    # -- analysis -------------------------------------------------------------------

    def analyze_function(self, name: str) -> FunctionFlowResult:
        """Analyse one function (memoised per engine/configuration)."""
        if name in self._results:
            return self._results[name]
        result = self.analyze_function_with(name, self._provider)
        self._results[name] = result
        return result

    def analyze_function_with(
        self, name: str, provider: CallSummaryProvider
    ) -> FunctionFlowResult:
        """Analyse one function through an explicit summary provider.

        This is the reusable per-function entry point of the incremental
        service: it performs no engine-level memoisation, so the caller (a
        cache, a scheduler worker) fully controls result reuse.
        """
        body = self.lowered.body(name)
        if body is None:
            raise KeyError(f"no body available for function {name!r}")
        return FunctionFlowAnalysis(
            body=body,
            signatures=self.signatures,
            config=self.config,
            provider=provider,
        ).run()

    def analyze_local_crate(self) -> ProgramFlowResult:
        """Analyse every function of the local crate (the evaluation's unit)."""
        program_result = ProgramFlowResult(config=self.config)
        for name in self.local_function_names():
            program_result.results[name] = self.analyze_function(name)
        return program_result

    def analyze_all(self) -> ProgramFlowResult:
        """Analyse every function with a body, across all crates."""
        program_result = ProgramFlowResult(config=self.config)
        for name in sorted(self.lowered.bodies):
            program_result.results[name] = self.analyze_function(name)
        return program_result


def analyze_program(
    program: Program, config: Optional[AnalysisConfig] = None
) -> ProgramFlowResult:
    """Check, lower, and analyse every local-crate function of ``program``."""
    return FlowEngine.from_program(program, config=config).analyze_local_crate()


def analyze_source(source: str, config: Optional[AnalysisConfig] = None) -> ProgramFlowResult:
    """Parse, check, lower, and analyse MiniRust source text."""
    return FlowEngine.from_source(source, config=config).analyze_local_crate()
