"""Program-level analysis engine: the public entry point of the library.

A :class:`FlowEngine` owns a checked and lowered program plus one analysis
configuration, and produces :class:`~repro.core.analysis.FunctionFlowResult`
objects on demand.  It also implements the recursive whole-program summary
provider used by the ``Whole-program`` evaluation condition: callee bodies
are analysed on demand (memoised), but only when they live in the same crate
as the analysis root — calls into other crates always fall back to the
modular approximation, reproducing the paper's constraint that "the only
available definitions are those within the package being analyzed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.borrowck.signatures import summarize_signature
from repro.core.analysis import FunctionFlowAnalysis, FunctionFlowResult
from repro.core.config import AnalysisConfig
from repro.core.summaries import (
    CallSummaryProvider,
    WholeProgramSummary,
    summary_from_exit_state,
)
from repro.lang.ast import FnSig, Program
from repro.lang.parser import parse_program
from repro.lang.typeck import CheckedProgram, check_program
from repro.mir.callgraph import CallGraph, build_call_graph
from repro.mir.ir import Body
from repro.mir.lower import LoweredProgram, lower_program


class _RecursiveSummaryProvider(CallSummaryProvider):
    """Computes whole-program call summaries by recursively analysing callees.

    Recursion is bounded by ``config.max_whole_program_depth`` and broken on
    call cycles; in both cases ``summary_for`` returns ``None`` and the caller
    uses the modular rule instead, matching Flowistry's behaviour.
    """

    def __init__(self, engine: "FlowEngine", root_crate: str):
        self.engine = engine
        self.root_crate = root_crate
        self._cache: Dict[str, Optional[WholeProgramSummary]] = {}
        self._in_progress: Set[str] = set()
        self._depth = 0

    def is_crate_boundary(self, callee: str) -> bool:
        body = self.engine.lowered.body(callee)
        return body is None or body.crate != self.root_crate

    def summary_for(self, callee: str) -> Optional[WholeProgramSummary]:
        if callee in self._cache:
            return self._cache[callee]
        if self.is_crate_boundary(callee):
            self._cache[callee] = None
            return None
        if callee in self._in_progress:
            # Call cycle: fall back to the modular approximation.
            return None
        if self._depth >= self.engine.config.max_whole_program_depth:
            return None

        body = self.engine.lowered.body(callee)
        assert body is not None
        self._in_progress.add(callee)
        self._depth += 1
        try:
            result = FunctionFlowAnalysis(
                body=body,
                signatures=self.engine.signatures,
                config=self.engine.config,
                provider=self,
            ).run()
            # The exit state is materialised while the callee is still marked
            # in-progress: computing it replays the transfer function, which
            # re-resolves recursive calls and must keep hitting the cycle
            # guard rather than re-entering this method unboundedly.
            summary = summary_from_exit_state(
                body=body,
                exit_theta=result.exit_theta,
                mutable_ref_paths=self.engine.mutable_ref_paths(callee),
            )
        finally:
            self._depth -= 1
            self._in_progress.discard(callee)

        self._cache[callee] = summary
        return summary


@dataclass
class ProgramFlowResult:
    """Results of analysing every function of the local crate."""

    config: AnalysisConfig
    results: Dict[str, FunctionFlowResult] = field(default_factory=dict)

    def function_names(self) -> List[str]:
        return sorted(self.results)

    def result(self, name: str) -> FunctionFlowResult:
        return self.results[name]

    def dependency_sizes(self) -> Dict[Tuple[str, str], int]:
        """(function, variable) → dependency set size at exit.

        This is the raw data behind Figures 2–4: one entry per analysed
        variable per function.
        """
        out: Dict[Tuple[str, str], int] = {}
        for fn_name, result in self.results.items():
            for var, size in result.dependency_sizes().items():
                out[(fn_name, var)] = size
        return out

    def total_variables(self) -> int:
        return len(self.dependency_sizes())


class FlowEngine:
    """Analyse a whole MiniRust program under one configuration."""

    def __init__(
        self,
        checked: CheckedProgram,
        lowered: Optional[LoweredProgram] = None,
        config: Optional[AnalysisConfig] = None,
    ):
        self.checked = checked
        self.lowered = lowered if lowered is not None else lower_program(checked)
        self.config = config or AnalysisConfig()
        self.signatures: Dict[str, FnSig] = checked.signatures
        self._results: Dict[str, FunctionFlowResult] = {}
        self._call_graph: Optional[CallGraph] = None
        self._mutable_ref_paths: Dict[str, Dict[int, Tuple[Tuple[int, ...], ...]]] = {}
        self._provider = self._make_provider()

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_program(cls, program: Program, config: Optional[AnalysisConfig] = None) -> "FlowEngine":
        checked = check_program(program)
        return cls(checked, config=config)

    @classmethod
    def from_source(cls, source: str, config: Optional[AnalysisConfig] = None) -> "FlowEngine":
        return cls.from_program(parse_program(source), config=config)

    def _make_provider(self) -> CallSummaryProvider:
        return _RecursiveSummaryProvider(self, root_crate=self.local_crate)

    # -- program structure ---------------------------------------------------------

    @property
    def program(self) -> Program:
        return self.checked.program

    @property
    def local_crate(self) -> str:
        return self.program.local_crate

    @property
    def call_graph(self) -> CallGraph:
        if self._call_graph is None:
            self._call_graph = build_call_graph(self.lowered)
        return self._call_graph

    def local_function_names(self) -> List[str]:
        return sorted(body.fn_name for body in self.lowered.local_bodies())

    def body(self, name: str) -> Optional[Body]:
        return self.lowered.body(name)

    def mutable_ref_paths(self, fn_name: str) -> Dict[int, Tuple[Tuple[int, ...], ...]]:
        """Per parameter, the paths of its mutable references (cached)."""
        if fn_name not in self._mutable_ref_paths:
            sig = self.signatures.get(fn_name)
            paths: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
            if sig is not None:
                summary = summarize_signature(sig)
                for index in range(sig.arity()):
                    refs = summary.mutable_refs_of_param(index)
                    if refs:
                        paths[index] = tuple(info.path for info in refs)
            self._mutable_ref_paths[fn_name] = paths
        return self._mutable_ref_paths[fn_name]

    # -- analysis -------------------------------------------------------------------

    def analyze_function(self, name: str) -> FunctionFlowResult:
        """Analyse one function (memoised per engine/configuration)."""
        if name in self._results:
            return self._results[name]
        body = self.lowered.body(name)
        if body is None:
            raise KeyError(f"no body available for function {name!r}")
        result = FunctionFlowAnalysis(
            body=body,
            signatures=self.signatures,
            config=self.config,
            provider=self._provider,
        ).run()
        self._results[name] = result
        return result

    def analyze_local_crate(self) -> ProgramFlowResult:
        """Analyse every function of the local crate (the evaluation's unit)."""
        program_result = ProgramFlowResult(config=self.config)
        for name in self.local_function_names():
            program_result.results[name] = self.analyze_function(name)
        return program_result

    def analyze_all(self) -> ProgramFlowResult:
        """Analyse every function with a body, across all crates."""
        program_result = ProgramFlowResult(config=self.config)
        for name in sorted(self.lowered.bodies):
            program_result.results[name] = self.analyze_function(name)
        return program_result


def analyze_program(
    program: Program, config: Optional[AnalysisConfig] = None
) -> ProgramFlowResult:
    """Check, lower, and analyse every local-crate function of ``program``."""
    return FlowEngine.from_program(program, config=config).analyze_local_crate()


def analyze_source(source: str, config: Optional[AnalysisConfig] = None) -> ProgramFlowResult:
    """Parse, check, lower, and analyse MiniRust source text."""
    return FlowEngine.from_source(source, config=config).analyze_local_crate()
