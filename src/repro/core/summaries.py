"""Call summaries: modular (signature-only) and whole-program (recursive).

The paper's central question (Section 2.3) is what to assume about a call
``f(args)`` given only ``f``'s type signature.  The modular answer:

* every place reachable through a *unique* (``&mut``) reference of an
  argument may be mutated,
* every transitively readable place of every argument is an input to every
  such mutation and to the return value.

The **Whole-program** evaluation condition instead analyses the callee's body
(when it is available inside the crate under analysis) and translates flows
between the callee's parameters into flows between the caller's arguments.
:class:`WholeProgramSummary` is that translated form: per output (the return
value or a mutated parameter reference) the set of parameter indices whose
data flows into it.

To avoid an import cycle (the summary of a callee is produced by running the
very analysis that consumes summaries), the recursive machinery lives behind
the :class:`CallSummaryProvider` interface; :mod:`repro.core.engine` supplies
the recursive implementation, and :class:`ModularSummaryProvider` is the
degenerate one used when whole-program analysis is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.core.theta import DependencyContext, is_arg_location
from repro.mir.ir import Body, Place, RETURN_LOCAL


# A mutation output: (parameter index, field path to the mutated reference
# within that parameter's type).  The empty path means the parameter itself
# is the mutated reference.
MutationKey = Tuple[int, Tuple[int, ...]]


@dataclass(frozen=True)
class WholeProgramSummary:
    """Parameter-level flow summary of one analysed callee.

    ``return_sources`` lists the parameter indices whose data flows into the
    callee's return value.  ``mutations`` maps each mutated parameter
    reference to the parameter indices flowing into that mutation; a
    parameter that the callee never actually writes through simply does not
    appear — this is exactly what makes Whole-program more precise than the
    modular approximation for functions like ``crop`` (Section 5.3.1).
    """

    callee: str
    return_sources: FrozenSet[int] = frozenset()
    mutations: Dict[MutationKey, FrozenSet[int]] = field(default_factory=dict)

    def mutated_params(self) -> Set[int]:
        return {param for param, _path in self.mutations}

    # -- serialisation -------------------------------------------------------
    #
    # Summaries are the unit of persistence of the incremental analysis
    # service (:mod:`repro.service.cache`): a summary computed for one
    # fingerprint of a callee body can be reloaded in a later process instead
    # of re-analysing the callee.  The JSON form is intentionally flat so the
    # on-disk tier stays greppable.

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-serialisable dict; inverse of :meth:`from_json_dict`.

        The compact index form of the cache (format 2): a summary is pure
        index data already — parameter indices and field paths — so each
        mutation is a flat ``[param, [path...], [sources...]]`` triple
        rather than a keyed object.
        """
        return {
            "callee": self.callee,
            "return_sources": sorted(self.return_sources),
            "mutations": [
                [param, list(path), sorted(sources)]
                for (param, path), sources in sorted(self.mutations.items())
            ],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "WholeProgramSummary":
        """Rebuild a summary from :meth:`to_json_dict` output."""
        mutations: Dict[MutationKey, FrozenSet[int]] = {}
        for param, path, sources in data.get("mutations", []):
            key = (int(param), tuple(int(i) for i in path))
            mutations[key] = frozenset(int(i) for i in sources)
        return cls(
            callee=str(data["callee"]),
            return_sources=frozenset(int(i) for i in data.get("return_sources", [])),
            mutations=mutations,
        )

    def pretty(self) -> str:
        lines = [f"summary of {self.callee}:"]
        rets = ", ".join(f"arg{i}" for i in sorted(self.return_sources)) or "(constants only)"
        lines.append(f"  return <- {rets}")
        for (param, path), sources in sorted(self.mutations.items()):
            path_str = "".join(f".{i}" for i in path)
            srcs = ", ".join(f"arg{i}" for i in sorted(sources)) or "(constants only)"
            lines.append(f"  *arg{param}{path_str} <- {srcs}")
        return "\n".join(lines)


class CallSummaryProvider:
    """Interface used by the transfer function to obtain callee summaries."""

    def summary_for(self, callee: str) -> Optional[WholeProgramSummary]:
        """A whole-program summary for ``callee``, or ``None`` to force the
        modular approximation (unknown body, crate boundary, recursion...)."""
        raise NotImplementedError

    def is_crate_boundary(self, callee: str) -> bool:
        """Whether calling ``callee`` crosses the crate boundary (used for the
        Section 5.4.2 study); providers that do not track crates return False."""
        return False


class ModularSummaryProvider(CallSummaryProvider):
    """Never supplies summaries: every call uses the modular approximation."""

    def __init__(self, boundary_fns: Optional[Set[str]] = None):
        self._boundary_fns = boundary_fns or set()

    def summary_for(self, callee: str) -> Optional[WholeProgramSummary]:
        return None

    def is_crate_boundary(self, callee: str) -> bool:
        return callee in self._boundary_fns


def summary_from_exit_state(
    body: Body,
    exit_theta: DependencyContext,
    mutable_ref_paths: Dict[int, Tuple[Tuple[int, ...], ...]],
) -> WholeProgramSummary:
    """Translate a callee's exit Θ into a parameter-level summary.

    The callee must have been analysed with its arguments seeded with the
    synthetic ``arg_location`` tags (the analysis driver always does this).
    ``mutable_ref_paths`` lists, per parameter index, the field paths of the
    references through which that parameter could be mutated — the summary
    only reports those, because anything else is invisible to the caller.
    """

    def sources_of(place: Place) -> FrozenSet[int]:
        deps = exit_theta.read_conflicts(place)
        return frozenset(loc.statement for loc in deps if is_arg_location(loc))

    return_sources = sources_of(Place.from_local(RETURN_LOCAL))

    mutations: Dict[MutationKey, FrozenSet[int]] = {}
    for param_index, ref_paths in mutable_ref_paths.items():
        arg_place = Place.from_local(param_index + 1)  # locals _1.. are the args
        for path in ref_paths:
            ref_place = arg_place
            for index in path:
                ref_place = ref_place.project_field(index)
            pointee = ref_place.project_deref()
            deps = exit_theta.read_conflicts(pointee)
            # The pointee was seeded with its own arg tag; a mutation happened
            # only if some *real* location (or another argument's tag) was
            # added on top of the seed.
            non_seed = {
                loc
                for loc in deps
                if not (is_arg_location(loc) and loc.statement == param_index)
            }
            if not non_seed:
                continue
            sources = frozenset(
                loc.statement for loc in non_seed if is_arg_location(loc)
            )
            mutations[(param_index, path)] = sources

    return WholeProgramSummary(
        callee=body.fn_name,
        return_sources=return_sources,
        mutations=mutations,
    )
