"""Per-function information flow analysis driver.

Ties the pieces together for one MIR body: build the alias oracle (precise or
ref-blind), compute control dependencies, seed the argument places with
synthetic dependency tags, and run the forward dataflow to fixpoint.  The
:class:`FunctionFlowResult` exposes everything the applications and the
evaluation need: Θ at any location, dependency-set sizes per variable at the
function exit (the paper's measurement unit), and backward/forward slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.borrowck.oracle import AliasOracle, make_oracle
from repro.borrowck.signatures import summarize_signature
from repro.core.config import AnalysisConfig
from repro.core.summaries import CallSummaryProvider, ModularSummaryProvider
from repro.core.theta import (
    DependencyContext,
    IndexedDependencyContext,
    IndexedThetaLattice,
    ThetaLattice,
    VecDependencyContext,
    VecThetaLattice,
    arg_location,
    is_arg_location,
)
from repro.core.transfer import FlowTransfer, IndexedFlowTransfer, VectorFlowTransfer
from repro.dataflow.control_deps import compute_control_deps
from repro.dataflow.engine import FixpointResult, ForwardAnalysis
from repro.lang.ast import FnSig
from repro.mir.indices import BodyIndex, index_body
from repro.obs import metrics as obs_metrics
from repro.obs import stage as obs_stage
from repro.mir.ir import Body, Location, Place, RETURN_LOCAL, StatementKind, Statement, CallTerminator


def argument_seed_places(body: Body) -> List[Tuple[int, Place]]:
    """``(parameter index, place)`` pairs seeded with argument tags at entry.

    Per parameter: the argument place itself, plus every place reachable by
    dereferencing a reference nested in the parameter's type.  Shared by
    both engine paths (and by the interning-table seeding) so the seeded key
    set is identical by construction.
    """
    summary = summarize_signature(body.signature)
    out: List[Tuple[int, Place]] = []
    for param_index, local in enumerate(body.arg_locals()):
        arg_place = Place.from_local(local.index)
        out.append((param_index, arg_place))
        for info in summary.all_refs_of_param(param_index):
            ref_place = arg_place
            for index in info.path:
                ref_place = ref_place.project_field(index)
            out.append((param_index, ref_place.project_deref()))
    return out


def _seed_arguments(body: Body) -> DependencyContext:
    """Initial Θ: each argument (and each place reachable through its
    references) is tagged with a synthetic per-parameter location.

    The tags serve two purposes: they let results express "this variable
    depends on parameter i", and they are how whole-program call summaries
    are read back out of a callee's exit state.
    """
    theta = DependencyContext()
    for param_index, place in argument_seed_places(body):
        theta.set(place, frozenset({arg_location(param_index)}))
    return theta


def _seed_arguments_indexed(
    domain: BodyIndex,
    seeds: List[Tuple[int, Place]],
    theta: Optional[IndexedDependencyContext] = None,
) -> IndexedDependencyContext:
    """The same initial Θ over the indexed domain: one tag bit per row.

    ``theta`` lets the vector engine pass a :class:`VecDependencyContext`;
    the int-facing ``set_row`` is shared by both matrix representations.
    """
    if theta is None:
        theta = IndexedDependencyContext(domain)
    place_index = domain.places.index
    location_index = domain.locations.index
    for param_index, place in seeds:
        theta.matrix.set_row(
            place_index(place), 1 << location_index(arg_location(param_index))
        )
    return theta


@dataclass
class FunctionFlowResult:
    """The outcome of analysing one function under one configuration."""

    body: Body
    config: AnalysisConfig
    oracle: AliasOracle
    transfer: FlowTransfer
    fixpoint: FixpointResult
    _exit_theta: Optional[DependencyContext] = field(default=None, init=False)

    # -- states -----------------------------------------------------------------

    @property
    def exit_theta(self) -> DependencyContext:
        """Θ at the function exit: the join over all return blocks."""
        if self._exit_theta is None:
            self._exit_theta = self.fixpoint.state_at_returns()
        return self._exit_theta

    def theta_at(self, location: Location) -> DependencyContext:
        return self.fixpoint.state_at(location)

    def theta_after(self, location: Location) -> DependencyContext:
        return self.fixpoint.state_after(location)

    # -- dependency sets ------------------------------------------------------------

    def deps_of_place(
        self, place: Place, location: Optional[Location] = None
    ) -> FrozenSet[Location]:
        theta = self.exit_theta if location is None else self.theta_at(location)
        resolved = self.oracle.resolve(place)
        return theta.read_many(resolved)

    def deps_of_variable(
        self, name: str, location: Optional[Location] = None
    ) -> FrozenSet[Location]:
        local = self.body.local_by_name(name)
        if local is None:
            raise KeyError(f"function {self.body.fn_name!r} has no variable {name!r}")
        return self.deps_of_place(Place.from_local(local.index), location)

    def deps_of_return(self) -> FrozenSet[Location]:
        return self.deps_of_place(Place.from_local(RETURN_LOCAL))

    def dependency_sizes(
        self, include_temporaries: bool = True, count_arg_tags: bool = True
    ) -> Dict[str, int]:
        """The evaluation metric of Section 5.1: per local variable, the size
        of its dependency set at the function exit.

        ``include_temporaries`` controls whether compiler-introduced temporaries
        count as variables (the paper analyses all MIR locals).  ``count_arg_tags``
        controls whether the synthetic per-argument seed tags are counted.
        """
        theta = self.exit_theta
        out: Dict[str, int] = {}
        indexed = isinstance(theta, IndexedDependencyContext)
        if indexed:
            from repro.dataflow.bitset import popcount

            place_index = theta.domain.places.index
            arg_tag_mask = theta.domain.locations.arg_tag_mask
        if isinstance(theta, VecDependencyContext):
            # Batched word-space path: one whole-matrix popcount answers all
            # single-row reads instead of a gather + int conversion per local.
            labels: List[str] = []
            targets: List[int] = []
            for local in self.body.locals:
                if local.index == RETURN_LOCAL:
                    label = "<return>"
                elif local.name is not None:
                    label = local.name
                elif include_temporaries:
                    label = f"_{local.index}"
                else:
                    continue
                labels.append(label)
                targets.append(place_index(Place.from_local(local.index)))
            sizes = theta.conflict_sizes(
                targets, exclude_bits=0 if count_arg_tags else arg_tag_mask
            )
            return dict(zip(labels, sizes))
        for local in self.body.locals:
            if local.index == RETURN_LOCAL:
                label = "<return>"
            elif local.name is not None:
                label = local.name
            elif include_temporaries:
                label = f"_{local.index}"
            else:
                continue
            if indexed:
                # Count bits directly: no frozenset materialisation.
                bits = theta.read_conflicts_bits(place_index(Place.from_local(local.index)))
                if not count_arg_tags:
                    bits &= ~arg_tag_mask
                out[label] = popcount(bits)
                continue
            deps = theta.read_conflicts(Place.from_local(local.index))
            if not count_arg_tags:
                deps = frozenset(d for d in deps if not is_arg_location(d))
            out[label] = len(deps)
        return out

    # -- slicing ----------------------------------------------------------------------

    def backward_slice(
        self, place: Place, location: Optional[Location] = None
    ) -> FrozenSet[Location]:
        """Locations that may influence the value of ``place``.

        Because Θ accumulates dependencies transitively (the dependencies of
        every operand are folded into each mutation), the backward slice is
        simply the dependency set of the place, minus the synthetic argument
        tags.
        """
        deps = self.deps_of_place(place, location)
        return frozenset(loc for loc in deps if not is_arg_location(loc))

    def backward_slice_of_variable(
        self, name: str, location: Optional[Location] = None
    ) -> FrozenSet[Location]:
        local = self.body.local_by_name(name)
        if local is None:
            raise KeyError(f"function {self.body.fn_name!r} has no variable {name!r}")
        return self.backward_slice(Place.from_local(local.index), location)

    def forward_slice(self, source: Location) -> FrozenSet[Location]:
        """Locations whose computed values may be influenced by ``source``.

        Computed by scanning every instruction and asking whether the place
        it writes depends on ``source`` immediately afterwards.
        """
        influenced: Set[Location] = set()
        for location in self.body.locations():
            instruction = self.body.instruction_at(location)
            written: Optional[Place] = None
            if isinstance(instruction, Statement) and instruction.kind is StatementKind.ASSIGN:
                written = instruction.place
            elif isinstance(instruction, CallTerminator):
                written = instruction.destination
            if written is None:
                continue
            after = self.theta_after(location)
            if source in after.read_conflicts(written):
                influenced.add(location)
        influenced.add(source)
        return frozenset(influenced)

    # -- evaluation helpers ------------------------------------------------------------

    def boundary_call_locations(self) -> FrozenSet[Location]:
        """Call locations that cross a crate boundary (Section 5.4.2)."""
        return frozenset(self.transfer.boundary_call_locations)

    def variable_hits_boundary(self, name: str) -> bool:
        """Whether the variable's flow involves a cross-crate call."""
        deps = self.deps_of_variable(name)
        return bool(deps & self.transfer.boundary_call_locations)

    def annotations(self) -> Dict[Location, str]:
        """Per-location rendering of Θ entries, for Figure 1 style printouts."""
        out: Dict[Location, str] = {}
        for location in self.body.locations():
            instruction = self.body.instruction_at(location)
            written: Optional[Place] = None
            if isinstance(instruction, Statement) and instruction.kind is StatementKind.ASSIGN:
                written = instruction.place
            elif isinstance(instruction, CallTerminator):
                written = instruction.destination
            if written is None:
                continue
            after = self.theta_after(location)
            deps = sorted(after.read_conflicts(written))
            rendered = ", ".join(
                f"arg{d.statement}" if is_arg_location(d) else d.pretty() for d in deps
            )
            out[location] = f"Θ({written.pretty(self.body)}) = {{{rendered}}}"
        return out


class FunctionFlowAnalysis:
    """Configures and runs the information flow analysis for one body."""

    def __init__(
        self,
        body: Body,
        signatures: Dict[str, FnSig],
        config: Optional[AnalysisConfig] = None,
        provider: Optional[CallSummaryProvider] = None,
    ):
        self.body = body
        self.signatures = signatures
        self.config = config or AnalysisConfig()
        self.provider = provider or ModularSummaryProvider()

    def run(self) -> FunctionFlowResult:
        with obs_stage("fixpoint", fn=self.body.fn_name, engine=self.config.engine) as sp:
            result = self._run()
        obs_metrics.get_registry().histogram(
            "fixpoint_iterations", buckets=obs_metrics.COUNT_BUCKETS,
            engine=self.config.engine,
        ).observe(result.fixpoint.iterations)
        if sp is not None:
            sp.set(iterations=result.fixpoint.iterations)
            theta = result.exit_theta
            if isinstance(theta, IndexedDependencyContext):
                places = len(theta.domain.places)
                locations = len(theta.domain.locations)
                sp.set(
                    places=places,
                    locations=locations,
                    density=round(theta.matrix.density(places, locations), 6),
                )
        return result

    def _run(self) -> FunctionFlowResult:
        control_deps = compute_control_deps(self.body)
        if self.config.engine == "object":
            oracle = make_oracle(self.body, self.signatures, ref_blind=self.config.ref_blind)
            transfer: FlowTransfer = FlowTransfer(
                body=self.body,
                config=self.config,
                oracle=oracle,
                control_deps=control_deps,
                signatures=self.signatures,
                provider=self.provider,
            )
            lattice = ThetaLattice()
            boundary_state = lambda body: _seed_arguments(body)
        else:
            seeds = argument_seed_places(self.body)
            domain = index_body(
                self.body, arg_seed_places=[place for _, place in seeds]
            )
            # The loan analysis interns into the same place table, so oracle
            # resolutions arrive already in the engine's index space.
            oracle = make_oracle(
                self.body,
                self.signatures,
                ref_blind=self.config.ref_blind,
                place_domain=domain.places,
            )
            transfer_cls = (
                VectorFlowTransfer
                if self.config.engine == "vector"
                else IndexedFlowTransfer
            )
            transfer = transfer_cls(
                body=self.body,
                config=self.config,
                oracle=oracle,
                control_deps=control_deps,
                signatures=self.signatures,
                provider=self.provider,
                domain=domain,
            )
            if self.config.engine == "vector":
                lattice = VecThetaLattice(domain)
                boundary_state = lambda body: _seed_arguments_indexed(
                    domain, seeds, VecDependencyContext(domain)
                )
            else:
                lattice = IndexedThetaLattice(domain)
                boundary_state = lambda body: _seed_arguments_indexed(domain, seeds)
        engine = ForwardAnalysis(
            lattice=lattice,
            transfer=transfer,
            boundary_state=boundary_state,
        )
        fixpoint = engine.run(self.body)
        return FunctionFlowResult(
            body=self.body,
            config=self.config,
            oracle=oracle,
            transfer=transfer,
            fixpoint=fixpoint,
        )


def analyze_body(
    body: Body,
    signatures: Dict[str, FnSig],
    config: Optional[AnalysisConfig] = None,
    provider: Optional[CallSummaryProvider] = None,
) -> FunctionFlowResult:
    """Convenience wrapper: analyse one body and return the result."""
    return FunctionFlowAnalysis(body, signatures, config, provider).run()
