"""MiniRust: the Rust-subset surface language used by the reproduction.

The paper's analysis (Flowistry) consumes the Rust compiler's MIR together
with ownership information from type signatures.  Since we cannot depend on
rustc, this package implements the closest self-contained substitute: a small
ownership-based language with

* a lexer and recursive-descent parser (:mod:`repro.lang.lexer`,
  :mod:`repro.lang.parser`),
* an AST with reference types carrying mutability and lifetimes
  (:mod:`repro.lang.ast`, :mod:`repro.lang.types`),
* an ownership-aware type checker (:mod:`repro.lang.typeck`), and
* a reference interpreter used for empirical noninterference testing
  (:mod:`repro.lang.interp`).
"""

from repro.lang.ast import (
    Block,
    Crate,
    ExprKind,
    Expr,
    FieldDef,
    FnDecl,
    FnSig,
    Item,
    Param,
    Program,
    Stmt,
    StmtKind,
    StructDef,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_crate, parse_expr, parse_program
from repro.lang.typeck import TypeChecker, check_crate, check_program
from repro.lang.types import (
    BoolType,
    FnType,
    RefType,
    StructType,
    TupleType,
    Type,
    U32Type,
    UnitType,
    Mutability,
)
from repro.lang.interp import Interpreter, Value, evaluate_function

__all__ = [
    "Block",
    "BoolType",
    "Crate",
    "Expr",
    "ExprKind",
    "FieldDef",
    "FnDecl",
    "FnSig",
    "FnType",
    "Interpreter",
    "Item",
    "Lexer",
    "Mutability",
    "Param",
    "Parser",
    "Program",
    "RefType",
    "Stmt",
    "StmtKind",
    "StructDef",
    "StructType",
    "TupleType",
    "Type",
    "TypeChecker",
    "U32Type",
    "UnitType",
    "Value",
    "check_crate",
    "check_program",
    "evaluate_function",
    "parse_crate",
    "parse_expr",
    "parse_program",
    "tokenize",
]
