"""Type checking for MiniRust.

The checker performs the jobs the analysis needs from Oxide's type system:

* resolve struct types and field projections,
* assign a type to every expression (consumed by the MIR lowering),
* enforce the ownership-flavoured rules that matter for information flow:
  assignments require a mutable binding or a path through ``&mut``, borrows
  must borrow places, call arguments must match declared signatures,
* collect per-function signatures (:class:`repro.lang.ast.FnSig`), the only
  information the *modular* analysis is allowed to use about callees.

The full borrow checker (conflict detection between loans) is intentionally
out of scope: the paper's analysis consumes programs that already passed
rustc's borrow checker, and our corpus generator only produces
ownership-respecting programs.  What we do keep is everything needed to make
the analysis's modular reasoning meaningful — mutability qualifiers and
lifetime names on signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DiagnosticSink, Span, TypeCheckError
from repro.lang import ast
from repro.obs import stage as obs_stage
from repro.lang.types import (
    BOOL,
    BoolType,
    Mutability,
    RefType,
    StructRegistry,
    StructType,
    TupleType,
    Type,
    U32,
    U32Type,
    UNIT,
    UnitType,
    projection_type,
    types_compatible,
)


@dataclass
class LocalInfo:
    """Information about one local binding in scope."""

    name: str
    ty: Type
    mutable: bool
    span: Span


class _Scope:
    """A stack of lexical scopes mapping variable names to :class:`LocalInfo`."""

    def __init__(self) -> None:
        self._frames: List[Dict[str, LocalInfo]] = [{}]

    def push(self) -> None:
        self._frames.append({})

    def pop(self) -> None:
        self._frames.pop()

    def declare(self, info: LocalInfo) -> None:
        self._frames[-1][info.name] = info

    def lookup(self, name: str) -> Optional[LocalInfo]:
        for frame in reversed(self._frames):
            if name in frame:
                return frame[name]
        return None


@dataclass
class CheckedFunction:
    """A type-checked function: the declaration plus derived facts."""

    decl: ast.FnDecl
    signature: ast.FnSig
    locals: Dict[str, Type] = field(default_factory=dict)


@dataclass
class CheckedCrate:
    """A type-checked crate."""

    crate: ast.Crate
    functions: Dict[str, CheckedFunction] = field(default_factory=dict)


@dataclass
class CheckedProgram:
    """The result of checking a whole program.

    Downstream stages (MIR lowering, the information flow engine, the
    applications) consume this object rather than raw ASTs: it guarantees
    every expression has a type, every field access has a resolved index, and
    every called function has a known signature.
    """

    program: ast.Program
    registry: StructRegistry
    signatures: Dict[str, ast.FnSig]
    crates: Dict[str, CheckedCrate]
    fn_crates: Dict[str, str]
    diagnostics: DiagnosticSink

    def function(self, name: str) -> Optional[CheckedFunction]:
        for checked in self.crates.values():
            if name in checked.functions:
                return checked.functions[name]
        return None

    def local_functions(self) -> List[CheckedFunction]:
        """Functions with bodies defined in the local crate."""
        local = self.crates.get(self.program.local_crate)
        if local is None:
            return []
        return [f for f in local.functions.values() if f.decl.has_body]

    def functions_with_bodies(self) -> List[CheckedFunction]:
        out: List[CheckedFunction] = []
        for checked in self.crates.values():
            out.extend(f for f in checked.functions.values() if f.decl.has_body)
        return out

    def signature(self, name: str) -> Optional[ast.FnSig]:
        return self.signatures.get(name)


class TypeChecker:
    """Checks a :class:`repro.lang.ast.Program` and annotates it in place."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.registry = StructRegistry()
        self.signatures: Dict[str, ast.FnSig] = {}
        self.fn_crates: Dict[str, str] = {}
        self.diagnostics = DiagnosticSink()
        self._lifetime_counter = 0

    # -- public API ----------------------------------------------------------

    def check(self) -> CheckedProgram:
        """Check the whole program, raising :class:`TypeCheckError` on errors."""
        self._collect_structs()
        self._collect_signatures()
        crates: Dict[str, CheckedCrate] = {}
        for crate in self.program.crates:
            checked = CheckedCrate(crate=crate)
            for fn in crate.functions():
                checked.functions[fn.name] = self._check_function(fn)
            crates[crate.name] = checked
        self.diagnostics.raise_if_errors(TypeCheckError)
        return CheckedProgram(
            program=self.program,
            registry=self.registry,
            signatures=self.signatures,
            crates=crates,
            fn_crates=self.fn_crates,
            diagnostics=self.diagnostics,
        )

    # -- item collection -------------------------------------------------------

    def _collect_structs(self) -> None:
        # First pass: register names so fields can refer to other structs.
        for struct in self.program.all_structs():
            self.registry.define(StructType(name=struct.name, fields=(), opaque=struct.opaque))
        # Second pass: resolve field types.
        for struct in self.program.all_structs():
            fields: List[Tuple[str, Type]] = []
            for fld in struct.fields:
                fields.append((fld.name, self._resolve_type(fld.ty, fld.span)))
            self.registry.define(
                StructType(name=struct.name, fields=tuple(fields), opaque=struct.opaque)
            )
        # Third pass: now that every struct is complete, re-resolve fields so
        # nested struct types carry their full field lists.
        for struct in self.program.all_structs():
            current = self.registry.lookup(struct.name)
            if current is None:
                continue
            fields = [(name, self.registry.resolve(ty)) for name, ty in current.fields]
            self.registry.define(
                StructType(name=struct.name, fields=tuple(fields), opaque=struct.opaque)
            )

    def _collect_signatures(self) -> None:
        for crate in self.program.crates:
            for fn in crate.functions():
                if fn.name in self.signatures:
                    self.diagnostics.error(
                        f"duplicate function definition {fn.name!r}", fn.span
                    )
                    continue
                for param in fn.params:
                    param.ty = self._resolve_type(param.ty, param.span)
                fn.ret_type = self._resolve_type(fn.ret_type, fn.span)
                signature = self._elaborate_signature(fn)
                self.signatures[fn.name] = signature
                self.fn_crates[fn.name] = crate.name

    def _elaborate_signature(self, fn: ast.FnDecl) -> ast.FnSig:
        """Apply lifetime elision so every reference in the signature is named.

        Elision mirrors Rust's rules in spirit: un-annotated input references
        each get a fresh lifetime; un-annotated output references share the
        single input lifetime when there is exactly one, and otherwise get a
        distinct name that the signature summary treats as tied to *all*
        inputs (the conservative choice required for soundness).
        """
        lifetime_params = list(fn.lifetime_params)

        def fresh(prefix: str) -> str:
            self._lifetime_counter += 1
            name = f"{prefix}{self._lifetime_counter}"
            lifetime_params.append(name)
            return name

        def name_refs(ty: Type, prefix: str) -> Type:
            if isinstance(ty, RefType):
                lifetime = ty.lifetime if ty.lifetime is not None else fresh(prefix)
                return RefType(name_refs(ty.pointee, prefix), ty.mutability, lifetime)
            if isinstance(ty, TupleType):
                return TupleType(tuple(name_refs(t, prefix) for t in ty.elements))
            return ty

        param_types = tuple(name_refs(p.ty, "in") for p in fn.params)
        input_lifetimes: List[str] = []
        for ty in param_types:
            input_lifetimes.extend(ty.lifetimes())

        if len(set(input_lifetimes)) == 1:

            def elide_output(ty: Type) -> Type:
                if isinstance(ty, RefType):
                    lifetime = ty.lifetime if ty.lifetime is not None else input_lifetimes[0]
                    return RefType(elide_output(ty.pointee), ty.mutability, lifetime)
                if isinstance(ty, TupleType):
                    return TupleType(tuple(elide_output(t) for t in ty.elements))
                return ty

            ret_type = elide_output(fn.ret_type)
        else:
            ret_type = name_refs(fn.ret_type, "out")

        return ast.FnSig(
            name=fn.name,
            param_names=tuple(p.name for p in fn.params),
            param_types=param_types,
            ret_type=ret_type,
            lifetime_params=tuple(dict.fromkeys(lifetime_params)),
        )

    def _resolve_type(self, ty: Type, span: Span) -> Type:
        resolved = self.registry.resolve(ty)
        if isinstance(resolved, StructType) and self.registry.lookup(resolved.name) is None:
            self.diagnostics.error(f"unknown type {resolved.name!r}", span)
        return resolved

    # -- function bodies ---------------------------------------------------------

    def _check_function(self, fn: ast.FnDecl) -> CheckedFunction:
        signature = self.signatures[fn.name]
        checked = CheckedFunction(decl=fn, signature=signature)
        if fn.body is None:
            return checked

        scope = _Scope()
        for param in fn.params:
            # Parameters are immutable bindings; mutation happens through
            # `&mut` references, matching idiomatic Rust and the corpus.
            scope.declare(LocalInfo(param.name, param.ty, mutable=False, span=param.span))
            checked.locals[param.name] = param.ty

        body_ty = self._check_block(fn.body, scope, fn, checked)
        if not isinstance(fn.ret_type, UnitType) and fn.body.tail is not None:
            if not types_compatible(fn.ret_type, body_ty):
                self.diagnostics.error(
                    f"function {fn.name!r} returns {body_ty.pretty()} "
                    f"but is declared to return {fn.ret_type.pretty()}",
                    fn.span,
                )
        return checked

    def _check_block(
        self, block: ast.Block, scope: _Scope, fn: ast.FnDecl, checked: CheckedFunction
    ) -> Type:
        scope.push()
        try:
            for stmt in block.stmts:
                self._check_stmt(stmt, scope, fn, checked)
            if block.tail is not None:
                return self._check_expr(block.tail, scope, fn, checked)
            return UNIT
        finally:
            scope.pop()

    def _check_stmt(
        self, stmt: ast.Stmt, scope: _Scope, fn: ast.FnDecl, checked: CheckedFunction
    ) -> None:
        if isinstance(stmt, ast.LetStmt):
            init_ty = (
                self._check_expr(stmt.init, scope, fn, checked) if stmt.init is not None else UNIT
            )
            declared = stmt.declared_ty
            if declared is not None:
                declared = self._resolve_type(declared, stmt.span)
                stmt.declared_ty = declared
                if stmt.init is not None and not types_compatible(declared, init_ty):
                    self.diagnostics.error(
                        f"cannot initialise {stmt.name!r}: expected {declared.pretty()}, "
                        f"found {init_ty.pretty()}",
                        stmt.span,
                    )
                binding_ty = declared
            else:
                binding_ty = init_ty
            scope.declare(LocalInfo(stmt.name, binding_ty, stmt.mutable, stmt.span))
            checked.locals[stmt.name] = binding_ty
        elif isinstance(stmt, ast.AssignStmt):
            value_ty = self._check_expr(stmt.value, scope, fn, checked)
            target_ty = self._check_expr(stmt.target, scope, fn, checked)
            if not stmt.target.is_place():
                self.diagnostics.error("left-hand side of assignment is not a place", stmt.span)
            else:
                self._check_assignable(stmt.target, scope, stmt.span)
            if not types_compatible(target_ty, value_ty):
                self.diagnostics.error(
                    f"mismatched types in assignment: expected {target_ty.pretty()}, "
                    f"found {value_ty.pretty()}",
                    stmt.span,
                )
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope, fn, checked)
        elif isinstance(stmt, ast.WhileStmt):
            cond_ty = self._check_expr(stmt.cond, scope, fn, checked)
            if not isinstance(cond_ty, BoolType):
                self.diagnostics.error(
                    f"while condition must be bool, found {cond_ty.pretty()}", stmt.span
                )
            self._check_block(stmt.body, scope, fn, checked)
        elif isinstance(stmt, ast.ReturnStmt):
            value_ty = (
                self._check_expr(stmt.value, scope, fn, checked)
                if stmt.value is not None
                else UNIT
            )
            if not types_compatible(fn.ret_type, value_ty):
                self.diagnostics.error(
                    f"return type mismatch in {fn.name!r}: expected {fn.ret_type.pretty()}, "
                    f"found {value_ty.pretty()}",
                    stmt.span,
                )
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            pass
        else:  # pragma: no cover - defensive
            self.diagnostics.error(f"unsupported statement {type(stmt).__name__}", stmt.span)

    # -- mutability of assignment targets -----------------------------------------

    def _check_assignable(self, target: ast.Expr, scope: _Scope, span: Span) -> None:
        """Enforce that a place can be written: either its root binding is
        ``mut`` or the write goes through a ``&mut`` dereference."""
        expr = target
        while True:
            if isinstance(expr, ast.Deref):
                base_ty = expr.base.ty
                if isinstance(base_ty, RefType) and base_ty.mutability is not Mutability.MUT:
                    self.diagnostics.error(
                        "cannot assign through a shared reference", span
                    )
                return
            if isinstance(expr, ast.FieldAccess):
                base_ty = expr.base.ty
                if isinstance(base_ty, RefType):
                    # Auto-deref through a reference: the reference must be unique.
                    if base_ty.mutability is not Mutability.MUT:
                        self.diagnostics.error(
                            "cannot assign to a field behind a shared reference", span
                        )
                    return
                expr = expr.base
                continue
            if isinstance(expr, ast.Var):
                info = scope.lookup(expr.name)
                if info is not None and not info.mutable:
                    self.diagnostics.error(
                        f"cannot assign to immutable binding {expr.name!r}", span
                    )
                return
            return

    # -- expressions -------------------------------------------------------------

    def _check_expr(
        self, expr: ast.Expr, scope: _Scope, fn: ast.FnDecl, checked: CheckedFunction
    ) -> Type:
        ty = self._infer_expr(expr, scope, fn, checked)
        expr.ty = ty
        return ty

    def _infer_expr(
        self, expr: ast.Expr, scope: _Scope, fn: ast.FnDecl, checked: CheckedFunction
    ) -> Type:
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return UNIT
            if isinstance(expr.value, bool):
                return BOOL
            return U32

        if isinstance(expr, ast.Var):
            info = scope.lookup(expr.name)
            if info is None:
                self.diagnostics.error(f"unknown variable {expr.name!r}", expr.span)
                return UNIT
            return info.ty

        if isinstance(expr, ast.FieldAccess):
            base_ty = self._check_expr(expr.base, scope, fn, checked)
            # Auto-deref through references, as Rust does for field access.
            while isinstance(base_ty, RefType):
                base_ty = base_ty.pointee
            return self._field_type(expr, base_ty)

        if isinstance(expr, ast.Deref):
            base_ty = self._check_expr(expr.base, scope, fn, checked)
            if isinstance(base_ty, RefType):
                return base_ty.pointee
            self.diagnostics.error(
                f"cannot dereference non-reference type {base_ty.pretty()}", expr.span
            )
            return UNIT

        if isinstance(expr, ast.Unary):
            operand_ty = self._check_expr(expr.operand, scope, fn, checked)
            if expr.op is ast.UnOp.NOT:
                if not isinstance(operand_ty, BoolType):
                    self.diagnostics.error(
                        f"'!' expects bool, found {operand_ty.pretty()}", expr.span
                    )
                return BOOL
            if not isinstance(operand_ty, U32Type):
                self.diagnostics.error(
                    f"unary '-' expects u32, found {operand_ty.pretty()}", expr.span
                )
            return U32

        if isinstance(expr, ast.Binary):
            lhs_ty = self._check_expr(expr.lhs, scope, fn, checked)
            rhs_ty = self._check_expr(expr.rhs, scope, fn, checked)
            if expr.op.is_logical():
                for side, ty in (("left", lhs_ty), ("right", rhs_ty)):
                    if not isinstance(ty, BoolType):
                        self.diagnostics.error(
                            f"{side} operand of {expr.op.value!r} must be bool, "
                            f"found {ty.pretty()}",
                            expr.span,
                        )
                return BOOL
            if expr.op.is_comparison():
                if not types_compatible(lhs_ty, rhs_ty) and not types_compatible(rhs_ty, lhs_ty):
                    self.diagnostics.error(
                        f"cannot compare {lhs_ty.pretty()} with {rhs_ty.pretty()}", expr.span
                    )
                return BOOL
            # Arithmetic.
            for side, ty in (("left", lhs_ty), ("right", rhs_ty)):
                if not isinstance(ty, U32Type):
                    self.diagnostics.error(
                        f"{side} operand of {expr.op.value!r} must be u32, found {ty.pretty()}",
                        expr.span,
                    )
            return U32

        if isinstance(expr, ast.Borrow):
            place_ty = self._check_expr(expr.place, scope, fn, checked)
            if not expr.place.is_place():
                self.diagnostics.error("can only borrow places", expr.span)
            mutability = Mutability.MUT if expr.mutable else Mutability.SHARED
            return RefType(place_ty, mutability, None)

        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope, fn, checked)

        if isinstance(expr, ast.TupleExpr):
            element_types = tuple(
                self._check_expr(element, scope, fn, checked) for element in expr.elements
            )
            return TupleType(element_types)

        if isinstance(expr, ast.StructLit):
            return self._check_struct_lit(expr, scope, fn, checked)

        if isinstance(expr, ast.If):
            cond_ty = self._check_expr(expr.cond, scope, fn, checked)
            if not isinstance(cond_ty, BoolType):
                self.diagnostics.error(
                    f"if condition must be bool, found {cond_ty.pretty()}", expr.span
                )
            then_ty = self._check_block(expr.then_block, scope, fn, checked)
            if expr.else_block is None:
                return UNIT
            else_ty = self._check_block(expr.else_block, scope, fn, checked)
            if types_compatible(then_ty, else_ty):
                return then_ty
            if types_compatible(else_ty, then_ty):
                return else_ty
            self.diagnostics.error(
                f"if and else branches have incompatible types: {then_ty.pretty()} "
                f"vs {else_ty.pretty()}",
                expr.span,
            )
            return then_ty

        if isinstance(expr, ast.BlockExpr):
            return self._check_block(expr.block, scope, fn, checked)

        self.diagnostics.error(f"unsupported expression {type(expr).__name__}", expr.span)
        return UNIT

    def _field_type(self, expr: ast.FieldAccess, base_ty: Type) -> Type:
        if isinstance(base_ty, TupleType):
            if not isinstance(expr.fld, int):
                self.diagnostics.error(
                    f"tuple fields are accessed by index, found .{expr.fld}", expr.span
                )
                return UNIT
            field_ty = projection_type(base_ty, expr.fld)
            if field_ty is None:
                self.diagnostics.error(
                    f"tuple of length {len(base_ty.elements)} has no field {expr.fld}", expr.span
                )
                return UNIT
            expr.field_index = expr.fld
            return field_ty
        if isinstance(base_ty, StructType):
            resolved = self.registry.lookup(base_ty.name) or base_ty
            if isinstance(expr.fld, int):
                field_ty = projection_type(resolved, expr.fld)
                if field_ty is None:
                    self.diagnostics.error(
                        f"struct {resolved.name!r} has no field index {expr.fld}", expr.span
                    )
                    return UNIT
                expr.field_index = expr.fld
                return field_ty
            index = resolved.field_index(expr.fld)
            if index is None:
                self.diagnostics.error(
                    f"struct {resolved.name!r} has no field {expr.fld!r}", expr.span
                )
                return UNIT
            expr.field_index = index
            return resolved.fields[index][1]
        self.diagnostics.error(
            f"type {base_ty.pretty()} has no fields", expr.span
        )
        return UNIT

    def _check_call(
        self, expr: ast.Call, scope: _Scope, fn: ast.FnDecl, checked: CheckedFunction
    ) -> Type:
        arg_types = [self._check_expr(arg, scope, fn, checked) for arg in expr.args]
        signature = self.signatures.get(expr.func)
        if signature is None:
            self.diagnostics.error(f"call to unknown function {expr.func!r}", expr.span)
            return UNIT
        if len(arg_types) != signature.arity():
            self.diagnostics.error(
                f"{expr.func!r} expects {signature.arity()} arguments, got {len(arg_types)}",
                expr.span,
            )
        for index, (expected, actual) in enumerate(zip(signature.param_types, arg_types)):
            if not types_compatible(expected, actual):
                self.diagnostics.error(
                    f"argument {index} of {expr.func!r}: expected {expected.pretty()}, "
                    f"found {actual.pretty()}",
                    expr.args[index].span if index < len(expr.args) else expr.span,
                )
        return self.registry.resolve(signature.ret_type)

    def _check_struct_lit(
        self, expr: ast.StructLit, scope: _Scope, fn: ast.FnDecl, checked: CheckedFunction
    ) -> Type:
        struct = self.registry.lookup(expr.struct_name)
        if struct is None:
            self.diagnostics.error(f"unknown struct {expr.struct_name!r}", expr.span)
            for _, value in expr.fields:
                self._check_expr(value, scope, fn, checked)
            return UNIT
        provided = {name for name, _ in expr.fields}
        expected = set(struct.field_names())
        for missing in sorted(expected - provided):
            self.diagnostics.error(
                f"missing field {missing!r} in literal of {struct.name!r}", expr.span
            )
        for extra in sorted(provided - expected):
            self.diagnostics.error(
                f"struct {struct.name!r} has no field {extra!r}", expr.span
            )
        for name, value in expr.fields:
            value_ty = self._check_expr(value, scope, fn, checked)
            declared = struct.field_type(name)
            if declared is not None and not types_compatible(declared, value_ty):
                self.diagnostics.error(
                    f"field {name!r} of {struct.name!r}: expected {declared.pretty()}, "
                    f"found {value_ty.pretty()}",
                    value.span,
                )
        return struct


def check_program(program: ast.Program) -> CheckedProgram:
    """Type check ``program`` and return the checked form."""
    with obs_stage("typecheck") as sp:
        checked = TypeChecker(program).check()
        if sp is not None:
            sp.set(functions=len(checked.signatures))
        return checked


def check_crate(crate: ast.Crate) -> CheckedProgram:
    """Type check a single crate as a stand-alone program."""
    program = ast.Program(crates=[crate], local_crate=crate.name)
    return check_program(program)
