"""A hand-written lexer for MiniRust.

The lexer is a straightforward single-pass scanner: it tracks line/column
positions for spans, skips ``//`` line comments, and distinguishes lifetimes
(``'a``) from other tokens.  Keeping it hand-written (rather than using a
regex table) makes error positions exact and the token stream easy to extend.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError, Span
from repro.lang.tokens import KEYWORDS, Token, TokenKind


class Lexer:
    """Converts MiniRust source text into a list of :class:`Token`."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: List[Token] = []

    # -- low-level cursor helpers ------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return "\0"

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    def _span_from(self, start_line: int, start_col: int) -> Span:
        return Span(start_line, start_col, self.line, self.col)

    def _emit(self, kind: TokenKind, text: str, span: Span, value=None) -> None:
        self.tokens.append(Token(kind, text, span, value))

    # -- scanning ----------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Scan the whole input and return the token list (ending in EOF)."""
        while not self._at_end():
            self._skip_trivia()
            if self._at_end():
                break
            start_line, start_col = self.line, self.col
            ch = self._peek()
            if ch.isdigit():
                self._lex_number(start_line, start_col)
            elif ch.isalpha() or ch == "_":
                self._lex_ident(start_line, start_col)
            elif ch == "'":
                self._lex_lifetime(start_line, start_col)
            else:
                self._lex_punct(start_line, start_col)
        self._emit(TokenKind.EOF, "", Span.point(self.line, self.col))
        return self.tokens

    def _skip_trivia(self) -> None:
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self, start_line: int, start_col: int) -> None:
        text = ""
        while not self._at_end() and (self._peek().isdigit() or self._peek() == "_"):
            text += self._advance()
        digits = text.replace("_", "")
        span = self._span_from(start_line, start_col)
        if not digits:
            raise LexError(f"malformed number literal {text!r}", span)
        self._emit(TokenKind.INT, text, span, int(digits))

    def _lex_ident(self, start_line: int, start_col: int) -> None:
        text = ""
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            text += self._advance()
        span = self._span_from(start_line, start_col)
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        self._emit(kind, text, span, text)

    def _lex_lifetime(self, start_line: int, start_col: int) -> None:
        self._advance()  # consume the quote
        name = ""
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            name += self._advance()
        span = self._span_from(start_line, start_col)
        if not name:
            raise LexError("expected lifetime name after \"'\"", span)
        self._emit(TokenKind.LIFETIME, "'" + name, span, name)

    _SINGLE = {
        "(": TokenKind.LPAREN,
        ")": TokenKind.RPAREN,
        "{": TokenKind.LBRACE,
        "}": TokenKind.RBRACE,
        ",": TokenKind.COMMA,
        ";": TokenKind.SEMI,
        ":": TokenKind.COLON,
        ".": TokenKind.DOT,
        "*": TokenKind.STAR,
        "+": TokenKind.PLUS,
        "/": TokenKind.SLASH,
        "%": TokenKind.PERCENT,
    }

    def _lex_punct(self, start_line: int, start_col: int) -> None:
        ch = self._advance()
        two = ch + self._peek()
        span_one = self._span_from(start_line, start_col)

        if two == "->":
            self._advance()
            self._emit(TokenKind.ARROW, two, self._span_from(start_line, start_col))
        elif two == "==":
            self._advance()
            self._emit(TokenKind.EQEQ, two, self._span_from(start_line, start_col))
        elif two == "!=":
            self._advance()
            self._emit(TokenKind.NE, two, self._span_from(start_line, start_col))
        elif two == "<=":
            self._advance()
            self._emit(TokenKind.LE, two, self._span_from(start_line, start_col))
        elif two == ">=":
            self._advance()
            self._emit(TokenKind.GE, two, self._span_from(start_line, start_col))
        elif two == "&&":
            self._advance()
            self._emit(TokenKind.ANDAND, two, self._span_from(start_line, start_col))
        elif two == "||":
            self._advance()
            self._emit(TokenKind.OROR, two, self._span_from(start_line, start_col))
        elif ch == "&":
            self._emit(TokenKind.AMP, ch, span_one)
        elif ch == "-":
            self._emit(TokenKind.MINUS, ch, span_one)
        elif ch == "!":
            self._emit(TokenKind.BANG, ch, span_one)
        elif ch == "<":
            self._emit(TokenKind.LT, ch, span_one)
        elif ch == ">":
            self._emit(TokenKind.GT, ch, span_one)
        elif ch == "=":
            self._emit(TokenKind.EQ, ch, span_one)
        elif ch in self._SINGLE:
            self._emit(self._SINGLE[ch], ch, span_one)
        else:
            raise LexError(f"unexpected character {ch!r}", span_one)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` and return the token list (ending in EOF)."""
    return Lexer(source).tokenize()
