"""Token definitions for the MiniRust lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional, Union

from repro.errors import Span


class TokenKind(Enum):
    """All token kinds produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals and identifiers
    INT = auto()
    IDENT = auto()
    LIFETIME = auto()  # 'a, 'buf, ...

    # Keywords
    KW_FN = auto()
    KW_EXTERN = auto()
    KW_STRUCT = auto()
    KW_LET = auto()
    KW_MUT = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_WHILE = auto()
    KW_RETURN = auto()
    KW_TRUE = auto()
    KW_FALSE = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()
    KW_U32 = auto()
    KW_BOOL = auto()
    KW_CRATE = auto()

    # Punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    COMMA = auto()
    SEMI = auto()
    COLON = auto()
    ARROW = auto()  # ->
    DOT = auto()
    AMP = auto()  # &
    STAR = auto()  # *
    PLUS = auto()
    MINUS = auto()
    SLASH = auto()
    PERCENT = auto()
    BANG = auto()
    LT = auto()
    GT = auto()
    LE = auto()
    GE = auto()
    EQ = auto()  # =
    EQEQ = auto()  # ==
    NE = auto()  # !=
    ANDAND = auto()  # &&
    OROR = auto()  # ||

    EOF = auto()


KEYWORDS = {
    "fn": TokenKind.KW_FN,
    "extern": TokenKind.KW_EXTERN,
    "struct": TokenKind.KW_STRUCT,
    "let": TokenKind.KW_LET,
    "mut": TokenKind.KW_MUT,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "return": TokenKind.KW_RETURN,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "u32": TokenKind.KW_U32,
    "bool": TokenKind.KW_BOOL,
    "crate": TokenKind.KW_CRATE,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token: its kind, raw text, decoded value, and span."""

    kind: TokenKind
    text: str
    span: Span
    value: Optional[Union[int, str]] = None

    def is_kind(self, kind: TokenKind) -> bool:
        return self.kind is kind

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.kind.name}({self.text!r})"
