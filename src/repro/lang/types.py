"""Type representations for MiniRust.

Types mirror the fragment of Oxide/Rust that the paper's analysis relies on:

* base types (``unit``, ``u32``, ``bool``),
* tuples,
* nominal structs,
* references with a *mutability qualifier* (Oxide's ownership qualifier
  ``shrd``/``uniq``) and a *lifetime* (Oxide's provenance).

The modular analysis of Section 2.3 needs exactly two pieces of information
from a type: which data reachable from a value is mutable
(:func:`transitive_refs` with ``Mutability.MUT``), and which lifetimes tie a
function's outputs to its inputs (:meth:`Type.lifetimes`).  Both are provided
here so the information-flow core never has to look at a function body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class Mutability(Enum):
    """Ownership qualifier on references: shared (``&``) or unique (``&mut``)."""

    SHARED = "shrd"
    MUT = "uniq"

    def allows(self, other: "Mutability") -> bool:
        """Whether a loan at ``self`` can be used where ``other`` is required.

        Mirrors Oxide's ``uniq <= shrd``: a unique loan can stand in for a
        shared one but not vice versa.
        """
        if self is Mutability.MUT:
            return True
        return other is Mutability.SHARED

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "mut" if self is Mutability.MUT else "shared"


class Type:
    """Base class for MiniRust types.

    Subclasses are immutable value objects; equality is structural and
    *erases lifetimes* (two reference types with different lifetime names but
    the same pointee and mutability are equal).  Lifetime relationships are
    tracked separately by the signature summaries in
    :mod:`repro.core.summaries`.
    """

    def is_copy(self) -> bool:
        """Whether values of this type are implicitly copyable (Rust ``Copy``)."""
        raise NotImplementedError

    def lifetimes(self) -> List[str]:
        """All lifetime names syntactically mentioned in this type, outermost first."""
        return []

    def contains_ref(self, mutability: Optional[Mutability] = None) -> bool:
        """Whether this type transitively contains a reference.

        If ``mutability`` is given, only references with that exact qualifier
        count.
        """
        return False

    def walk(self) -> Iterator["Type"]:
        """Yield this type and all component types, preorder."""
        yield self

    def pretty(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.pretty()


@dataclass(frozen=True)
class UnitType(Type):
    """The unit type ``()``."""

    def is_copy(self) -> bool:
        return True

    def pretty(self) -> str:
        return "()"


@dataclass(frozen=True)
class U32Type(Type):
    """32-bit unsigned integers (the paper's only numeric type)."""

    def is_copy(self) -> bool:
        return True

    def pretty(self) -> str:
        return "u32"


@dataclass(frozen=True)
class BoolType(Type):
    """Booleans."""

    def is_copy(self) -> bool:
        return True

    def pretty(self) -> str:
        return "bool"


@dataclass(frozen=True)
class TupleType(Type):
    """Heterogeneous product types ``(T0, T1, ...)``."""

    elements: Tuple[Type, ...]

    def is_copy(self) -> bool:
        return all(t.is_copy() for t in self.elements)

    def lifetimes(self) -> List[str]:
        out: List[str] = []
        for element in self.elements:
            out.extend(element.lifetimes())
        return out

    def contains_ref(self, mutability: Optional[Mutability] = None) -> bool:
        return any(t.contains_ref(mutability) for t in self.elements)

    def walk(self) -> Iterator[Type]:
        yield self
        for element in self.elements:
            yield from element.walk()

    def pretty(self) -> str:
        if len(self.elements) == 1:
            return f"({self.elements[0].pretty()},)"
        return "(" + ", ".join(t.pretty() for t in self.elements) + ")"


@dataclass(frozen=True)
class RefType(Type):
    """A reference ``&'a T`` or ``&'a mut T``.

    ``lifetime`` is ``None`` when the program omitted it; lifetime elision is
    applied by the type checker when summarising signatures.
    """

    pointee: Type
    mutability: Mutability = Mutability.SHARED
    lifetime: Optional[str] = None

    def is_copy(self) -> bool:
        # Shared references are Copy, unique references are not (as in Rust).
        return self.mutability is Mutability.SHARED

    def lifetimes(self) -> List[str]:
        own = [self.lifetime] if self.lifetime is not None else []
        return own + self.pointee.lifetimes()

    def contains_ref(self, mutability: Optional[Mutability] = None) -> bool:
        if mutability is None or mutability is self.mutability:
            return True
        return self.pointee.contains_ref(mutability)

    def walk(self) -> Iterator[Type]:
        yield self
        yield from self.pointee.walk()

    def pretty(self) -> str:
        lt = f"'{self.lifetime} " if self.lifetime else ""
        m = "mut " if self.mutability is Mutability.MUT else ""
        return f"&{lt}{m}{self.pointee.pretty()}"

    # Structural equality must ignore lifetimes: `&'a u32 == &'b u32`.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RefType):
            return NotImplemented
        return self.pointee == other.pointee and self.mutability == other.mutability

    def __hash__(self) -> int:
        return hash(("RefType", self.pointee, self.mutability))


@dataclass(frozen=True)
class StructType(Type):
    """A nominal struct type.

    ``fields`` is the ordered mapping of field name to type, captured at
    definition time.  Opaque structs (declared with no fields, used to model
    foreign types such as ``Vec`` or ``HashMap`` from other crates) have an
    empty field tuple and ``opaque=True``.
    """

    name: str
    fields: Tuple[Tuple[str, Type], ...] = ()
    opaque: bool = False

    def field_names(self) -> List[str]:
        return [name for name, _ in self.fields]

    def field_type(self, name: str) -> Optional[Type]:
        for field_name, field_ty in self.fields:
            if field_name == name:
                return field_ty
        return None

    def field_index(self, name: str) -> Optional[int]:
        for index, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return index
        return None

    def is_copy(self) -> bool:
        if self.opaque:
            return False
        return all(t.is_copy() for _, t in self.fields)

    def lifetimes(self) -> List[str]:
        out: List[str] = []
        for _, t in self.fields:
            out.extend(t.lifetimes())
        return out

    def contains_ref(self, mutability: Optional[Mutability] = None) -> bool:
        return any(t.contains_ref(mutability) for _, t in self.fields)

    def walk(self) -> Iterator[Type]:
        yield self
        for _, t in self.fields:
            yield from t.walk()

    def pretty(self) -> str:
        return self.name

    # Nominal equality: two struct types are the same type iff names match.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructType):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(("StructType", self.name))


@dataclass(frozen=True)
class FnType(Type):
    """The type of a function value (used for typing call expressions only)."""

    params: Tuple[Type, ...]
    ret: Type

    def is_copy(self) -> bool:
        return True

    def pretty(self) -> str:
        params = ", ".join(t.pretty() for t in self.params)
        return f"fn({params}) -> {self.ret.pretty()}"


# Singleton instances for the common base types.  Using module-level constants
# keeps type construction cheap and equality checks obvious at call sites.
UNIT = UnitType()
U32 = U32Type()
BOOL = BoolType()


def ref(pointee: Type, mutable: bool = False, lifetime: Optional[str] = None) -> RefType:
    """Convenience constructor for reference types."""
    mutability = Mutability.MUT if mutable else Mutability.SHARED
    return RefType(pointee, mutability, lifetime)


def tuple_of(*elements: Type) -> TupleType:
    """Convenience constructor for tuple types."""
    return TupleType(tuple(elements))


def is_base(ty: Type) -> bool:
    """True for Oxide's base types (unit, u32, bool)."""
    return isinstance(ty, (UnitType, U32Type, BoolType))


def peel_refs(ty: Type) -> Type:
    """Strip any number of outer reference layers, returning the pointee."""
    while isinstance(ty, RefType):
        ty = ty.pointee
    return ty


def ref_depth(ty: Type) -> int:
    """Number of outer reference layers on ``ty``."""
    depth = 0
    while isinstance(ty, RefType):
        depth += 1
        ty = ty.pointee
    return depth


def types_compatible(expected: Type, actual: Type) -> bool:
    """Structural compatibility used by the type checker.

    Lifetimes are erased (see :class:`RefType` equality) and a unique
    reference may be used where a shared reference of the same pointee is
    expected, mirroring Rust's ``&mut T -> &T`` coercion.
    """
    if expected == actual:
        return True
    if isinstance(expected, RefType) and isinstance(actual, RefType):
        if actual.mutability.allows(expected.mutability):
            return types_compatible(expected.pointee, actual.pointee)
    if isinstance(expected, TupleType) and isinstance(actual, TupleType):
        if len(expected.elements) != len(actual.elements):
            return False
        return all(
            types_compatible(e, a) for e, a in zip(expected.elements, actual.elements)
        )
    return False


@dataclass
class StructRegistry:
    """A table of struct definitions visible to a crate.

    The registry owns the canonical :class:`StructType` for each struct name;
    the parser initially produces "unresolved" struct types containing only a
    name, and the type checker replaces them with registry entries so field
    lookups work everywhere downstream.
    """

    structs: Dict[str, StructType] = field(default_factory=dict)

    def define(self, struct: StructType) -> None:
        self.structs[struct.name] = struct

    def lookup(self, name: str) -> Optional[StructType]:
        return self.structs.get(name)

    def resolve(self, ty: Type) -> Type:
        """Replace name-only struct types inside ``ty`` with full definitions."""
        if isinstance(ty, StructType):
            known = self.lookup(ty.name)
            return known if known is not None else ty
        if isinstance(ty, RefType):
            return RefType(self.resolve(ty.pointee), ty.mutability, ty.lifetime)
        if isinstance(ty, TupleType):
            return TupleType(tuple(self.resolve(t) for t in ty.elements))
        if isinstance(ty, FnType):
            return FnType(tuple(self.resolve(t) for t in ty.params), self.resolve(ty.ret))
        return ty

    def names(self) -> List[str]:
        return sorted(self.structs)


def projection_type(ty: Type, index: int) -> Optional[Type]:
    """Type of the ``index``-th field of a tuple or struct type, if any."""
    if isinstance(ty, TupleType):
        if 0 <= index < len(ty.elements):
            return ty.elements[index]
        return None
    if isinstance(ty, StructType):
        if 0 <= index < len(ty.fields):
            return ty.fields[index][1]
        return None
    return None


def num_fields(ty: Type) -> int:
    """Number of direct fields of a tuple/struct type (0 otherwise)."""
    if isinstance(ty, TupleType):
        return len(ty.elements)
    if isinstance(ty, StructType):
        return len(ty.fields)
    return 0
