"""A recursive-descent parser for MiniRust.

The grammar is a small subset of Rust's:

.. code-block:: text

    program   := (crate | item)*
    crate     := "crate" IDENT "{" item* "}"
    item      := struct_def | fn_decl
    struct_def:= "struct" IDENT ("{" field,* "}" | ";")
    fn_decl   := "extern"? "fn" IDENT generics? "(" param,* ")" ("->" type)? (block | ";")
    type      := "u32" | "bool" | "()" | "(" type,+ ")" | "&" lifetime? "mut"? type | IDENT
    stmt      := let | while | return | break | continue | assign | expr ";"?
    expr      := precedence-climbing over || && == != < <= > >= + - * / % ! unary- & * ...

Programs written without an explicit ``crate`` wrapper are placed in a single
crate named ``main``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import ParseError, Span
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.obs import stage as obs_stage
from repro.lang.tokens import Token, TokenKind
from repro.lang.types import (
    BOOL,
    Mutability,
    RefType,
    StructType,
    TupleType,
    Type,
    U32,
    UNIT,
)


class Parser:
    """Parses a token stream into MiniRust AST nodes."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token stream helpers ----------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _check(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str) -> Token:
        if self._check(kind):
            return self._advance()
        found = self._peek()
        raise ParseError(
            f"expected {what}, found {found.text!r}", found.span
        )

    def _at_end(self) -> bool:
        return self._check(TokenKind.EOF)

    # -- top level -----------------------------------------------------------

    def parse_program(self, local_crate: str = "main") -> ast.Program:
        """Parse a whole program (one or more crates)."""
        crates: List[ast.Crate] = []
        default_crate = ast.Crate(name="main")
        saw_explicit_crate = False
        while not self._at_end():
            if self._check(TokenKind.KW_CRATE):
                saw_explicit_crate = True
                crates.append(self._parse_crate_block())
            else:
                default_crate.add(self._parse_item(default_crate.name))
        if default_crate.items or not saw_explicit_crate:
            crates.insert(0, default_crate)
        chosen_local = local_crate
        if not any(c.name == chosen_local for c in crates) and crates:
            chosen_local = crates[0].name
        return ast.Program(crates=crates, local_crate=chosen_local)

    def parse_crate(self, name: str = "main") -> ast.Crate:
        """Parse a bare item list as a single crate."""
        crate = ast.Crate(name=name)
        while not self._at_end():
            crate.add(self._parse_item(name))
        return crate

    def _parse_crate_block(self) -> ast.Crate:
        self._expect(TokenKind.KW_CRATE, "'crate'")
        name_token = self._expect(TokenKind.IDENT, "crate name")
        crate = ast.Crate(name=str(name_token.value), span=name_token.span)
        self._expect(TokenKind.LBRACE, "'{'")
        while not self._check(TokenKind.RBRACE):
            crate.add(self._parse_item(crate.name))
        self._expect(TokenKind.RBRACE, "'}'")
        return crate

    def _parse_item(self, crate_name: str) -> ast.Item:
        if self._check(TokenKind.KW_STRUCT):
            return self._parse_struct()
        if self._check(TokenKind.KW_EXTERN) or self._check(TokenKind.KW_FN):
            return self._parse_fn(crate_name)
        found = self._peek()
        raise ParseError(f"expected item, found {found.text!r}", found.span)

    def _parse_struct(self) -> ast.StructDef:
        start = self._expect(TokenKind.KW_STRUCT, "'struct'")
        name = self._expect(TokenKind.IDENT, "struct name")
        if self._match(TokenKind.SEMI):
            return ast.StructDef(
                name=str(name.value), fields=[], opaque=True, span=start.span
            )
        self._expect(TokenKind.LBRACE, "'{'")
        fields: List[ast.FieldDef] = []
        while not self._check(TokenKind.RBRACE):
            field_name = self._expect(TokenKind.IDENT, "field name")
            self._expect(TokenKind.COLON, "':'")
            field_ty = self._parse_type()
            fields.append(
                ast.FieldDef(name=str(field_name.value), ty=field_ty, span=field_name.span)
            )
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RBRACE, "'}'")
        return ast.StructDef(name=str(name.value), fields=fields, span=start.span)

    def _parse_fn(self, crate_name: str) -> ast.FnDecl:
        is_extern = bool(self._match(TokenKind.KW_EXTERN))
        start = self._expect(TokenKind.KW_FN, "'fn'")
        name = self._expect(TokenKind.IDENT, "function name")

        lifetime_params: List[str] = []
        if self._match(TokenKind.LT):
            while not self._check(TokenKind.GT):
                lt = self._expect(TokenKind.LIFETIME, "lifetime parameter")
                lifetime_params.append(str(lt.value))
                if not self._match(TokenKind.COMMA):
                    break
            self._expect(TokenKind.GT, "'>'")

        self._expect(TokenKind.LPAREN, "'('")
        params: List[ast.Param] = []
        while not self._check(TokenKind.RPAREN):
            param_name = self._expect(TokenKind.IDENT, "parameter name")
            self._expect(TokenKind.COLON, "':'")
            param_ty = self._parse_type()
            params.append(
                ast.Param(name=str(param_name.value), ty=param_ty, span=param_name.span)
            )
            if not self._match(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN, "')'")

        ret_type: Type = UNIT
        if self._match(TokenKind.ARROW):
            ret_type = self._parse_type()

        body: Optional[ast.Block] = None
        if self._match(TokenKind.SEMI):
            is_extern = True
        else:
            body = self._parse_block()

        decl_span = start.span if body is None else start.span.merge(body.span)
        return ast.FnDecl(
            name=str(name.value),
            lifetime_params=lifetime_params,
            params=params,
            ret_type=ret_type,
            body=body,
            is_extern=is_extern,
            crate=crate_name,
            span=decl_span,
        )

    # -- types ---------------------------------------------------------------

    def _parse_type(self) -> Type:
        if self._match(TokenKind.KW_U32):
            return U32
        if self._match(TokenKind.KW_BOOL):
            return BOOL
        if self._check(TokenKind.AMP):
            self._advance()
            lifetime: Optional[str] = None
            if self._check(TokenKind.LIFETIME):
                lifetime = str(self._advance().value)
            mutable = bool(self._match(TokenKind.KW_MUT))
            pointee = self._parse_type()
            mutability = Mutability.MUT if mutable else Mutability.SHARED
            return RefType(pointee, mutability, lifetime)
        if self._check(TokenKind.LPAREN):
            self._advance()
            if self._match(TokenKind.RPAREN):
                return UNIT
            elements = [self._parse_type()]
            trailing_comma = False
            while self._match(TokenKind.COMMA):
                trailing_comma = True
                if self._check(TokenKind.RPAREN):
                    break
                elements.append(self._parse_type())
                trailing_comma = False
            self._expect(TokenKind.RPAREN, "')'")
            if len(elements) == 1 and not trailing_comma:
                # Parenthesised type, not a 1-tuple.
                return elements[0]
            return TupleType(tuple(elements))
        if self._check(TokenKind.IDENT):
            name = self._advance()
            return StructType(name=str(name.value))
        found = self._peek()
        raise ParseError(f"expected type, found {found.text!r}", found.span)

    # -- blocks and statements ------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE, "'{'")
        stmts: List[ast.Stmt] = []
        tail: Optional[ast.Expr] = None
        while not self._check(TokenKind.RBRACE):
            if self._check(TokenKind.KW_LET):
                stmts.append(self._parse_let())
            elif self._check(TokenKind.KW_WHILE):
                stmts.append(self._parse_while())
            elif self._check(TokenKind.KW_RETURN):
                stmts.append(self._parse_return())
            elif self._check(TokenKind.KW_BREAK):
                token = self._advance()
                self._expect(TokenKind.SEMI, "';'")
                stmts.append(ast.BreakStmt(span=token.span))
            elif self._check(TokenKind.KW_CONTINUE):
                token = self._advance()
                self._expect(TokenKind.SEMI, "';'")
                stmts.append(ast.ContinueStmt(span=token.span))
            elif self._check(TokenKind.KW_IF) or self._check(TokenKind.LBRACE):
                # Block-like expressions in statement position are never the
                # left operand of a binary operator (as in Rust): `if c { .. }
                # *r = 1;` is an if statement followed by an assignment.
                if self._check(TokenKind.KW_IF):
                    expr = self._parse_if()
                else:
                    inner = self._parse_block()
                    expr = ast.BlockExpr(block=inner, span=inner.span)
                if self._match(TokenKind.SEMI):
                    stmts.append(ast.ExprStmt(expr=expr, span=expr.span))
                elif self._check(TokenKind.RBRACE):
                    tail = expr
                else:
                    stmts.append(ast.ExprStmt(expr=expr, span=expr.span))
            else:
                expr = self._parse_expr()
                if self._check(TokenKind.EQ):
                    self._advance()
                    value = self._parse_expr()
                    semi = self._expect(TokenKind.SEMI, "';' after assignment")
                    stmts.append(
                        ast.AssignStmt(
                            target=expr, value=value, span=expr.span.merge(semi.span)
                        )
                    )
                elif self._match(TokenKind.SEMI):
                    stmts.append(ast.ExprStmt(expr=expr, span=expr.span))
                elif self._check(TokenKind.RBRACE):
                    tail = expr
                elif isinstance(expr, (ast.If, ast.BlockExpr)):
                    # Block-like expressions may appear as statements without
                    # a trailing semicolon, as in Rust.
                    stmts.append(ast.ExprStmt(expr=expr, span=expr.span))
                else:
                    found = self._peek()
                    raise ParseError(
                        f"expected ';' or '}}' after expression, found {found.text!r}",
                        found.span,
                    )
        end = self._expect(TokenKind.RBRACE, "'}'")
        return ast.Block(stmts=stmts, tail=tail, span=start.span.merge(end.span))

    def _parse_let(self) -> ast.LetStmt:
        start = self._expect(TokenKind.KW_LET, "'let'")
        mutable = bool(self._match(TokenKind.KW_MUT))
        name = self._expect(TokenKind.IDENT, "variable name")
        declared_ty: Optional[Type] = None
        if self._match(TokenKind.COLON):
            declared_ty = self._parse_type()
        self._expect(TokenKind.EQ, "'=' in let binding")
        init = self._parse_expr()
        semi = self._expect(TokenKind.SEMI, "';'")
        return ast.LetStmt(
            name=str(name.value),
            mutable=mutable,
            declared_ty=declared_ty,
            init=init,
            name_span=name.span,
            span=start.span.merge(semi.span),
        )

    def _parse_while(self) -> ast.WhileStmt:
        start = self._expect(TokenKind.KW_WHILE, "'while'")
        cond = self._parse_expr(allow_struct=False)
        body = self._parse_block()
        return ast.WhileStmt(cond=cond, body=body, span=start.span.merge(body.span))

    def _parse_return(self) -> ast.ReturnStmt:
        start = self._expect(TokenKind.KW_RETURN, "'return'")
        value: Optional[ast.Expr] = None
        if not self._check(TokenKind.SEMI):
            value = self._parse_expr()
        semi = self._expect(TokenKind.SEMI, "';'")
        return ast.ReturnStmt(value=value, span=start.span.merge(semi.span))

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self, allow_struct: bool = True) -> ast.Expr:
        return self._parse_or(allow_struct)

    def _parse_or(self, allow_struct: bool) -> ast.Expr:
        expr = self._parse_and(allow_struct)
        while self._check(TokenKind.OROR):
            self._advance()
            rhs = self._parse_and(allow_struct)
            expr = ast.Binary(
                op=ast.BinOp.OR, lhs=expr, rhs=rhs, span=expr.span.merge(rhs.span)
            )
        return expr

    def _parse_and(self, allow_struct: bool) -> ast.Expr:
        expr = self._parse_comparison(allow_struct)
        while self._check(TokenKind.ANDAND):
            self._advance()
            rhs = self._parse_comparison(allow_struct)
            expr = ast.Binary(
                op=ast.BinOp.AND, lhs=expr, rhs=rhs, span=expr.span.merge(rhs.span)
            )
        return expr

    _COMPARISON_OPS = {
        TokenKind.EQEQ: ast.BinOp.EQ,
        TokenKind.NE: ast.BinOp.NE,
        TokenKind.LT: ast.BinOp.LT,
        TokenKind.LE: ast.BinOp.LE,
        TokenKind.GT: ast.BinOp.GT,
        TokenKind.GE: ast.BinOp.GE,
    }

    def _parse_comparison(self, allow_struct: bool) -> ast.Expr:
        expr = self._parse_additive(allow_struct)
        while self._peek().kind in self._COMPARISON_OPS:
            op_token = self._advance()
            rhs = self._parse_additive(allow_struct)
            expr = ast.Binary(
                op=self._COMPARISON_OPS[op_token.kind],
                lhs=expr,
                rhs=rhs,
                span=expr.span.merge(rhs.span),
            )
        return expr

    def _parse_additive(self, allow_struct: bool) -> ast.Expr:
        expr = self._parse_multiplicative(allow_struct)
        while self._check(TokenKind.PLUS) or self._check(TokenKind.MINUS):
            op_token = self._advance()
            op = ast.BinOp.ADD if op_token.kind is TokenKind.PLUS else ast.BinOp.SUB
            rhs = self._parse_multiplicative(allow_struct)
            expr = ast.Binary(op=op, lhs=expr, rhs=rhs, span=expr.span.merge(rhs.span))
        return expr

    _MUL_OPS = {
        TokenKind.STAR: ast.BinOp.MUL,
        TokenKind.SLASH: ast.BinOp.DIV,
        TokenKind.PERCENT: ast.BinOp.REM,
    }

    def _parse_multiplicative(self, allow_struct: bool) -> ast.Expr:
        expr = self._parse_unary(allow_struct)
        while self._peek().kind in self._MUL_OPS:
            op_token = self._advance()
            rhs = self._parse_unary(allow_struct)
            expr = ast.Binary(
                op=self._MUL_OPS[op_token.kind],
                lhs=expr,
                rhs=rhs,
                span=expr.span.merge(rhs.span),
            )
        return expr

    def _parse_unary(self, allow_struct: bool) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.BANG:
            self._advance()
            operand = self._parse_unary(allow_struct)
            return ast.Unary(
                op=ast.UnOp.NOT, operand=operand, span=token.span.merge(operand.span)
            )
        if token.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary(allow_struct)
            return ast.Unary(
                op=ast.UnOp.NEG, operand=operand, span=token.span.merge(operand.span)
            )
        if token.kind is TokenKind.STAR:
            self._advance()
            operand = self._parse_unary(allow_struct)
            return ast.Deref(base=operand, span=token.span.merge(operand.span))
        if token.kind is TokenKind.AMP:
            self._advance()
            mutable = bool(self._match(TokenKind.KW_MUT))
            operand = self._parse_unary(allow_struct)
            return ast.Borrow(
                mutable=mutable, place=operand, span=token.span.merge(operand.span)
            )
        return self._parse_postfix(allow_struct)

    def _parse_postfix(self, allow_struct: bool) -> ast.Expr:
        expr = self._parse_primary(allow_struct)
        while True:
            if self._check(TokenKind.DOT):
                self._advance()
                field_token = self._peek()
                if field_token.kind is TokenKind.INT:
                    self._advance()
                    expr = ast.FieldAccess(
                        base=expr,
                        fld=int(field_token.value),
                        span=expr.span.merge(field_token.span),
                    )
                elif field_token.kind is TokenKind.IDENT:
                    self._advance()
                    expr = ast.FieldAccess(
                        base=expr,
                        fld=str(field_token.value),
                        span=expr.span.merge(field_token.span),
                    )
                else:
                    raise ParseError(
                        f"expected field name after '.', found {field_token.text!r}",
                        field_token.span,
                    )
            else:
                break
        return expr

    def _parse_primary(self, allow_struct: bool) -> ast.Expr:
        token = self._peek()

        if token.kind is TokenKind.INT:
            self._advance()
            return ast.Literal(value=int(token.value), span=token.span)
        if token.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.Literal(value=True, span=token.span)
        if token.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.Literal(value=False, span=token.span)
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.LBRACE:
            block = self._parse_block()
            return ast.BlockExpr(block=block, span=block.span)
        if token.kind is TokenKind.LPAREN:
            return self._parse_paren_or_tuple()
        if token.kind is TokenKind.IDENT:
            return self._parse_ident_expr(allow_struct)

        raise ParseError(f"expected expression, found {token.text!r}", token.span)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.KW_IF, "'if'")
        cond = self._parse_expr(allow_struct=False)
        then_block = self._parse_block()
        else_block: Optional[ast.Block] = None
        if self._match(TokenKind.KW_ELSE):
            if self._check(TokenKind.KW_IF):
                nested = self._parse_if()
                else_block = ast.Block(stmts=[], tail=nested, span=nested.span)
            else:
                else_block = self._parse_block()
        end_span = else_block.span if else_block is not None else then_block.span
        return ast.If(
            cond=cond,
            then_block=then_block,
            else_block=else_block,
            span=start.span.merge(end_span),
        )

    def _parse_paren_or_tuple(self) -> ast.Expr:
        start = self._expect(TokenKind.LPAREN, "'('")
        if self._check(TokenKind.RPAREN):
            rparen = self._advance()
            return ast.Literal(value=None, span=start.span.merge(rparen.span))
        first = self._parse_expr()
        if self._match(TokenKind.RPAREN):
            return first
        elements = [first]
        while self._match(TokenKind.COMMA):
            if self._check(TokenKind.RPAREN):
                break
            elements.append(self._parse_expr())
        rparen = self._expect(TokenKind.RPAREN, "')'")
        return ast.TupleExpr(elements=elements, span=start.span.merge(rparen.span))

    def _parse_ident_expr(self, allow_struct: bool) -> ast.Expr:
        name_token = self._advance()
        name = str(name_token.value)

        if self._check(TokenKind.LPAREN):
            self._advance()
            args: List[ast.Expr] = []
            while not self._check(TokenKind.RPAREN):
                args.append(self._parse_expr())
                if not self._match(TokenKind.COMMA):
                    break
            rparen = self._expect(TokenKind.RPAREN, "')'")
            return ast.Call(func=name, args=args, span=name_token.span.merge(rparen.span))

        if allow_struct and self._check(TokenKind.LBRACE) and name[:1].isupper():
            self._advance()
            fields: List[Tuple[str, ast.Expr]] = []
            while not self._check(TokenKind.RBRACE):
                field_name = self._expect(TokenKind.IDENT, "field name")
                self._expect(TokenKind.COLON, "':'")
                value = self._parse_expr()
                fields.append((str(field_name.value), value))
                if not self._match(TokenKind.COMMA):
                    break
            rbrace = self._expect(TokenKind.RBRACE, "'}'")
            return ast.StructLit(
                struct_name=name, fields=fields, span=name_token.span.merge(rbrace.span)
            )

        return ast.Var(name=name, span=name_token.span)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def parse_program(source: str, local_crate: str = "main") -> ast.Program:
    """Parse source text into a :class:`repro.lang.ast.Program`."""
    with obs_stage("parse") as sp:
        program = Parser(tokenize(source)).parse_program(local_crate=local_crate)
        if sp is not None:
            sp.set(bytes=len(source), crates=len(program.crates))
        return program


def parse_crate(source: str, name: str = "main") -> ast.Crate:
    """Parse source text that contains only items into a single crate."""
    return Parser(tokenize(source)).parse_crate(name=name)


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (used heavily in tests)."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expr()
    if not parser._at_end():
        leftover = parser._peek()
        raise ParseError(f"unexpected trailing input {leftover.text!r}", leftover.span)
    return expr
