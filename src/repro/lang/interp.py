"""A reference interpreter for MiniRust.

The interpreter plays the role of Oxide's small-step operational semantics in
the paper's Section 3: it executes programs over a *stack of frames* mapping
variables to values, with references represented as pointers into that stack.
It exists so the reproduction can test the noninterference theorem
empirically — run the same expression under two stacks that agree on a
dependency set and check the observable results agree (see
``tests/test_noninterference.py``).

Design notes:

* Values are deep-copied on reads of non-reference data, matching Rust's
  move/copy semantics; the only aliasing comes from explicit references.
* References are ``(frame id, variable, field path)`` triples.  Well-typed,
  ownership-respecting programs never dereference a frame that has been
  popped; the interpreter raises :class:`EvalError` if that happens.
* Arithmetic is wrapping ``u32`` arithmetic; division by zero raises, which
  models a Rust panic (and, like the paper, panics are outside the analysed
  behaviours).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import EvalError
from repro.lang import ast
from repro.lang.typeck import CheckedProgram
from repro.lang.types import RefType, StructType, TupleType, Type

U32_MODULUS = 2 ** 32


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value:
    """Base class for runtime values."""

    def copy(self) -> "Value":
        return self

    def pretty(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.pretty()


@dataclass(frozen=True)
class VUnit(Value):
    def pretty(self) -> str:
        return "()"


@dataclass(frozen=True)
class VInt(Value):
    value: int

    def pretty(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VBool(Value):
    value: bool

    def pretty(self) -> str:
        return "true" if self.value else "false"


@dataclass
class VTuple(Value):
    elements: List[Value]

    def copy(self) -> "VTuple":
        return VTuple([element.copy() for element in self.elements])

    def pretty(self) -> str:
        return "(" + ", ".join(e.pretty() for e in self.elements) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VTuple) and self.elements == other.elements


@dataclass
class VStruct(Value):
    name: str
    fields: List[Value]

    def copy(self) -> "VStruct":
        return VStruct(self.name, [f.copy() for f in self.fields])

    def pretty(self) -> str:
        return f"{self.name}(" + ", ".join(f.pretty() for f in self.fields) + ")"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VStruct)
            and self.name == other.name
            and self.fields == other.fields
        )


@dataclass(frozen=True)
class VRef(Value):
    """A pointer to a location on the interpreter stack (Oxide's ``ptr π``)."""

    frame_id: int
    var: str
    path: Tuple[int, ...] = ()
    mutable: bool = False

    def pretty(self) -> str:
        path = "".join(f".{index}" for index in self.path)
        prefix = "&mut " if self.mutable else "&"
        return f"{prefix}{self.var}{path}@{self.frame_id}"


UNIT_VALUE = VUnit()


# ---------------------------------------------------------------------------
# Stack
# ---------------------------------------------------------------------------


@dataclass
class Frame:
    """One stack frame: a mapping from variable names to values."""

    frame_id: int
    fn_name: str
    slots: Dict[str, Value] = field(default_factory=dict)


class Stack:
    """The runtime stack ``σ``: a list of frames with stable ids."""

    def __init__(self) -> None:
        self.frames: List[Frame] = []
        self._next_id = 0

    def push(self, fn_name: str) -> Frame:
        frame = Frame(self._next_id, fn_name)
        self._next_id += 1
        self.frames.append(frame)
        return frame

    def pop(self) -> Frame:
        return self.frames.pop()

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def frame_by_id(self, frame_id: int) -> Frame:
        for frame in reversed(self.frames):
            if frame.frame_id == frame_id:
                return frame
        raise EvalError(f"dangling reference into popped frame {frame_id}")

    # -- place resolution ---------------------------------------------------

    def read(self, frame_id: int, var: str, path: Sequence[int]) -> Value:
        frame = self.frame_by_id(frame_id)
        if var not in frame.slots:
            raise EvalError(f"read of unbound variable {var!r}")
        value = frame.slots[var]
        for index in path:
            value = _project(value, index)
        return value

    def write(self, frame_id: int, var: str, path: Sequence[int], new_value: Value) -> None:
        frame = self.frame_by_id(frame_id)
        if var not in frame.slots:
            raise EvalError(f"write to unbound variable {var!r}")
        if not path:
            frame.slots[var] = new_value
            return
        container = frame.slots[var]
        for index in path[:-1]:
            container = _project(container, index)
        _assign_field(container, path[-1], new_value)


def _project(value: Value, index: int) -> Value:
    if isinstance(value, VTuple):
        if index >= len(value.elements):
            raise EvalError(f"tuple index {index} out of range")
        return value.elements[index]
    if isinstance(value, VStruct):
        if index >= len(value.fields):
            raise EvalError(f"struct field index {index} out of range for {value.name}")
        return value.fields[index]
    raise EvalError(f"cannot project field {index} out of {value.pretty()}")


def _assign_field(container: Value, index: int, new_value: Value) -> None:
    if isinstance(container, VTuple):
        container.elements[index] = new_value
    elif isinstance(container, VStruct):
        container.fields[index] = new_value
    else:
        raise EvalError(f"cannot assign field {index} of {container.pretty()}")


# ---------------------------------------------------------------------------
# Control-flow signals
# ---------------------------------------------------------------------------


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Value):
        super().__init__("return")
        self.value = value


ExternImpl = Callable[["Interpreter", List[Value]], Value]


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------


class Interpreter:
    """Evaluates functions of a checked program.

    Parameters
    ----------
    checked:
        The type-checked program to execute.
    extern_impls:
        Optional Python implementations for ``extern fn`` declarations.  Any
        call to an extern function without an implementation raises
        :class:`EvalError`.
    fuel:
        Maximum number of expression evaluations before the interpreter
        aborts; protects property-based tests from accidental infinite loops.
    """

    def __init__(
        self,
        checked: CheckedProgram,
        extern_impls: Optional[Dict[str, ExternImpl]] = None,
        fuel: int = 1_000_000,
    ):
        self.checked = checked
        self.program = checked.program
        self.extern_impls = dict(extern_impls or {})
        self.fuel = fuel
        self.steps = 0
        self.stack = Stack()

    # -- entry points ---------------------------------------------------------

    def call_function(self, name: str, args: Sequence[Value]) -> Value:
        """Call a named function with already-evaluated argument values."""
        decl = self.program.function(name)
        if decl is None:
            raise EvalError(f"call to undefined function {name!r}")
        if decl.body is None:
            impl = self.extern_impls.get(name)
            if impl is None:
                raise EvalError(f"extern function {name!r} has no interpreter implementation")
            return impl(self, list(args))
        if len(args) != len(decl.params):
            raise EvalError(
                f"{name!r} expects {len(decl.params)} arguments, got {len(args)}"
            )

        frame = self.stack.push(name)
        try:
            for param, arg in zip(decl.params, args):
                frame.slots[param.name] = arg
            try:
                result = self._eval_block(decl.body, frame)
            except _ReturnSignal as signal:
                result = signal.value
            return result
        finally:
            self.stack.pop()

    def run_with_env(self, name: str, env: Dict[str, Value]) -> Tuple[Value, Dict[str, Value]]:
        """Call ``name`` with an initial environment, returning result and final frame.

        Used by the noninterference tests: the environment is the initial
        stack frame, and the returned dictionary is the frame's contents after
        the function body finished, so callers can compare memory effects.
        """
        decl = self.program.function(name)
        if decl is None or decl.body is None:
            raise EvalError(f"cannot run function {name!r} with an environment")
        frame = self.stack.push(name)
        try:
            for key, value in env.items():
                frame.slots[key] = value
            try:
                result = self._eval_block(decl.body, frame)
            except _ReturnSignal as signal:
                result = signal.value
            return result, dict(frame.slots)
        finally:
            self.stack.pop()

    # -- helpers ---------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.fuel:
            raise EvalError("interpreter ran out of fuel (possible infinite loop)")

    def default_value(self, ty: Type) -> Value:
        """A zero-initialised value of type ``ty`` (used to build test stacks)."""
        from repro.lang.types import BoolType, U32Type, UnitType

        if isinstance(ty, UnitType):
            return UNIT_VALUE
        if isinstance(ty, U32Type):
            return VInt(0)
        if isinstance(ty, BoolType):
            return VBool(False)
        if isinstance(ty, TupleType):
            return VTuple([self.default_value(t) for t in ty.elements])
        if isinstance(ty, StructType):
            return VStruct(ty.name, [self.default_value(t) for _, t in ty.fields])
        if isinstance(ty, RefType):
            raise EvalError("cannot build a default value for a reference type")
        raise EvalError(f"cannot build a default value for {ty.pretty()}")

    # -- blocks and statements --------------------------------------------------

    def _eval_block(self, block: ast.Block, frame: Frame) -> Value:
        declared: List[str] = []
        try:
            for stmt in block.stmts:
                name = self._eval_stmt(stmt, frame)
                if name is not None:
                    declared.append(name)
            if block.tail is not None:
                return self._eval_expr(block.tail, frame)
            return UNIT_VALUE
        finally:
            # Block-local bindings go out of scope.  (Shadowed outer bindings
            # are not restored; the corpus and tests do not rely on shadowing.)
            for name in declared:
                frame.slots.pop(name, None)

    def _eval_stmt(self, stmt: ast.Stmt, frame: Frame) -> Optional[str]:
        self._tick()
        if isinstance(stmt, ast.LetStmt):
            value = (
                self._eval_expr(stmt.init, frame) if stmt.init is not None else UNIT_VALUE
            )
            frame.slots[stmt.name] = value
            return stmt.name
        if isinstance(stmt, ast.AssignStmt):
            value = self._eval_expr(stmt.value, frame)
            frame_id, var, path = self._resolve_place(stmt.target, frame)
            self.stack.write(frame_id, var, path, value)
            return None
        if isinstance(stmt, ast.ExprStmt):
            self._eval_expr(stmt.expr, frame)
            return None
        if isinstance(stmt, ast.WhileStmt):
            while True:
                self._tick()
                cond = self._eval_expr(stmt.cond, frame)
                if not self._as_bool(cond, stmt.cond):
                    break
                try:
                    self._eval_block(stmt.body, frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return None
        if isinstance(stmt, ast.ReturnStmt):
            value = (
                self._eval_expr(stmt.value, frame) if stmt.value is not None else UNIT_VALUE
            )
            raise _ReturnSignal(value)
        if isinstance(stmt, ast.BreakStmt):
            raise _BreakSignal()
        if isinstance(stmt, ast.ContinueStmt):
            raise _ContinueSignal()
        raise EvalError(f"unsupported statement {type(stmt).__name__}", stmt.span)

    # -- places -------------------------------------------------------------------

    def _resolve_place(
        self, expr: ast.Expr, frame: Frame
    ) -> Tuple[int, str, Tuple[int, ...]]:
        """Reduce a place expression to a concrete stack location.

        Dereferences follow the pointer stored at the location reached so far,
        mirroring Oxide's ``σ ⊢ p ⇓ π`` judgment.
        """
        if isinstance(expr, ast.Var):
            return frame.frame_id, expr.name, ()
        if isinstance(expr, ast.FieldAccess):
            base_ty = expr.base.ty
            frame_id, var, path = self._resolve_place(expr.base, frame)
            # Auto-deref through references for field access.
            while isinstance(base_ty, RefType):
                pointer = self.stack.read(frame_id, var, path)
                if not isinstance(pointer, VRef):
                    raise EvalError("field access through a non-pointer value", expr.span)
                frame_id, var, path = pointer.frame_id, pointer.var, pointer.path
                base_ty = base_ty.pointee
            index = expr.field_index if expr.field_index is not None else expr.fld
            if not isinstance(index, int):
                raise EvalError(f"unresolved field {expr.fld!r}", expr.span)
            return frame_id, var, path + (index,)
        if isinstance(expr, ast.Deref):
            frame_id, var, path = self._resolve_place(expr.base, frame)
            pointer = self.stack.read(frame_id, var, path)
            if not isinstance(pointer, VRef):
                raise EvalError("dereference of a non-pointer value", expr.span)
            return pointer.frame_id, pointer.var, pointer.path
        raise EvalError(f"expression is not a place: {type(expr).__name__}", expr.span)

    # -- expressions ----------------------------------------------------------------

    def _eval_expr(self, expr: ast.Expr, frame: Frame) -> Value:
        self._tick()

        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return UNIT_VALUE
            if isinstance(expr.value, bool):
                return VBool(expr.value)
            return VInt(expr.value % U32_MODULUS)

        if isinstance(expr, ast.FieldAccess) and not expr.base.is_place():
            # Projection out of a temporary value, e.g. `(a, b).0`: evaluate
            # the base and project directly (no stack location is involved).
            base_value = self._eval_expr(expr.base, frame)
            base_ty = expr.base.ty
            while isinstance(base_ty, RefType):
                if not isinstance(base_value, VRef):
                    raise EvalError("field access through a non-pointer value", expr.span)
                base_value = self.stack.read(base_value.frame_id, base_value.var, base_value.path)
                base_ty = base_ty.pointee
            index = expr.field_index if expr.field_index is not None else expr.fld
            if not isinstance(index, int):
                raise EvalError(f"unresolved field {expr.fld!r}", expr.span)
            return _project(base_value, index).copy()

        if isinstance(expr, (ast.Var, ast.FieldAccess, ast.Deref)):
            frame_id, var, path = self._resolve_place(expr, frame)
            return self.stack.read(frame_id, var, path).copy()

        if isinstance(expr, ast.Unary):
            operand = self._eval_expr(expr.operand, frame)
            if expr.op is ast.UnOp.NOT:
                return VBool(not self._as_bool(operand, expr))
            return VInt((-self._as_int(operand, expr)) % U32_MODULUS)

        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame)

        if isinstance(expr, ast.Borrow):
            frame_id, var, path = self._resolve_place(expr.place, frame)
            return VRef(frame_id, var, path, expr.mutable)

        if isinstance(expr, ast.Call):
            args = [self._eval_expr(arg, frame) for arg in expr.args]
            return self.call_function(expr.func, args)

        if isinstance(expr, ast.TupleExpr):
            return VTuple([self._eval_expr(element, frame) for element in expr.elements])

        if isinstance(expr, ast.StructLit):
            struct = self.checked.registry.lookup(expr.struct_name)
            if struct is None:
                raise EvalError(f"unknown struct {expr.struct_name!r}", expr.span)
            provided = {name: self._eval_expr(value, frame) for name, value in expr.fields}
            ordered = [provided[name] for name in struct.field_names()]
            return VStruct(struct.name, ordered)

        if isinstance(expr, ast.If):
            cond = self._eval_expr(expr.cond, frame)
            if self._as_bool(cond, expr.cond):
                return self._eval_block(expr.then_block, frame)
            if expr.else_block is not None:
                return self._eval_block(expr.else_block, frame)
            return UNIT_VALUE

        if isinstance(expr, ast.BlockExpr):
            return self._eval_block(expr.block, frame)

        raise EvalError(f"unsupported expression {type(expr).__name__}", expr.span)

    def _eval_binary(self, expr: ast.Binary, frame: Frame) -> Value:
        op = expr.op
        if op is ast.BinOp.AND:
            lhs = self._as_bool(self._eval_expr(expr.lhs, frame), expr.lhs)
            if not lhs:
                return VBool(False)
            return VBool(self._as_bool(self._eval_expr(expr.rhs, frame), expr.rhs))
        if op is ast.BinOp.OR:
            lhs = self._as_bool(self._eval_expr(expr.lhs, frame), expr.lhs)
            if lhs:
                return VBool(True)
            return VBool(self._as_bool(self._eval_expr(expr.rhs, frame), expr.rhs))

        lhs = self._eval_expr(expr.lhs, frame)
        rhs = self._eval_expr(expr.rhs, frame)

        if op is ast.BinOp.EQ:
            return VBool(lhs == rhs)
        if op is ast.BinOp.NE:
            return VBool(lhs != rhs)

        left = self._as_int(lhs, expr.lhs)
        right = self._as_int(rhs, expr.rhs)
        if op is ast.BinOp.ADD:
            return VInt((left + right) % U32_MODULUS)
        if op is ast.BinOp.SUB:
            return VInt((left - right) % U32_MODULUS)
        if op is ast.BinOp.MUL:
            return VInt((left * right) % U32_MODULUS)
        if op is ast.BinOp.DIV:
            if right == 0:
                raise EvalError("division by zero", expr.span)
            return VInt((left // right) % U32_MODULUS)
        if op is ast.BinOp.REM:
            if right == 0:
                raise EvalError("remainder by zero", expr.span)
            return VInt((left % right) % U32_MODULUS)
        if op is ast.BinOp.LT:
            return VBool(left < right)
        if op is ast.BinOp.LE:
            return VBool(left <= right)
        if op is ast.BinOp.GT:
            return VBool(left > right)
        if op is ast.BinOp.GE:
            return VBool(left >= right)
        raise EvalError(f"unsupported binary operator {op}", expr.span)

    # -- conversions ------------------------------------------------------------------

    def _as_bool(self, value: Value, expr: ast.Expr) -> bool:
        if isinstance(value, VBool):
            return value.value
        raise EvalError(f"expected bool, found {value.pretty()}", expr.span)

    def _as_int(self, value: Value, expr: ast.Expr) -> int:
        if isinstance(value, VInt):
            return value.value
        raise EvalError(f"expected u32, found {value.pretty()}", expr.span)


def evaluate_function(
    checked: CheckedProgram,
    name: str,
    args: Sequence[Value] = (),
    extern_impls: Optional[Dict[str, ExternImpl]] = None,
) -> Value:
    """Convenience wrapper: run ``name`` on ``args`` and return its result."""
    interpreter = Interpreter(checked, extern_impls=extern_impls)
    return interpreter.call_function(name, list(args))
