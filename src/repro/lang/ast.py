"""Abstract syntax tree for MiniRust.

The AST is deliberately close to the expression language of Oxide (the formal
model the paper uses): constants, places with field projections and
dereferences, let bindings, assignments, borrows, conditionals, loops, and
first-order function calls.  Each node carries a :class:`~repro.errors.Span`
and receives a unique *node id* so that the AST-level information-flow
judgment (:mod:`repro.core.oxide`) can use node ids as the location labels
``ℓ`` from Section 2 of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import DUMMY_SPAN, Span
from repro.lang.types import Type


_node_counter = itertools.count(1)


def _next_node_id() -> int:
    return next(_node_counter)


class ExprKind(Enum):
    """Discriminant for expression nodes, useful for generic visitors."""

    LITERAL = "literal"
    VAR = "var"
    FIELD = "field"
    DEREF = "deref"
    UNARY = "unary"
    BINARY = "binary"
    BORROW = "borrow"
    CALL = "call"
    TUPLE = "tuple"
    STRUCT = "struct"
    IF = "if"
    BLOCK = "block"


class StmtKind(Enum):
    """Discriminant for statement nodes."""

    LET = "let"
    ASSIGN = "assign"
    EXPR = "expr"
    WHILE = "while"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"


class BinOp(Enum):
    """Binary operators available in MiniRust."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    REM = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"

    def is_comparison(self) -> bool:
        return self in (BinOp.EQ, BinOp.NE, BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE)

    def is_logical(self) -> bool:
        return self in (BinOp.AND, BinOp.OR)

    def is_arithmetic(self) -> bool:
        return self in (BinOp.ADD, BinOp.SUB, BinOp.MUL, BinOp.DIV, BinOp.REM)


class UnOp(Enum):
    """Unary operators available in MiniRust."""

    NOT = "!"
    NEG = "-"


@dataclass
class Node:
    """Common base for AST nodes: a span plus a unique id (the label ``ℓ``)."""

    span: Span = field(default=DUMMY_SPAN, kw_only=True)
    node_id: int = field(default_factory=_next_node_id, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions.  ``ty`` is filled in by the type checker."""

    kind: ExprKind = field(default=ExprKind.LITERAL, kw_only=True)
    ty: Optional[Type] = field(default=None, kw_only=True)

    def is_place(self) -> bool:
        """Whether this expression denotes a place (l-value)."""
        return self.kind in (ExprKind.VAR, ExprKind.FIELD, ExprKind.DEREF)

    def children(self) -> List["Expr"]:
        """Direct sub-expressions, for generic traversals."""
        return []


@dataclass
class Literal(Expr):
    """A constant: an integer, a boolean, or unit (``value is None``)."""

    value: Union[int, bool, None] = None

    def __post_init__(self) -> None:
        self.kind = ExprKind.LITERAL


@dataclass
class Var(Expr):
    """A reference to a local variable or parameter by name."""

    name: str = ""

    def __post_init__(self) -> None:
        self.kind = ExprKind.VAR


@dataclass
class FieldAccess(Expr):
    """Projection out of a tuple (``e.0``) or struct (``e.name``).

    ``field`` keeps the surface form (an int for tuples, a string for
    structs); ``field_index`` is resolved during type checking.
    """

    base: Expr = None  # type: ignore[assignment]
    fld: Union[int, str] = 0
    field_index: Optional[int] = None

    def __post_init__(self) -> None:
        self.kind = ExprKind.FIELD

    def children(self) -> List[Expr]:
        return [self.base]


@dataclass
class Deref(Expr):
    """A dereference ``*e``."""

    base: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = ExprKind.DEREF

    def children(self) -> List[Expr]:
        return [self.base]


@dataclass
class Unary(Expr):
    """A unary operation ``!e`` or ``-e``."""

    op: UnOp = UnOp.NOT
    operand: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = ExprKind.UNARY

    def children(self) -> List[Expr]:
        return [self.operand]


@dataclass
class Binary(Expr):
    """A binary operation ``e1 op e2``."""

    op: BinOp = BinOp.ADD
    lhs: Expr = None  # type: ignore[assignment]
    rhs: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = ExprKind.BINARY

    def children(self) -> List[Expr]:
        return [self.lhs, self.rhs]


@dataclass
class Borrow(Expr):
    """A borrow expression ``&p`` or ``&mut p`` (Oxide's ``&r ω p``)."""

    mutable: bool = False
    place: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = ExprKind.BORROW

    def children(self) -> List[Expr]:
        return [self.place]


@dataclass
class Call(Expr):
    """A call to a named function: ``f(e1, ..., en)``."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kind = ExprKind.CALL

    def children(self) -> List[Expr]:
        return list(self.args)


@dataclass
class TupleExpr(Expr):
    """A tuple constructor ``(e1, ..., en)``."""

    elements: List[Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kind = ExprKind.TUPLE

    def children(self) -> List[Expr]:
        return list(self.elements)


@dataclass
class StructLit(Expr):
    """A struct literal ``Name { field: expr, ... }``."""

    struct_name: str = ""
    fields: List[Tuple[str, Expr]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kind = ExprKind.STRUCT

    def children(self) -> List[Expr]:
        return [expr for _, expr in self.fields]


@dataclass
class If(Expr):
    """A conditional expression ``if cond { ... } else { ... }``.

    The else block may be absent, in which case the expression has unit type.
    """

    cond: Expr = None  # type: ignore[assignment]
    then_block: "Block" = None  # type: ignore[assignment]
    else_block: Optional["Block"] = None

    def __post_init__(self) -> None:
        self.kind = ExprKind.IF

    def children(self) -> List[Expr]:
        return [self.cond]


@dataclass
class BlockExpr(Expr):
    """A block used in expression position."""

    block: "Block" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = ExprKind.BLOCK


# ---------------------------------------------------------------------------
# Statements and blocks
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""

    kind: StmtKind = field(default=StmtKind.EXPR, kw_only=True)


@dataclass
class LetStmt(Stmt):
    """``let [mut] name [: ty] = init;``

    ``name_span`` pins the bound variable's identifier token, while ``span``
    covers the whole statement — cursor queries resolve against the former.
    """

    name: str = ""
    mutable: bool = False
    declared_ty: Optional[Type] = None
    init: Optional[Expr] = None
    name_span: Span = field(default=DUMMY_SPAN, kw_only=True)

    def __post_init__(self) -> None:
        self.kind = StmtKind.LET


@dataclass
class AssignStmt(Stmt):
    """``place = value;`` where ``place`` may involve fields and derefs."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = StmtKind.ASSIGN


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its effects: ``expr;``"""

    expr: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = StmtKind.EXPR


@dataclass
class WhileStmt(Stmt):
    """``while cond { body }``"""

    cond: Expr = None  # type: ignore[assignment]
    body: "Block" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = StmtKind.WHILE


@dataclass
class ReturnStmt(Stmt):
    """``return;`` or ``return expr;``"""

    value: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.kind = StmtKind.RETURN


@dataclass
class BreakStmt(Stmt):
    """``break;`` (exits the innermost loop)."""

    def __post_init__(self) -> None:
        self.kind = StmtKind.BREAK


@dataclass
class ContinueStmt(Stmt):
    """``continue;`` (jumps to the innermost loop header)."""

    def __post_init__(self) -> None:
        self.kind = StmtKind.CONTINUE


@dataclass
class Block(Node):
    """A sequence of statements with an optional tail expression."""

    stmts: List[Stmt] = field(default_factory=list)
    tail: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Items, crates, programs
# ---------------------------------------------------------------------------


@dataclass
class FieldDef(Node):
    """A struct field declaration."""

    name: str = ""
    ty: Type = None  # type: ignore[assignment]


@dataclass
class StructDef(Node):
    """A struct definition, possibly opaque (``struct Foo;``)."""

    name: str = ""
    fields: List[FieldDef] = field(default_factory=list)
    opaque: bool = False


@dataclass
class Param(Node):
    """A function parameter: name plus declared type."""

    name: str = ""
    ty: Type = None  # type: ignore[assignment]


@dataclass
class FnSig:
    """A function signature, the only information the modular analysis uses.

    ``lifetime_params`` lists declared lifetime names (e.g. ``'a``); elided
    lifetimes are assigned fresh names during type checking so every reference
    in ``param_types``/``ret_type`` mentions a concrete lifetime name.
    """

    name: str
    param_names: Tuple[str, ...]
    param_types: Tuple[Type, ...]
    ret_type: Type
    lifetime_params: Tuple[str, ...] = ()

    def arity(self) -> int:
        return len(self.param_types)

    def pretty(self) -> str:
        params = ", ".join(
            f"{name}: {ty.pretty()}" for name, ty in zip(self.param_names, self.param_types)
        )
        lifetimes = ""
        if self.lifetime_params:
            lifetimes = "<" + ", ".join(f"'{p}" for p in self.lifetime_params) + ">"
        return f"fn {self.name}{lifetimes}({params}) -> {self.ret_type.pretty()}"


@dataclass
class FnDecl(Node):
    """A function declaration.

    ``body is None`` marks an ``extern fn``: a signature-only declaration that
    models a pre-compiled dependency.  These are exactly the calls for which
    the paper's *modular* approximation is the only available option.
    """

    name: str = ""
    lifetime_params: List[str] = field(default_factory=list)
    params: List[Param] = field(default_factory=list)
    ret_type: Type = None  # type: ignore[assignment]
    body: Optional[Block] = None
    is_extern: bool = False
    crate: str = ""

    @property
    def has_body(self) -> bool:
        return self.body is not None

    def signature(self) -> FnSig:
        return FnSig(
            name=self.name,
            param_names=tuple(p.name for p in self.params),
            param_types=tuple(p.ty for p in self.params),
            ret_type=self.ret_type,
            lifetime_params=tuple(self.lifetime_params),
        )


Item = Union[FnDecl, StructDef]


@dataclass
class Crate(Node):
    """A named collection of items — the unit of analysis in the evaluation."""

    name: str = "main"
    items: List[Item] = field(default_factory=list)

    def functions(self) -> List[FnDecl]:
        return [item for item in self.items if isinstance(item, FnDecl)]

    def structs(self) -> List[StructDef]:
        return [item for item in self.items if isinstance(item, StructDef)]

    def function(self, name: str) -> Optional[FnDecl]:
        for fn in self.functions():
            if fn.name == name:
                return fn
        return None

    def add(self, item: Item) -> None:
        self.items.append(item)


@dataclass
class Program(Node):
    """A whole program: one *local* crate plus any number of dependency crates.

    This mirrors the paper's evaluation setup (Section 5): the whole-program
    analysis may recurse into functions of the local crate only; dependency
    crates expose signatures (and opaque struct types) but their bodies are
    out of reach, exactly like pre-compiled Rust dependencies.
    """

    crates: List[Crate] = field(default_factory=list)
    local_crate: str = "main"

    def crate(self, name: str) -> Optional[Crate]:
        for crate in self.crates:
            if crate.name == name:
                return crate
        return None

    @property
    def local(self) -> Crate:
        found = self.crate(self.local_crate)
        if found is None:
            raise KeyError(f"no local crate named {self.local_crate!r}")
        return found

    def all_functions(self) -> List[FnDecl]:
        out: List[FnDecl] = []
        for crate in self.crates:
            out.extend(crate.functions())
        return out

    def all_structs(self) -> List[StructDef]:
        out: List[StructDef] = []
        for crate in self.crates:
            out.extend(crate.structs())
        return out

    def function(self, name: str) -> Optional[FnDecl]:
        for crate in self.crates:
            fn = crate.function(name)
            if fn is not None:
                return fn
        return None

    def function_crate(self, name: str) -> Optional[str]:
        for crate in self.crates:
            if crate.function(name) is not None:
                return crate.name
        return None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions (preorder), descending into blocks."""
    yield expr
    if isinstance(expr, If):
        yield from walk_expr(expr.cond)
        yield from walk_block(expr.then_block)
        if expr.else_block is not None:
            yield from walk_block(expr.else_block)
    elif isinstance(expr, BlockExpr):
        yield from walk_block(expr.block)
    else:
        for child in expr.children():
            yield from walk_expr(child)


def walk_block(block: Block):
    """Yield every expression appearing in ``block`` (preorder)."""
    for stmt in block.stmts:
        yield from walk_stmt(stmt)
    if block.tail is not None:
        yield from walk_expr(block.tail)


def walk_stmt(stmt: Stmt):
    """Yield every expression appearing in ``stmt`` (preorder)."""
    if isinstance(stmt, LetStmt) and stmt.init is not None:
        yield from walk_expr(stmt.init)
    elif isinstance(stmt, AssignStmt):
        yield from walk_expr(stmt.target)
        yield from walk_expr(stmt.value)
    elif isinstance(stmt, ExprStmt):
        yield from walk_expr(stmt.expr)
    elif isinstance(stmt, WhileStmt):
        yield from walk_expr(stmt.cond)
        yield from walk_block(stmt.body)
    elif isinstance(stmt, ReturnStmt) and stmt.value is not None:
        yield from walk_expr(stmt.value)


def called_functions(fn: FnDecl) -> List[str]:
    """Names of all functions syntactically called inside ``fn``'s body."""
    if fn.body is None:
        return []
    names: List[str] = []
    for expr in walk_block(fn.body):
        if isinstance(expr, Call):
            names.append(expr.func)
    return names


def count_expressions(fn: FnDecl) -> int:
    """Number of expression nodes in ``fn``'s body (0 for extern functions)."""
    if fn.body is None:
        return 0
    return sum(1 for _ in walk_block(fn.body))
