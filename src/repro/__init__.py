"""repro: a reproduction of "Modular Information Flow through Ownership" (PLDI 2022).

The library implements, in pure Python, a Flowistry-style information flow
analysis for MiniRust — a Rust-subset language with ownership types — along
with every substrate the paper depends on and the full evaluation pipeline.

Quick start::

    from repro import analyze_source, AnalysisConfig

    result = analyze_source('''
        struct Counter { hits: u32, misses: u32 }
        extern fn log_event(code: u32);

        fn bump(c: &mut Counter, hit: bool) -> u32 {
            if hit {
                c.hits = c.hits + 1;
            } else {
                c.misses = c.misses + 1;
            }
            log_event(c.hits);
            c.hits + c.misses
        }
    ''')
    flow = result.result("bump")
    print(flow.dependency_sizes())

Package map:

* :mod:`repro.lang` — MiniRust front end (lexer, parser, type checker with
  ownership information, reference interpreter).
* :mod:`repro.mir` — MIR-style control-flow-graph IR and lowering.
* :mod:`repro.borrowck` — loan sets, signature summaries, alias oracles.
* :mod:`repro.dataflow` — dominators, control dependence, fixpoint engine.
* :mod:`repro.core` — the information flow analysis itself (the paper's
  contribution) plus the evaluation conditions.
* :mod:`repro.apps` — the program slicer and IFC checker of Figure 5.
* :mod:`repro.focus` — the focus engine: cursor resolution, precomputed
  per-function focus tables, span-precise highlight rendering, and the
  LSP-lite JSON-RPC frontend (the paper's IDE "focus mode").
* :mod:`repro.eval` — corpus generation, experiments, statistics, reports.
* :mod:`repro.service` — the incremental analysis service: content-addressed
  summary cache, call-graph invalidation, batch scheduler, and the
  line-delimited JSON protocol behind ``repro serve``.
"""

from repro.core.analysis import FunctionFlowResult, analyze_body
from repro.core.config import AnalysisConfig, all_conditions, condition_name
from repro.core.engine import FlowEngine, ProgramFlowResult, analyze_program, analyze_source
from repro.core.theta import DependencyContext
from repro.apps.ifc import IfcChecker, IfcPolicy, IfcViolation
from repro.apps.slicer import ProgramSlicer, Slice, SliceDirection
from repro.focus.table import FocusEntry, FocusTable
from repro.focus.resolve import FocusTarget, resolve_cursor
from repro.lang.parser import parse_crate, parse_program
from repro.lang.typeck import check_program
from repro.mir.lower import lower_program
from repro.mir.pretty import pretty_body
from repro.version import __version__

__all__ = [
    "AnalysisConfig",
    "DependencyContext",
    "FlowEngine",
    "FocusEntry",
    "FocusTable",
    "FocusTarget",
    "FunctionFlowResult",
    "IfcChecker",
    "IfcPolicy",
    "IfcViolation",
    "ProgramFlowResult",
    "ProgramSlicer",
    "Slice",
    "SliceDirection",
    "all_conditions",
    "analyze_body",
    "analyze_program",
    "analyze_source",
    "check_program",
    "condition_name",
    "lower_program",
    "parse_crate",
    "parse_program",
    "pretty_body",
    "resolve_cursor",
    "__version__",
]
