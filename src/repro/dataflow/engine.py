"""A generic forward dataflow engine over join-semilattices.

The information flow analysis of Section 4.1 is "a flow-sensitive, forward
dataflow analysis pass" whose state (the dependency context Θ) forms a
join-semilattice under key-wise set union; iteration to fixpoint is
guaranteed to terminate because each function has finitely many places and
locations.  This engine factors that structure out so the core analysis only
supplies a transfer function, and so alternative analyses (for instance the
liveness analysis used in tests, or future extensions) can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, Protocol, TypeVar

from repro.dataflow.graph import forward_cfg, reverse_post_order
from repro.mir.ir import Body, Location


S = TypeVar("S")


class JoinSemiLattice(Protocol[S]):
    """The operations the engine needs from a dataflow domain."""

    def bottom(self) -> S:
        """The least element (initial state of unvisited blocks)."""

    def join(self, left: S, right: S) -> S:
        """Least upper bound of two states."""

    def equals(self, left: S, right: S) -> bool:
        """Whether two states are equal (fixpoint detection)."""

    def copy(self, state: S) -> S:
        """An independent copy of a state that transfer functions may mutate."""


class InPlaceJoinSemiLattice(JoinSemiLattice[S], Protocol[S]):
    """A lattice whose join can mutate the target and report change.

    Bitset domains (the indexed Θ) implement this: ``join_into`` is a
    key-wise bitwise-or that returns a **dirty bit** — True exactly when the
    target grew.  The fixpoint driver then needs neither the out-of-place
    ``join`` nor the full-state ``equals`` on its hot path: change detection
    falls out of the union itself.
    """

    def join_into(self, target: S, source: S) -> bool:
        """Union ``source`` into ``target`` in place; True when it changed."""


class TransferFunction(Protocol[S]):
    """Applies the effect of one CFG location to a state, in place."""

    def __call__(self, state: S, body: Body, location: Location) -> None: ...


@dataclass
class FixpointResult(Generic[S]):
    """Per-block entry states plus on-demand recomputation inside blocks."""

    body: Body
    lattice: JoinSemiLattice
    transfer: TransferFunction
    entry_states: Dict[int, S] = field(default_factory=dict)
    iterations: int = 0
    # Block out-states recorded during the run: when a block is processed for
    # the last time its entry state is final, so the state left at the end of
    # the block is its final exit state — no replay needed.  Unreachable
    # blocks (never on the worklist) are absent and fall back to replay.
    recorded_exits: Dict[int, S] = field(default_factory=dict)

    def state_at(self, location: Location) -> S:
        """The state *before* executing the instruction at ``location``."""
        state = self.lattice.copy(self.entry_states[location.block])
        for stmt_index in range(location.statement):
            self.transfer(state, self.body, Location(location.block, stmt_index))
        return state

    def state_after(self, location: Location) -> S:
        """The state *after* executing the instruction at ``location``."""
        state = self.state_at(location)
        self.transfer(state, self.body, location)
        return state

    def exit_states(self) -> Dict[int, S]:
        """The state at the end of every block (callers may mutate freely)."""
        out: Dict[int, S] = {}
        for block_index, block in enumerate(self.body.blocks):
            recorded = self.recorded_exits.get(block_index)
            if recorded is not None:
                out[block_index] = self.lattice.copy(recorded)
                continue
            state = self.lattice.copy(self.entry_states[block_index])
            for stmt_index in range(block.num_locations()):
                self.transfer(state, self.body, Location(block_index, stmt_index))
            out[block_index] = state
        return out

    def state_at_returns(self) -> S:
        """Join of the exit states of all return blocks (the function's exit state)."""
        join_into = getattr(self.lattice, "join_into", None)
        if join_into is not None:
            result = self.lattice.bottom()
            replayed: Optional[Dict[int, S]] = None
            for block in self.body.return_blocks():
                recorded = self.recorded_exits.get(block)
                if recorded is None:
                    # Unreachable return block: fall back to one full replay,
                    # shared across any further misses.
                    if replayed is None:
                        replayed = self.exit_states()
                    recorded = replayed[block]
                join_into(result, recorded)
            return result
        exits = self.exit_states()
        result = self.lattice.bottom()
        for block in self.body.return_blocks():
            result = self.lattice.join(result, exits[block])
        return result


class ForwardAnalysis(Generic[S]):
    """Runs a forward dataflow analysis to fixpoint over a MIR body."""

    def __init__(
        self,
        lattice: JoinSemiLattice,
        transfer: TransferFunction,
        boundary_state: Optional[Callable[[Body], S]] = None,
        max_iterations: int = 10_000,
    ):
        self.lattice = lattice
        self.transfer = transfer
        self.boundary_state = boundary_state
        self.max_iterations = max_iterations

    def run(self, body: Body) -> FixpointResult[S]:
        view = forward_cfg(body)
        order = reverse_post_order(view)
        position = {block: i for i, block in enumerate(order)}

        entry_states: Dict[int, S] = {
            block: self.lattice.bottom() for block in range(len(body.blocks))
        }
        if self.boundary_state is not None:
            entry_states[0] = self.boundary_state(body)

        # Worklist initialised in reverse post-order so most blocks see their
        # predecessors' final states on the first pass.
        worklist: List[int] = list(order)
        in_worklist = set(worklist)
        iterations = 0
        recorded_exits: Dict[int, S] = {}

        # Bitset (indexed) domains join in place and return a dirty bit;
        # object domains re-join and compare.  Detected once, not per edge.
        join_into = getattr(self.lattice, "join_into", None)

        # Locations are revisited every time a block re-enters the worklist:
        # construct each exactly once.
        block_locations: List[List[Location]] = [
            [Location(index, stmt) for stmt in range(block.num_locations())]
            for index, block in enumerate(body.blocks)
        ]

        while worklist:
            iterations += 1
            if iterations > self.max_iterations:
                raise RuntimeError(
                    f"dataflow analysis did not converge on {body.fn_name!r}"
                )
            block_index = worklist.pop(0)
            in_worklist.discard(block_index)

            state = self.lattice.copy(entry_states[block_index])
            block = body.blocks[block_index]
            for location in block_locations[block_index]:
                self.transfer(state, body, location)
            # The out-state of the block's *last* processing is its final
            # exit state; overwritten on every revisit.
            recorded_exits[block_index] = state

            for successor in block.terminator.successors():
                if join_into is not None:
                    changed = join_into(entry_states[successor], state)
                else:
                    joined = self.lattice.join(entry_states[successor], state)
                    changed = not self.lattice.equals(joined, entry_states[successor])
                    if changed:
                        entry_states[successor] = joined
                if changed and successor not in in_worklist:
                    # Insert keeping rough reverse post-order priority.
                    in_worklist.add(successor)
                    worklist.append(successor)
                    worklist.sort(key=lambda b: position.get(b, len(position)))

        return FixpointResult(
            body=body,
            lattice=self.lattice,
            transfer=self.transfer,
            entry_states=entry_states,
            iterations=iterations,
            recorded_exits=recorded_exits,
        )
