"""Vectorized uint64 word matrices: the storage layer of the vector engine.

The int-bitset substrate (:mod:`repro.dataflow.bitset`) already turned the
Θ-lattice operations into C-level big-int arithmetic, but the matrix itself
is still a Python dict of heap-allocated ints: every join walks rows one at
a time, every state copy rebuilds a dict.  This module packs a whole
function body's Θ into **one contiguous 2-D numpy array** of ``uint64``
words — ``places × ceil(locations / 64)`` — the same memory layout rustc's
``BitMatrix`` uses:

* **join** is a single ``np.bitwise_or(dst, src, out=dst)`` over the whole
  matrix plus one vectorized dirty-word reduction (``np.any(src & ~dst)``),
* **row gathers** (conflict-mask reads) are one fancy-index +
  ``np.bitwise_or.reduce`` over the conflicting rows,
* **row scatters** (strong/weak writes) are one fancy-indexed ``|=`` or
  assignment,
* **copy** is one ``memcpy``.

The location domain is fully pre-interned by :func:`repro.mir.indices.index_body`
(argument tags first, then every body location), so the word count per row is
fixed for the lifetime of an analysis; the place domain is append-only, so
row *capacity* grows by amortised doubling.  Rows keep a parallel Python-int
``keys_mask`` of materialised rows — the same tracked-row bitset the int
engine maintains — because the conflict-mask walks of the dependency context
intersect against ancestor/descendant masks that live as Python ints in
:class:`~repro.mir.indices.PlaceDomain`.

Invariant: **untracked rows are all-zero.**  Rows are only ever materialised
(never dropped), so equality and fingerprints can compare raw words.

numpy is an optional dependency of the wider package (the bitset and object
engines are pure Python); this module hosts the one guarded import that the
vector engine and :mod:`repro.eval.stats` share.  Everything degrades to a
clear :class:`RuntimeError` rather than an ``ImportError`` at call time.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

try:  # The one place numpy is imported; everything else goes through here.
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is installed in CI
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

WORD_BITS = 64


def require_numpy(feature: str):
    """The shared numpy guard: returns the module or raises a clear error.

    Used by the vector engine (``AnalysisConfig(engine="vector")``) and the
    statistics helpers; the message names the feature so a missing optional
    dependency is a one-line diagnosis, not an ``AttributeError`` deep in a
    kernel.
    """
    if not HAVE_NUMPY:
        raise RuntimeError(
            f"{feature} requires numpy, which is not installed; "
            "install numpy or use the pure-Python engines "
            "(engine='bitset' or engine='object')"
        )
    return np


def words_for(num_bits: int) -> int:
    """How many 64-bit words a row of ``num_bits`` columns needs (min 1)."""
    return max(1, (num_bits + WORD_BITS - 1) // WORD_BITS)


_WORD_MASK = (1 << WORD_BITS) - 1


def int_to_words(bits: int, num_words: int):
    """A Python int bitset as a fresh ``(num_words,)`` uint64 array.

    Raises ``OverflowError`` when ``bits`` does not fit — the location domain
    is frozen after :func:`~repro.mir.indices.index_body`, so an overflow is
    a logic error, not a resize request.
    """
    if num_words == 1:
        if bits > _WORD_MASK:
            raise OverflowError("int too big to convert")
        return np.array([bits], dtype=np.uint64)
    if num_words <= 4:
        if bits >> (num_words * WORD_BITS):
            raise OverflowError("int too big to convert")
        return np.array(
            [(bits >> (WORD_BITS * i)) & _WORD_MASK for i in range(num_words)],
            dtype=np.uint64,
        )
    return np.frombuffer(
        bits.to_bytes(num_words * 8, "little"), dtype="<u8"
    ).astype(np.uint64, copy=True)


def words_to_int(row) -> int:
    """The Python int bitset of one word row (the boundary conversion)."""
    return int.from_bytes(np.ascontiguousarray(row, dtype="<u8").tobytes(), "little")


def iter_mask(mask: int) -> Iterator[int]:
    """Indices of the set bits of a Python-int mask, ascending."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


def mask_rows(mask: int) -> List[int]:
    """The set-bit indices of a mask as a list (fancy-index row selector)."""
    out: List[int] = []
    while mask:
        lsb = mask & -mask
        out.append(lsb.bit_length() - 1)
        mask ^= lsb
    return out


class VecMatrix:
    """A dense matrix of bit rows: one contiguous ``(capacity, W)`` uint64 array.

    The drop-in vector counterpart of
    :class:`~repro.dataflow.bitset.IndexMatrix`: the int-facing API (``row`` /
    ``set_row`` / ``or_row`` / ``union_into`` / ``fingerprint``) has identical
    semantics — including the dirty bits and the digest format, asserted
    byte-identical by the cross-tier property tests — while the word-facing
    API (``row_words`` / ``set_row_words`` / ``or_rows_words``) is what the
    vectorized transfer function uses to stay out of Python-int space on the
    hot path.
    """

    __slots__ = ("words", "keys_mask", "num_words")

    def __init__(self, num_words: int, capacity: int = 0, words=None, keys_mask: int = 0):
        require_numpy("the vector dataflow substrate (VecMatrix)")
        self.num_words = num_words
        if words is not None:
            self.words = words
        else:
            self.words = np.zeros((max(capacity, 1), num_words), dtype=np.uint64)
        self.keys_mask = keys_mask

    # -- capacity ---------------------------------------------------------------

    def _ensure(self, index: int) -> None:
        """Grow row capacity (amortised doubling) to make ``index`` addressable."""
        capacity = self.words.shape[0]
        if index < capacity:
            return
        new_capacity = max(capacity * 2, index + 1)
        grown = np.zeros((new_capacity, self.num_words), dtype=np.uint64)
        grown[:capacity] = self.words
        self.words = grown

    # -- int-facing rows (IndexMatrix-compatible) --------------------------------

    def __len__(self) -> int:
        return self.keys_mask.bit_count()

    def __contains__(self, row: int) -> bool:
        return (self.keys_mask >> row) & 1 == 1

    def row_indices(self) -> List[int]:
        return mask_rows(self.keys_mask)

    def row(self, index: int) -> int:
        if not (self.keys_mask >> index) & 1:
            return 0
        return words_to_int(self.words[index])

    def set_row(self, index: int, bits: int) -> None:
        self._ensure(index)
        self.words[index] = int_to_words(bits, self.num_words)
        self.keys_mask |= 1 << index

    def or_row(self, index: int, bits: int) -> bool:
        """Union ``bits`` into one row; True when the row grew (dirty bit).

        Like :meth:`IndexMatrix.or_row`, materialising an absent row is dirty
        even when ``bits`` is empty — a tracked place with no dependencies is
        different from an untracked place.
        """
        bit = 1 << index
        if not (self.keys_mask & bit):
            self.set_row(index, bits)
            return True
        before = self.row(index)
        after = before | bits
        if after != before:
            self.words[index] = int_to_words(after, self.num_words)
            return True
        return False

    def items(self) -> Iterator[Tuple[int, int]]:
        for index in mask_rows(self.keys_mask):
            yield index, words_to_int(self.words[index])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VecMatrix):
            return self.equals(other)
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("VecMatrix is mutable and unhashable")

    # -- word-facing rows (the hot path) -----------------------------------------

    def row_words(self, index: int):
        """One row as a ``(W,)`` view — callers must not mutate it."""
        return self.words[index]

    def set_row_words(self, index: int, row_words) -> None:
        words = self.words
        if index >= words.shape[0]:
            self._ensure(index)
            words = self.words
        words[index] = row_words
        self.keys_mask |= 1 << index

    # Fancy indexing (words[list_of_rows]) costs ~5x a short loop of basic
    # row indexing at row counts below ~8 (the list→array conversion
    # dominates), and almost every gather/scatter of the transfer function
    # touches only a handful of conflict rows — so both batched operations
    # switch strategy on the row count.
    _SMALL_ROWS = 8

    def or_rows_words(self, rows: List[int], row_words) -> None:
        """Scatter: union one word vector into many rows at once."""
        words = self.words
        if len(rows) <= self._SMALL_ROWS:
            for index in rows:
                np.bitwise_or(words[index], row_words, out=words[index])
        else:
            words[rows] |= row_words

    def gather_or(self, rows: List[int]):
        """The union of ``rows`` as a fresh ``(W,)`` vector (one reduce)."""
        words = self.words
        count = len(rows)
        if count == 0:
            return np.zeros(self.num_words, dtype=np.uint64)
        if count == 1:
            return words[rows[0]].copy()
        if count <= self._SMALL_ROWS:
            acc = np.bitwise_or(words[rows[0]], words[rows[1]])
            for index in rows[2:]:
                np.bitwise_or(acc, words[index], out=acc)
            return acc
        return np.bitwise_or.reduce(words[rows], axis=0)

    # -- whole-matrix operations -------------------------------------------------

    def union_into(self, other: "VecMatrix") -> bool:
        """In-place union of ``other`` into self; returns the dirty bit.

        The join of the vector fixpoint: one whole-matrix ``bitwise_or`` and
        one vectorized new-bit reduction, no per-row Python loop.  A row
        materialised by ``other`` but absent here is dirty even if all-zero,
        matching :meth:`IndexMatrix.union_into`.
        """
        if other.keys_mask == 0:
            return False
        src_rows = other.words.shape[0]
        self._ensure(src_rows - 1)
        dst = self.words[:src_rows]
        src = other.words[:src_rows]
        dirty = bool(other.keys_mask & ~self.keys_mask) or bool(np.any(src & ~dst))
        np.bitwise_or(dst, src, out=dst)
        self.keys_mask |= other.keys_mask
        return dirty

    def union(self, other: "VecMatrix") -> "VecMatrix":
        """Out-of-place union: one array copy plus one ``bitwise_or``.

        The allocation-minimal form of ``copy().union_into(other)`` for
        callers that do not need the dirty bit (e.g. Θ's out-of-place
        ``join``).
        """
        a, b = self.words, other.words
        if a.shape[0] < b.shape[0]:
            a, b = b, a
        merged = a.copy()
        prefix = merged[: b.shape[0]]
        np.bitwise_or(prefix, b, out=prefix)
        return VecMatrix(
            self.num_words, words=merged, keys_mask=self.keys_mask | other.keys_mask
        )

    def copy(self) -> "VecMatrix":
        return VecMatrix(
            self.num_words, words=self.words.copy(), keys_mask=self.keys_mask
        )

    def equals(self, other: "VecMatrix") -> bool:
        if self.keys_mask != other.keys_mask:
            return False
        common = min(self.words.shape[0], other.words.shape[0])
        # Untracked rows are all-zero, so any rows beyond the shorter
        # capacity are equal iff the longer side is zero there; tracked rows
        # always fit both capacities when the key masks agree.
        if not np.array_equal(self.words[:common], other.words[:common]):
            return False
        longer = self.words if self.words.shape[0] > common else other.words
        return not np.any(longer[common:])

    def popcount_total(self) -> int:
        """Total number of set bits across all rows (Θ's ``total_size``)."""
        return int(np.bitwise_count(self.words).sum())

    def density(self, num_rows: int, num_cols: int) -> float:
        """Fraction of set bits over a ``num_rows × num_cols`` dense grid."""
        cells = num_rows * num_cols
        if cells <= 0:
            return 0.0
        return self.popcount_total() / cells

    def to_rows_dict(self) -> Dict[int, int]:
        """The materialised rows as an ``IndexMatrix``-style dict."""
        return {index: bits for index, bits in self.items()}

    def fingerprint(self) -> str:
        """Byte-identical to :meth:`IndexMatrix.fingerprint` on equal content.

        Cache keys must never diverge by engine tier, so the digest is
        computed over the same ``index:hex`` rendering of sorted materialised
        rows; the cross-tier property test in ``tests/test_vecbitset.py``
        pins this equality over random matrices.
        """
        joined = "|".join(
            f"{index}:{format(bits, 'x')}" for index, bits in self.items()
        )
        return hashlib.sha256(joined.encode("ascii")).hexdigest()[:16]


def matrix_from_int_rows(rows: Dict[int, int], num_bits: int) -> "VecMatrix":
    """Build a :class:`VecMatrix` from ``IndexMatrix``-style int rows."""
    num_words = words_for(num_bits)
    capacity = (max(rows) + 1) if rows else 0
    matrix = VecMatrix(num_words, capacity=capacity)
    for index, bits in rows.items():
        matrix.set_row(index, bits)
    return matrix
