"""Dense bitsets and index matrices: the storage layer of the fast engine.

Python's arbitrary-precision integers are contiguous arrays of 30-bit limbs,
so a dependency set over an interned :class:`~repro.mir.indices.LocationDomain`
stored as one ``int`` supports union (``|``), subset (``a & b == a``) and
membership (``bits >> i & 1``) as single C-level operations — the same trick
rustc's ``BitSet``/``IndexMatrix`` play with ``u64`` words.  The indexed
dependency context stores raw ints on its hot path; the classes here are the
structured faces of that representation:

* :class:`BitSet` — a tiny mutable wrapper whose in-place union returns a
  *dirty bit*, the change signal the worklist fixpoint keys off;
* :class:`IndexMatrix` — rows of bits keyed by a row index (place index →
  location bits for Θ, place index → place bits for loan sets), with
  key-wise in-place union, equality, and a stable fingerprint.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Tuple

try:  # Python >= 3.10
    (0).bit_count

    def popcount(bits: int) -> int:
        """Number of set bits of a non-negative int."""
        return bits.bit_count()

except AttributeError:  # pragma: no cover - exercised on 3.9 CI only

    def popcount(bits: int) -> int:
        """Number of set bits of a non-negative int."""
        return bin(bits).count("1")


def iter_bits(bits: int) -> Iterator[int]:
    """Indices of the set bits of ``bits``, ascending."""
    while bits:
        lsb = bits & -bits
        yield lsb.bit_length() - 1
        bits ^= lsb


def mask_of(indices: Iterable[int]) -> int:
    """The bitset with exactly ``indices`` set."""
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


class BitSet:
    """A mutable set of small ints backed by one Python int."""

    __slots__ = ("bits",)

    def __init__(self, bits: int = 0):
        self.bits = bits

    @classmethod
    def from_indices(cls, indices: Iterable[int]) -> "BitSet":
        return cls(mask_of(indices))

    def __len__(self) -> int:
        return popcount(self.bits)

    def __bool__(self) -> bool:
        return self.bits != 0

    def __contains__(self, index: int) -> bool:
        return (self.bits >> index) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.bits)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSet):
            return self.bits == other.bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitSet({{{', '.join(map(str, self))}}})"

    # -- mutation ---------------------------------------------------------------

    def add(self, index: int) -> bool:
        """Set one bit; True when it was newly set (the dirty bit)."""
        before = self.bits
        self.bits = before | (1 << index)
        return self.bits != before

    def ior(self, other: "BitSet") -> bool:
        """In-place union; True when any new bit appeared (the dirty bit)."""
        return self.ior_bits(other.bits)

    def ior_bits(self, bits: int) -> bool:
        """In-place union with a raw mask; True when any new bit appeared."""
        before = self.bits
        self.bits = before | bits
        return self.bits != before

    # -- queries ----------------------------------------------------------------

    def is_subset_of(self, other: "BitSet") -> bool:
        return self.bits & other.bits == self.bits

    def copy(self) -> "BitSet":
        return BitSet(self.bits)

    def fingerprint(self) -> str:
        """Stable content digest (hex of the underlying integer)."""
        return hashlib.sha256(format(self.bits, "x").encode("ascii")).hexdigest()[:16]


class IndexMatrix:
    """A sparse matrix of bit rows: row index → int bitset.

    Absent rows read as empty; a row is materialised by the first write.
    This is the value representation behind the indexed dependency context
    (Θ as place-index rows of location bits) and the interned loan map.
    """

    __slots__ = ("rows", "keys_mask")

    def __init__(self, rows: Dict[int, int] = None, keys_mask: int = None):
        self.rows: Dict[int, int] = {} if rows is None else rows
        # Bitset of materialised row indices, maintained on every insert: it
        # lets conflict scans intersect against the tracked-row set in one
        # ``&`` and then visit only the overlapping rows.
        if keys_mask is None:
            keys_mask = mask_of(self.rows)
        self.keys_mask = keys_mask

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: int) -> bool:
        return row in self.rows

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IndexMatrix):
            return self.rows == other.rows
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("IndexMatrix is mutable and unhashable")

    # -- rows -------------------------------------------------------------------

    def row(self, index: int) -> int:
        return self.rows.get(index, 0)

    def set_row(self, index: int, bits: int) -> None:
        self.rows[index] = bits
        self.keys_mask |= 1 << index

    def or_row(self, index: int, bits: int) -> bool:
        """Union ``bits`` into one row; True when the row grew (dirty bit).

        The row is materialised even when ``bits`` is empty — presence of a
        row is meaningful to Θ (a tracked place with no dependencies is
        different from an untracked place).
        """
        before = self.rows.get(index)
        if before is None:
            self.rows[index] = bits
            self.keys_mask |= 1 << index
            return True
        after = before | bits
        if after != before:
            self.rows[index] = after
            return True
        return False

    def row_indices(self) -> List[int]:
        return list(self.rows.keys())

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self.rows.items())

    # -- whole-matrix operations -------------------------------------------------

    def union_into(self, other: "IndexMatrix") -> bool:
        """Key-wise in-place union of ``other`` into self; returns the dirty
        bit — the change-detection signal of the bitset fixpoint driver."""
        dirty = False
        rows = self.rows
        for index, bits in other.rows.items():
            before = rows.get(index)
            if before is None:
                rows[index] = bits
                dirty = True
            else:
                after = before | bits
                if after != before:
                    rows[index] = after
                    dirty = True
        self.keys_mask |= other.keys_mask
        return dirty

    def copy(self) -> "IndexMatrix":
        return IndexMatrix(dict(self.rows), self.keys_mask)

    def popcount_total(self) -> int:
        """Total number of set bits across all rows (Θ's ``total_size``)."""
        return sum(popcount(bits) for bits in self.rows.values())

    def density(self, num_rows: int, num_cols: int) -> float:
        """Fraction of set bits over a ``num_rows × num_cols`` dense grid."""
        cells = num_rows * num_cols
        if cells <= 0:
            return 0.0
        return self.popcount_total() / cells

    def fingerprint(self) -> str:
        """A stable digest over sorted rows: equal matrices (as mappings,
        ignoring insertion order) have equal fingerprints."""
        joined = "|".join(
            f"{index}:{format(bits, 'x')}" for index, bits in sorted(self.rows.items())
        )
        return hashlib.sha256(joined.encode("ascii")).hexdigest()[:16]
