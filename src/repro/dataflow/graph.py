"""Light-weight CFG views and traversal orders.

The dominator and dataflow algorithms only need successor/predecessor maps
and a designated entry node.  :class:`CfgView` provides that abstraction both
for a MIR body's forward CFG and for its reverse CFG (used to compute
post-dominators), including the standard trick of adding a virtual exit node
that all return blocks feed into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.mir.ir import Body


VIRTUAL_EXIT = -1


@dataclass
class CfgView:
    """An explicit graph over block indices (plus optional virtual exit)."""

    entry: int
    successors: Dict[int, List[int]] = field(default_factory=dict)
    predecessors: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def nodes(self) -> List[int]:
        return sorted(self.successors)

    def succ(self, node: int) -> List[int]:
        return self.successors.get(node, [])

    def pred(self, node: int) -> List[int]:
        return self.predecessors.get(node, [])

    def reversed(self) -> "CfgView":
        """The reverse graph (edges flipped), entry becomes the virtual exit."""
        return CfgView(
            entry=VIRTUAL_EXIT if VIRTUAL_EXIT in self.successors else self.entry,
            successors={n: list(p) for n, p in self.predecessors.items()},
            predecessors={n: list(s) for n, s in self.successors.items()},
        )


def forward_cfg(body: Body) -> CfgView:
    """The forward CFG of a body, entry at block 0."""
    successors: Dict[int, List[int]] = {}
    predecessors: Dict[int, List[int]] = {i: [] for i in range(len(body.blocks))}
    for index, block in enumerate(body.blocks):
        succ = list(block.terminator.successors())
        successors[index] = succ
        for s in succ:
            predecessors[s].append(index)
    return CfgView(entry=0, successors=successors, predecessors=predecessors)


def exit_augmented_cfg(body: Body) -> CfgView:
    """The forward CFG with a virtual exit node fed by every return block.

    Post-dominator computation needs a single exit; panics are excluded from
    control dependence per Section 4.1, so only `Return` terminators connect
    to the virtual exit.
    """
    view = forward_cfg(body)
    view.successors[VIRTUAL_EXIT] = []
    view.predecessors[VIRTUAL_EXIT] = []
    for block in body.return_blocks():
        view.successors[block] = view.successors.get(block, []) + [VIRTUAL_EXIT]
        view.predecessors[VIRTUAL_EXIT].append(block)
    return view


def reverse_post_order(view: CfgView, entry: Optional[int] = None) -> List[int]:
    """Reverse post-order over ``view`` starting at ``entry``.

    Reverse post-order is the canonical iteration order for forward dataflow
    problems: it visits each node after as many of its predecessors as
    possible, which minimises the number of fixpoint iterations.
    """
    start = view.entry if entry is None else entry
    visited = set()
    post_order: List[int] = []

    def visit(node: int) -> None:
        stack = [(node, iter(view.succ(node)))]
        visited.add(node)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(view.succ(successor))))
                    advanced = True
                    break
            if not advanced:
                post_order.append(current)
                stack.pop()

    visit(start)
    return list(reversed(post_order))


def post_order(view: CfgView, entry: Optional[int] = None) -> List[int]:
    """Post-order traversal (children before parents)."""
    return list(reversed(reverse_post_order(view, entry)))
