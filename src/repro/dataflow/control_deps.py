"""Control dependence following Ferrante, Ottenstein & Warren (1987).

An instruction X is control-dependent on a branch Y when Y decides whether X
executes: there is a path from Y to X along which every node is
post-dominated by X, and Y itself is not post-dominated by X.  The standard
way to compute this — and the one the paper cites — is via the
post-dominance frontier: block B is control-dependent on exactly the blocks
in its post-dominance frontier.

The information flow analysis uses this to add *indirect* flows: when a
mutation happens inside a branch, the branch's discriminant (and the switch
location itself) are added to the mutated place's dependencies (see Figure 1,
where ``*h`` picks up the dependency on ``switch _4``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.dataflow.dominators import compute_post_dominators
from repro.mir.ir import Body, Location, SwitchBool


@dataclass
class ControlDependencies:
    """Control dependence information for one body."""

    body: Body
    # block -> set of blocks whose terminator controls it
    block_deps: Dict[int, Set[int]] = field(default_factory=dict)

    def controlling_blocks(self, block: int) -> Set[int]:
        """Blocks whose branch decides whether ``block`` executes."""
        return self.block_deps.get(block, set())

    def controlling_locations(self, block: int) -> List[Location]:
        """Locations of the switch terminators controlling ``block``."""
        out = []
        for controller in sorted(self.controlling_blocks(block)):
            out.append(self.body.terminator_location(controller))
        return out

    def is_control_dependent(self, block: int, on_block: int) -> bool:
        return on_block in self.controlling_blocks(block)


def compute_control_deps(body: Body, transitive: bool = True) -> ControlDependencies:
    """Compute per-block control dependencies of ``body``.

    With ``transitive=True`` (the default, matching Flowistry), nested
    branches accumulate: a block inside two nested ``if``s depends on both
    switches.  The non-transitive variant is exposed for the design-ablation
    benchmarks.
    """
    post_dom = compute_post_dominators(body)
    direct: Dict[int, Set[int]] = {i: set() for i in range(len(body.blocks))}

    # Block B is control dependent on block Y iff B is in the post-dominance
    # frontier of... careful with direction: using the reverse-graph dominator
    # tree, the frontier of B contains the branch blocks B is control
    # dependent on.
    for block in range(len(body.blocks)):
        for controller in post_dom.frontier.get(block, set()):
            if controller < 0:
                continue
            if isinstance(body.blocks[controller].terminator, SwitchBool):
                direct[block].add(controller)

    if not transitive:
        return ControlDependencies(body=body, block_deps=direct)

    # Transitive closure: if B depends on Y and Y depends on Z, B depends on Z.
    closed: Dict[int, Set[int]] = {b: set(deps) for b, deps in direct.items()}
    changed = True
    while changed:
        changed = False
        for block, deps in closed.items():
            additions: Set[int] = set()
            for controller in deps:
                additions |= closed.get(controller, set()) - deps
            if additions:
                deps |= additions
                changed = True
    return ControlDependencies(body=body, block_deps=closed)


def control_dependence_matrix(body: Body) -> Dict[int, Set[int]]:
    """Convenience: map each block to the set of blocks it controls."""
    deps = compute_control_deps(body)
    controls: Dict[int, Set[int]] = {i: set() for i in range(len(body.blocks))}
    for block, controllers in deps.block_deps.items():
        for controller in controllers:
            controls[controller].add(block)
    return controls
