"""Dominator and post-dominator trees (Cooper, Harvey & Kennedy 2001).

The paper computes control dependence from the post-dominator tree and its
frontier ("we compute control-dependencies by generating the post-dominator
tree and frontier of the CFG using the algorithms of Cooper et al. and Cytron
et al.", Section 4.1).  This module implements exactly those two algorithms
over the :class:`~repro.dataflow.graph.CfgView` abstraction so they can run
on either the forward CFG (dominators) or the exit-augmented reverse CFG
(post-dominators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.dataflow.graph import CfgView, VIRTUAL_EXIT, exit_augmented_cfg, forward_cfg, reverse_post_order
from repro.mir.ir import Body


@dataclass
class DominatorTree:
    """An immediate-dominator tree plus the derived dominance frontier."""

    entry: int
    idom: Dict[int, Optional[int]] = field(default_factory=dict)
    frontier: Dict[int, Set[int]] = field(default_factory=dict)

    def dominates(self, a: int, b: int) -> bool:
        """Whether ``a`` dominates ``b`` (reflexively)."""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            if node == self.entry and node != a:
                return False
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def children(self, node: int) -> List[int]:
        return sorted(n for n, parent in self.idom.items() if parent == node and n != node)

    def dominators_of(self, node: int) -> List[int]:
        """All dominators of ``node``, from the node itself up to the entry."""
        out: List[int] = []
        current: Optional[int] = node
        seen: Set[int] = set()
        while current is not None and current not in seen:
            out.append(current)
            seen.add(current)
            if current == self.entry:
                break
            current = self.idom.get(current)
        return out


def _compute_idoms(view: CfgView) -> Dict[int, Optional[int]]:
    """Cooper-Harvey-Kennedy iterative immediate-dominator computation."""
    order = reverse_post_order(view)
    index_of = {node: i for i, node in enumerate(order)}
    idom: Dict[int, Optional[int]] = {node: None for node in order}
    idom[view.entry] = view.entry

    def intersect(a: int, b: int) -> int:
        finger_a, finger_b = a, b
        while finger_a != finger_b:
            while index_of[finger_a] > index_of[finger_b]:
                finger_a = idom[finger_a]  # type: ignore[assignment]
            while index_of[finger_b] > index_of[finger_a]:
                finger_b = idom[finger_b]  # type: ignore[assignment]
        return finger_a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == view.entry:
                continue
            new_idom: Optional[int] = None
            for pred in view.pred(node):
                if pred not in index_of:
                    continue  # unreachable predecessor
                if idom.get(pred) is None:
                    continue
                if new_idom is None:
                    new_idom = pred
                else:
                    new_idom = intersect(pred, new_idom)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def _compute_frontier(view: CfgView, idom: Dict[int, Optional[int]]) -> Dict[int, Set[int]]:
    """Cytron et al. dominance frontier over the same view."""
    frontier: Dict[int, Set[int]] = {node: set() for node in idom}
    for node in idom:
        preds = [p for p in view.pred(node) if p in idom]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner: Optional[int] = pred
            while runner is not None and runner != idom[node] and runner in idom:
                frontier[runner].add(node)
                if runner == idom.get(runner):
                    break
                runner = idom.get(runner)
    return frontier


def compute_dominators_view(view: CfgView) -> DominatorTree:
    """Dominator tree of an arbitrary CFG view."""
    idom = _compute_idoms(view)
    frontier = _compute_frontier(view, idom)
    return DominatorTree(entry=view.entry, idom=idom, frontier=frontier)


def compute_dominators(body: Body) -> DominatorTree:
    """Dominator tree of a MIR body's forward CFG."""
    return compute_dominators_view(forward_cfg(body))


def compute_post_dominators(body: Body) -> DominatorTree:
    """Post-dominator tree of a MIR body.

    Computed as the dominator tree of the reverse CFG rooted at a virtual
    exit node that all ``return`` blocks feed into.  Panic edges do not exist
    in our MIR, which matches the paper's choice to exclude panics from
    control dependence.
    """
    augmented = exit_augmented_cfg(body)
    reverse = CfgView(
        entry=VIRTUAL_EXIT,
        successors={n: list(p) for n, p in augmented.predecessors.items()},
        predecessors={n: list(s) for n, s in augmented.successors.items()},
    )
    return compute_dominators_view(reverse)
