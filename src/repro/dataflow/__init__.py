"""Dataflow substrate: CFG utilities, dominators, control dependence, fixpoints.

Section 4.1 of the paper lists the classical machinery Flowistry reuses:

* a forward, flow-sensitive dataflow analysis iterated to fixpoint over a
  join-semilattice (:mod:`repro.dataflow.engine`),
* post-dominator trees computed with the algorithm of Cooper, Harvey and
  Kennedy (:mod:`repro.dataflow.dominators`),
* dominance frontiers in the style of Cytron et al., used to derive control
  dependence following Ferrante et al. (:mod:`repro.dataflow.control_deps`).
"""

from repro.dataflow.graph import CfgView, reverse_post_order
from repro.dataflow.dominators import DominatorTree, compute_dominators, compute_post_dominators
from repro.dataflow.control_deps import ControlDependencies, compute_control_deps
from repro.dataflow.engine import (
    ForwardAnalysis,
    FixpointResult,
    InPlaceJoinSemiLattice,
    JoinSemiLattice,
)
from repro.dataflow.bitset import BitSet, IndexMatrix, iter_bits, mask_of, popcount

__all__ = [
    "BitSet",
    "CfgView",
    "ControlDependencies",
    "DominatorTree",
    "FixpointResult",
    "ForwardAnalysis",
    "IndexMatrix",
    "InPlaceJoinSemiLattice",
    "JoinSemiLattice",
    "iter_bits",
    "mask_of",
    "popcount",
    "compute_control_deps",
    "compute_dominators",
    "compute_post_dominators",
    "reverse_post_order",
]
