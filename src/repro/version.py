"""Single source of truth for the package version.

The version lives in ``pyproject.toml`` (the packaging metadata); everything
else — ``repro.__version__``, ``repro version`` / ``repro --version``, the
server hello message, and the JSON-RPC ``serverInfo`` block — reads it from
here so the number can never fork between the CLI, the protocol docs, and
the published package.

Resolution order:

1. ``pyproject.toml`` next to the source tree (the in-repo case, where the
   package is driven via ``PYTHONPATH=src`` and may not be installed),
2. installed distribution metadata (``importlib.metadata``), for wheels that
   do not ship ``pyproject.toml``,
3. a sentinel fallback, so the version is always a string.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional

DIST_NAME = "repro-flowistry"

_FALLBACK = "0.0.0+unknown"


def _version_from_pyproject() -> Optional[str]:
    """Read ``[project] version`` from the repository's ``pyproject.toml``.

    Guards on the project *name*: a vendored copy of this package can sit
    under some other project's root (the ``PYTHONPATH=src`` layout), in
    which case ``parents[2]/pyproject.toml`` belongs to that project and
    must not be trusted.
    """
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    try:  # tomllib is stdlib from 3.11; fall back to a regex before that.
        import tomllib

        project = tomllib.loads(text).get("project", {})
        if project.get("name") != DIST_NAME:
            return None
        version = project.get("version")
        return str(version) if version else None
    except Exception:
        if not re.search(
            rf'^name\s*=\s*"{re.escape(DIST_NAME)}"', text, flags=re.MULTILINE
        ):
            return None
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
        return match.group(1) if match else None


def _version_from_metadata() -> Optional[str]:
    """Read the installed distribution's version, if the package is installed."""
    try:
        from importlib import metadata

        return metadata.version(DIST_NAME)
    except Exception:
        return None


def get_version() -> str:
    """The package version string (never raises)."""
    return _version_from_pyproject() or _version_from_metadata() or _FALLBACK


__version__ = get_version()
