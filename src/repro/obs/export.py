"""Export formats: Prometheus text exposition, Chrome trace files, trace dirs.

These are the boundary between the in-process recorders and everything that
reads them from outside — ``curl``-style scraping via ``repro metrics
--prometheus``, ``chrome://tracing`` / Perfetto via the Chrome trace-event
JSON, and ``repro serve --trace-dir`` which persists one rotated JSON file
per traced request.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.metrics import escape_label_value, parse_series
from repro.obs.trace import Trace

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Metric names are repo-controlled, but sanitise defensively anyway."""
    return "repro_" + _NAME_OK.sub("_", name)


# ---------------------------------------------------------------------------
# Help-text registry (the `# HELP` lines of the exposition format)
# ---------------------------------------------------------------------------

#: Registered family help texts, keyed by the *registry* metric name (before
#: the ``repro_`` prefix).  Instrumented modules add theirs at import time
#: via :func:`register_help`; families without an entry fall back to a
#: generic line so every family still exposes exactly one ``# HELP``.
_HELP_TEXTS = {
    "requests_total": "Protocol requests handled, by method/status/protocol.",
    "request_seconds": "End-to-end request latency, by method.",
    "stage_seconds": "Pipeline stage wall time (parse, typecheck, fixpoint, ...).",
    "cache_get_total": "Summary-cache lookups, by kind and serving tier (miss = neither).",
    "cache_put_total": "Summary-cache writes, by kind.",
    "lock_wait_seconds": "Time spent waiting for a workspace lock, by mode.",
    "lock_hold_seconds": "Time a workspace lock was held, by mode.",
    "server_inflight": "Requests currently executing in the socket server.",
    "server_connections": "Open socket connections.",
    "scheduler_wave_size": "Functions per SCC wave scheduled by the batch scheduler.",
    "scheduler_batches_total": "Scheduled batches, by execution mode.",
    "massrun_programs_total": "Mass-evaluation programs processed, by verdict.",
    "massrun_program_seconds": "Per-program wall time in mass evaluation.",
    "fanout_chunks_total": "Process-pool chunks dispatched, by worker.",
    "fanout_busy_seconds": "Per-chunk worker busy time across fan-outs, by worker.",
}


def register_help(name: str, text: str) -> None:
    """Register the ``# HELP`` text for a metric family (registry name)."""
    _HELP_TEXTS[name] = text


def help_text(name: str) -> Optional[str]:
    """The registered help text for a registry metric name, if any."""
    return _HELP_TEXTS.get(name)


def _escape_help(text: str) -> str:
    """HELP-line escaping: backslash and newline only (quotes stay)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(snapshot: dict) -> str:
    """A registry snapshot in the Prometheus text exposition format.

    Counter and gauge series render verbatim; histograms expand into the
    conventional ``_bucket``/``_sum``/``_count`` triple with cumulative
    ``le`` buckets and the implicit ``+Inf``.

    Hardened per the exposition-format contract: label values are
    backslash-escaped (``\\``, ``"``, newline), and series are *grouped by
    family* — each family renders as one ``# HELP`` line (registered text
    via :func:`register_help`, escaped, generic fallback) and one ``# TYPE``
    line followed by every one of its series, even when the snapshot
    interleaves series of different families.  A family keeps the kind it was first seen with;
    a same-named series of a different kind is dropped rather than
    emitted under a contradictory ``# TYPE``.
    """
    # family name -> (kind, [series lines]); insertion-ordered, so output
    # order follows first appearance in the snapshot.
    families: "dict[str, tuple[str, List[str]]]" = {}
    raw_names: "dict[str, str]" = {}

    def family(name: str, kind: str, raw: str) -> Optional[List[str]]:
        known = families.get(name)
        if known is None:
            lines: List[str] = []
            families[name] = (kind, lines)
            raw_names[name] = raw
            return lines
        if known[0] != kind:
            return None
        return known[1]

    for series, value in snapshot.get("counters", {}).items():
        name, labels = parse_series(series)
        prom = _prom_name(name)
        lines = family(prom, "counter", name)
        if lines is not None:
            lines.append(f"{prom}{_prom_labels(labels)} {value:g}")
    for series, value in snapshot.get("gauges", {}).items():
        name, labels = parse_series(series)
        prom = _prom_name(name)
        lines = family(prom, "gauge", name)
        if lines is not None:
            lines.append(f"{prom}{_prom_labels(labels)} {value:g}")
    for series, hist in snapshot.get("histograms", {}).items():
        name, labels = parse_series(series)
        prom = _prom_name(name)
        lines = family(prom, "histogram", name)
        if lines is None:
            continue
        for bound, cumulative in hist.get("buckets", []):
            bucket_labels = dict(labels, le=f"{bound:g}")
            lines.append(f"{prom}_bucket{_prom_labels(bucket_labels)} {cumulative}")
        inf_labels = dict(labels, le="+Inf")
        lines.append(f"{prom}_bucket{_prom_labels(inf_labels)} {hist.get('count', 0)}")
        lines.append(f"{prom}_sum{_prom_labels(labels)} {hist.get('sum', 0.0):g}")
        lines.append(f"{prom}_count{_prom_labels(labels)} {hist.get('count', 0)}")

    out: List[str] = []
    for name, (kind, lines) in families.items():
        raw = raw_names.get(name, name)
        text = _HELP_TEXTS.get(raw) or f"repro metric {raw}."
        out.append(f"# HELP {name} {_escape_help(text)}")
        out.append(f"# TYPE {name} {kind}")
        out.extend(lines)
    return "\n".join(out) + "\n"


def chrome_trace_document(trace: Trace) -> dict:
    """The flamegraph-ready Chrome trace-event JSON document for one trace."""
    return {
        "traceEvents": trace.to_chrome_events(),
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace.trace_id},
    }


def write_chrome_trace(path: Union[str, Path], trace: Trace) -> Path:
    """Write one trace as a Chrome trace-event JSON file; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(chrome_trace_document(trace), sort_keys=True), encoding="utf-8"
    )
    return target


class TraceDirWriter:
    """Rotated per-request trace files for ``repro serve --trace-dir``.

    Each traced request becomes ``trace-<trace_id>.json`` (Chrome trace-event
    format plus the span tree, so one file serves both Perfetto and the CLI
    renderer).  Rotation keeps at most ``max_files`` on disk, dropping the
    oldest; writes are best-effort — a full disk must never fail a request.
    """

    def __init__(self, directory: Union[str, Path], max_files: int = 256):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_files = max(1, max_files)
        self._lock = threading.Lock()
        self.written = 0

    def write(self, trace: Optional[Trace]) -> Optional[Path]:
        if trace is None:
            return None
        document = chrome_trace_document(trace)
        document["spanTree"] = trace.to_dict()
        path = self.directory / f"trace-{trace.trace_id}.json"
        with self._lock:
            try:
                path.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
            except OSError:
                return None
            self.written += 1
            self._rotate()
        return path

    def _rotate(self) -> None:
        try:
            files = sorted(
                self.directory.glob("trace-*.json"), key=lambda p: p.stat().st_mtime
            )
        except OSError:
            return
        for stale in files[: max(0, len(files) - self.max_files)]:
            try:
                stale.unlink()
            except OSError:
                pass
