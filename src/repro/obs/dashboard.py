"""The ``repro top`` terminal dashboard: a live fleet view of one server.

Each frame is built from the three telemetry endpoints a running ``repro
serve --port`` process already exposes — ``metrics`` (the registry
snapshot), ``health`` (uptime, error rate, per-method rolling latency), and
``slowlog`` (tail-sampled slow-request exemplars) — so the dashboard needs
no server-side changes and works against any server new enough to answer
those methods.

Frame construction is pure (:func:`build_frame` takes the three response
dicts plus per-method latency history and returns lines), so tests render
frames from canned responses without a socket.  :class:`TopState`
accumulates the short per-method p95 history between frames that feeds the
sparkline trend column (:func:`repro.obs.history.sparkline` glyphs).

The fleet part: worker-labelled series folded into the parent registry by
:mod:`repro.obs.remote` render as one lane per worker pid — chunks, busy
seconds, and share of the fan-out — so a ``warm``-heavy server shows where
its process pool actually spent its time.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.history import sparkline
from repro.obs.metrics import parse_series

#: Points of per-method history kept for the trend sparkline.
HISTORY_POINTS = 32


class TopState:
    """Rolling per-method latency history across dashboard frames."""

    def __init__(self, points: int = HISTORY_POINTS):
        self.points = max(2, points)
        self._latency: Dict[str, Deque[float]] = {}

    def observe(self, method: str, p95_ms: float) -> None:
        window = self._latency.get(method)
        if window is None:
            window = self._latency[method] = deque(maxlen=self.points)
        window.append(p95_ms)

    def trend(self, method: str) -> str:
        return sparkline(list(self._latency.get(method, ())), width=self.points)


def _fmt_uptime(seconds: float) -> str:
    seconds = max(0, int(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def _cache_rates(counters: Dict[str, float]) -> List[str]:
    """Per-kind cache hit rates from ``cache_get_total{kind,tier}`` series."""
    by_kind: Dict[str, Dict[str, float]] = {}
    for series, value in counters.items():
        name, labels = parse_series(series)
        if name != "cache_get_total":
            continue
        kind = labels.get("kind", "?")
        tier = labels.get("tier", "?")
        tiers = by_kind.setdefault(kind, {})
        tiers[tier] = tiers.get(tier, 0.0) + value
    lines = []
    for kind in sorted(by_kind):
        tiers = by_kind[kind]
        total = sum(tiers.values())
        if total <= 0:
            continue
        hits = tiers.get("memory", 0.0) + tiers.get("disk", 0.0)
        lines.append(
            "  {:<10} {:>6.1f}% hit  ({:.0f} memory / {:.0f} disk / {:.0f} miss)".format(
                kind,
                100.0 * hits / total,
                tiers.get("memory", 0.0),
                tiers.get("disk", 0.0),
                tiers.get("miss", 0.0),
            )
        )
    return lines


def _worker_lanes(counters: Dict[str, float], histograms: Dict[str, dict]) -> List[str]:
    """One line per worker pid, from the worker-labelled folded series."""
    chunks: Dict[str, float] = {}
    busy: Dict[str, float] = {}
    for series, value in counters.items():
        name, labels = parse_series(series)
        worker = labels.get("worker")
        if worker is None:
            continue
        if name == "fanout_chunks_total":
            chunks[worker] = chunks.get(worker, 0.0) + value
    for series, hist in histograms.items():
        name, labels = parse_series(series)
        worker = labels.get("worker")
        if worker is None:
            continue
        if name == "fanout_busy_seconds":
            busy[worker] = busy.get(worker, 0.0) + float(hist.get("sum", 0.0))
    workers = sorted(set(chunks) | set(busy))
    if not workers:
        return []
    total_busy = sum(busy.values()) or 1.0
    lines = []
    for worker in workers:
        share = busy.get(worker, 0.0) / total_busy
        bar = "#" * max(0, min(20, int(round(share * 20))))
        lines.append(
            "  worker {:<10} {:>5.0f} chunk(s)  busy {:>8.3f}s  {:<20} {:>5.1f}%".format(
                worker, chunks.get(worker, 0.0), busy.get(worker, 0.0), bar, 100 * share
            )
        )
    return lines


def build_frame(
    metrics: dict,
    health: Optional[dict],
    slowlog: Optional[dict],
    state: Optional[TopState] = None,
    width: int = 78,
) -> List[str]:
    """Render one dashboard frame (a list of lines) from endpoint responses.

    ``metrics`` is a registry snapshot (``metrics`` method result);
    ``health``/``slowlog`` are their method results or ``None`` when the
    server has them disabled.  ``state``, when given, is fed this frame's
    per-method p95 and renders the trend sparkline column.
    """
    lines: List[str] = []
    counters = metrics.get("counters", {}) if metrics else {}
    gauges = metrics.get("gauges", {}) if metrics else {}
    histograms = metrics.get("histograms", {}) if metrics else {}

    header = "repro top"
    if health:
        header += "  up {}  {} req  {:.2f}% err".format(
            _fmt_uptime(health.get("uptime_seconds", 0.0)),
            health.get("requests_total", 0),
            100.0 * health.get("error_rate", 0.0),
        )
        header += "  inflight {}  conns {}".format(
            health.get("inflight", 0), health.get("open_connections", 0)
        )
    else:
        inflight = gauges.get("server_inflight", 0)
        header += f"  inflight {inflight:g}"
    lines.append(header[:width])
    lines.append("-" * min(width, len(header) + 2))

    methods = (health or {}).get("methods", {})
    if methods:
        lines.append("  {:<10} {:>7} {:>6} {:>9} {:>9} {:>9}  trend".format(
            "method", "count", "err", "p50", "p95", "p99"
        ))
        for method in sorted(methods):
            entry = methods[method]
            p95 = entry.get("p95_ms", 0.0)
            if state is not None:
                state.observe(method, p95)
            lines.append(
                "  {:<10} {:>7} {:>6} {:>7.1f}ms {:>7.1f}ms {:>7.1f}ms  {}".format(
                    method[:10],
                    entry.get("count", 0),
                    entry.get("errors", 0),
                    entry.get("p50_ms", 0.0),
                    p95,
                    entry.get("p99_ms", 0.0),
                    state.trend(method) if state is not None else "",
                )
            )

    cache_lines = _cache_rates(counters)
    if cache_lines:
        lines.append("cache")
        lines.extend(cache_lines)

    worker_lines = _worker_lanes(counters, histograms)
    if worker_lines:
        lines.append("workers")
        lines.extend(worker_lines)

    entries = (slowlog or {}).get("entries", [])
    if entries:
        lines.append("slow requests (threshold {} ms)".format(
            (slowlog or {}).get("threshold_ms", "?")
        ))
        for entry in entries[:5]:
            attribution = ""
            workers = entry.get("workers")
            if workers:
                attribution = "  workers=" + ",".join(str(w) for w in workers)
            lines.append(
                "  {:>9.1f}ms  {:<8} {:<8} trace {}{}".format(
                    entry.get("duration_ms", 0.0),
                    str(entry.get("method", "?"))[:8],
                    str(entry.get("status", "?"))[:8],
                    entry.get("trace_id", "?"),
                    attribution,
                )
            )
    return lines


def run_top(
    host: str,
    port: int,
    interval: float,
    frames: Optional[int],
    out,
    clear: bool = True,
) -> int:
    """Poll a live server and render dashboard frames until interrupted.

    One connection serves all frames (the mux keeps it open); ``frames``
    bounds the loop for scripted runs, ``None`` means run until ^C.
    """
    import json
    import socket as socket_module

    try:
        conn = socket_module.create_connection((host, port), timeout=10.0)
    except OSError as error:
        out.write(f"error: cannot connect to {host}:{port}: {error}\n")
        return 2
    state = TopState()
    rendered = 0
    try:
        with conn:
            rfile = conn.makefile("r", encoding="utf-8", newline="\n")
            wfile = conn.makefile("w", encoding="utf-8", newline="\n")
            hello = json.loads(rfile.readline())
            if "hello" not in hello:
                out.write(f"error: unexpected greeting: {hello}\n")
                return 2

            def ask(request: dict) -> Optional[dict]:
                wfile.write(json.dumps(request) + "\n")
                wfile.flush()
                response = json.loads(rfile.readline())
                return response.get("result") if response.get("ok") else None

            while frames is None or rendered < frames:
                metrics = ask({"id": 1, "method": "metrics"}) or {}
                health = ask({"id": 2, "method": "health"})
                slowlog = ask(
                    {"id": 3, "method": "slowlog", "params": {"traces": False}}
                )
                frame = build_frame(metrics, health, slowlog, state=state)
                if clear:
                    out.write("\x1b[2J\x1b[H")
                out.write("\n".join(frame) + "\n")
                if hasattr(out, "flush"):
                    out.flush()
                rendered += 1
                if frames is not None and rendered >= frames:
                    break
                time.sleep(max(0.1, interval))
    except KeyboardInterrupt:
        pass
    except OSError as error:
        out.write(f"error: connection lost: {error}\n")
        return 2
    return 0
