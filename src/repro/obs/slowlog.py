"""Slow-request log with tail-based trace exemplars, plus a health tracker.

Tracing every request is cheap; *keeping* every trace is not.  The
:class:`SlowLog` applies tail-based sampling: the server traces each
request, hands the finished span tree here, and the log retains the full
tree only for requests that were actually slow — above an explicit
latency threshold, or above the rolling p99 once enough samples exist
(``adaptive`` mode, the default).  Retained exemplars live in a bounded
ring buffer, newest first, so the memory cost is fixed no matter how long
the server runs.

:class:`HealthTracker` is the cheap always-on sibling: per-method rolling
latency windows (bounded deques), request/error totals, and uptime — the
payload behind the ``health`` protocol method and ``repro metrics
--health``.

Both are deliberately lock-light (one mutex each, O(1) observes) and
neither consults the global kill switch: they are request accounting, not
tracing, and the server depends on ``health`` answering even when spans
are disabled.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 when empty)."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class SlowLogEntry:
    """One retained slow request: identity, timing, and its span tree."""

    __slots__ = (
        "trace_id", "method", "workspace", "status", "duration_ms",
        "threshold_ms", "trace", "workers", "trace_path",
    )

    def __init__(
        self,
        trace_id: str,
        method: Optional[str],
        workspace: str,
        status: str,
        duration_ms: float,
        threshold_ms: float,
        trace: Optional[dict],
        workers: Optional[List[str]] = None,
        trace_path: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.method = method
        self.workspace = workspace
        self.status = status
        self.duration_ms = duration_ms
        self.threshold_ms = threshold_ms
        self.trace = trace
        # Fan-out attribution: which worker pids contributed grafted spans,
        # and where the trace-dir writer persisted the full trace — so a slow
        # entry joins against its on-disk trace file by trace_id.
        self.workers = workers
        self.trace_path = trace_path

    def to_dict(self, include_trace: bool = True) -> dict:
        entry = {
            "trace_id": self.trace_id,
            "method": self.method,
            "workspace": self.workspace,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 3),
            "threshold_ms": round(self.threshold_ms, 3),
        }
        if self.workers:
            entry["workers"] = list(self.workers)
        if self.trace_path is not None:
            entry["trace_path"] = self.trace_path
        if include_trace and self.trace is not None:
            entry["trace"] = self.trace
        return entry


class SlowLog:
    """Bounded ring of slow-request exemplars with an adaptive threshold.

    ``threshold_ms`` fixes the slowness bar explicitly; without it the bar
    is the rolling p99 of the last ``window`` requests, active only once
    ``min_samples`` have been seen (before that nothing is "slow" — the
    first requests of a cold server are not anomalies, they are warmup).
    """

    def __init__(
        self,
        capacity: int = 32,
        threshold_ms: Optional[float] = None,
        window: int = 512,
        min_samples: int = 50,
        tail_fraction: float = 0.99,
    ):
        self.capacity = max(1, capacity)
        self.explicit_threshold_ms = threshold_ms
        self.window = max(min_samples, window)
        self.min_samples = max(1, min_samples)
        self.tail_fraction = tail_fraction
        self._durations: Deque[float] = deque(maxlen=self.window)
        self._entries: Deque[SlowLogEntry] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.observed = 0
        self.kept = 0

    def current_threshold_ms(self) -> Optional[float]:
        """The active slowness bar, or ``None`` while still calibrating."""
        if self.explicit_threshold_ms is not None:
            return self.explicit_threshold_ms
        with self._lock:
            if len(self._durations) < self.min_samples:
                return None
            ordered = sorted(self._durations)
        return _percentile(ordered, self.tail_fraction)

    def observe(
        self,
        method: Optional[str],
        duration_ms: float,
        trace_id: str,
        status: str = "ok",
        workspace: str = "default",
        trace: Optional[dict] = None,
        workers: Optional[List[str]] = None,
        trace_path: Optional[str] = None,
    ) -> bool:
        """Record one finished request; returns whether it was retained.

        The threshold is read *before* this request's duration joins the
        rolling window, so a single outlier cannot hide itself by dragging
        the p99 up as it arrives.
        """
        threshold = self.current_threshold_ms()
        with self._lock:
            self.observed += 1
            self._durations.append(duration_ms)
            if threshold is None or duration_ms < threshold:
                return False
            self.kept += 1
            self._entries.append(
                SlowLogEntry(
                    trace_id=trace_id,
                    method=method,
                    workspace=workspace,
                    status=status,
                    duration_ms=duration_ms,
                    threshold_ms=threshold,
                    trace=trace,
                    workers=workers,
                    trace_path=trace_path,
                )
            )
            return True

    def entries(self, limit: Optional[int] = None, include_traces: bool = True) -> List[dict]:
        """Retained exemplars, newest first."""
        with self._lock:
            snapshot = list(self._entries)
        snapshot.reverse()
        if limit is not None:
            snapshot = snapshot[: max(0, limit)]
        return [entry.to_dict(include_trace=include_traces) for entry in snapshot]

    def snapshot(self, limit: Optional[int] = None, include_traces: bool = True) -> dict:
        threshold = self.current_threshold_ms()
        return {
            "threshold_ms": round(threshold, 3) if threshold is not None else None,
            "adaptive": self.explicit_threshold_ms is None,
            "observed": self.observed,
            "kept": self.kept,
            "capacity": self.capacity,
            "entries": self.entries(limit=limit, include_traces=include_traces),
        }


class _MethodWindow:
    __slots__ = ("durations", "count", "errors")

    def __init__(self, window: int):
        self.durations: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.errors = 0


class HealthTracker:
    """Always-on request accounting behind the ``health`` method.

    Tracks totals plus a rolling latency window per method; the snapshot
    reports p50/p95/p99/max over each window, overall error rate, and
    uptime.  ``now`` is injectable for tests — production uses wall time.
    """

    def __init__(self, window: int = 256, started_at: Optional[float] = None):
        self.window = max(8, window)
        self.started_at = started_at if started_at is not None else time.time()
        self._methods: Dict[str, _MethodWindow] = {}
        self._lock = threading.Lock()
        self.requests_total = 0
        self.errors_total = 0

    def observe(self, method: Optional[str], duration_ms: float, ok: bool = True) -> None:
        name = method if isinstance(method, str) else "(invalid)"
        with self._lock:
            self.requests_total += 1
            if not ok:
                self.errors_total += 1
            window = self._methods.get(name)
            if window is None:
                window = self._methods[name] = _MethodWindow(self.window)
            window.count += 1
            if not ok:
                window.errors += 1
            window.durations.append(duration_ms)

    def snapshot(self, now: Optional[float] = None, extra: Optional[dict] = None) -> dict:
        clock = now if now is not None else time.time()
        with self._lock:
            methods = {}
            for name, window in sorted(self._methods.items()):
                ordered = sorted(window.durations)
                methods[name] = {
                    "count": window.count,
                    "errors": window.errors,
                    "window": len(ordered),
                    "p50_ms": round(_percentile(ordered, 0.50), 3),
                    "p95_ms": round(_percentile(ordered, 0.95), 3),
                    "p99_ms": round(_percentile(ordered, 0.99), 3),
                    "max_ms": round(ordered[-1], 3) if ordered else 0.0,
                }
            total = self.requests_total
            errors = self.errors_total
        health = {
            "status": "ok",
            "uptime_seconds": round(max(0.0, clock - self.started_at), 3),
            "requests_total": total,
            "errors_total": errors,
            "error_rate": round(errors / total, 6) if total else 0.0,
            "methods": methods,
        }
        if extra:
            health.update(extra)
        return health
