"""Cross-process telemetry: trace propagation and worker metrics shipping.

The obs layer of PRs 6–7 is contextvar- and process-local: every span and
metric recorded inside a :mod:`repro.service.scheduler` pool worker used to
be silently discarded, so a traced ``--workers N`` run showed a parent that
appeared idle while the workers did all the work.  This module carries
telemetry across the process boundary in both directions:

* **Down** — a :class:`TraceCarrier` (trace id + the parent's clock base +
  the observability switches) is pickled into every pool task and seeds the
  worker's ambient recorder, so worker-side ``span()``/``stage()`` calls
  record exactly as they would in-process.

* **Up** — each task returns a :class:`WorkerTelemetry` envelope alongside
  its results: the serialized span subtree (timestamps already rebased onto
  the parent's ``perf_counter_ns`` clock), the worker's full metrics delta
  (including per-bucket histogram deltas, so folded counts reconcile
  *exactly* against a serial run), and pid/rss/cpu-time samples.  The parent
  grafts the span subtrees under the dispatching wave/shard span — one clock
  base, so a Chrome export shows true wave parallelism with per-worker
  lanes — and folds the metric deltas into its own registry under a
  ``worker`` label.

Clock rebasing: ``perf_counter_ns`` origins are not guaranteed comparable
across processes, but wall clocks are shared.  The carrier ships the
parent's ``wall_ns - perf_ns`` offset; the worker computes its own offset
and shifts every span timestamp by the difference, landing the subtree
directly on the parent's monotonic axis.

:class:`FanoutTelemetry` is the parent-side collector the scheduler drives:
it owns the carrier, absorbs envelopes as chunks complete, and aggregates
per-wave utilization/straggler statistics (busy-fraction, max/median task
skew, per-worker attribution) for ``warm`` responses, massrun reports, and
``repro analyze --workers --trace``.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import state
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    parse_series,
)
from repro.obs.trace import Span, new_trace_id, start_trace

#: Name of the span a worker opens around one dispatched chunk; its
#: ``worker`` attribute (the worker pid) is what assigns Chrome trace lanes.
WORKER_SPAN = "worker_chunk"


def _wall_perf_offset_ns() -> int:
    """This process's ``wall_ns - perf_ns`` offset (the shared clock bridge)."""
    return time.time_ns() - time.perf_counter_ns()


# ---------------------------------------------------------------------------
# The downward half: the trace-context carrier
# ---------------------------------------------------------------------------


class TraceCarrier:
    """The parent's trace context, pickled into every pool task.

    Carries everything a worker needs to record telemetry the parent can
    merge: the trace id (one id spans the whole fan-out), whether the parent
    actually has an active trace (``traced`` — metrics still ship when only
    metrics are on), the global kill-switch state, and the parent's
    wall/perf clock offset for rebasing.
    """

    __slots__ = ("trace_id", "enabled", "traced", "clock_offset_ns")

    def __init__(
        self,
        trace_id: str,
        enabled: bool,
        traced: bool,
        clock_offset_ns: int,
    ):
        self.trace_id = trace_id
        self.enabled = enabled
        self.traced = traced
        self.clock_offset_ns = clock_offset_ns

    @classmethod
    def capture(cls, traced: Optional[bool] = None) -> "TraceCarrier":
        """Snapshot the calling process's trace context.

        ``traced`` defaults to whether an ambient span is open right now —
        the scheduler calls this before opening its wave span, so passing
        the intent explicitly is also supported.
        """
        from repro.obs.trace import active_span

        if traced is None:
            traced = active_span() is not None
        return cls(
            trace_id=new_trace_id(),
            enabled=state.ENABLED,
            traced=bool(traced) and state.ENABLED,
            clock_offset_ns=_wall_perf_offset_ns(),
        )

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "enabled": self.enabled,
            "traced": self.traced,
            "clock_offset_ns": self.clock_offset_ns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceCarrier":
        return cls(
            trace_id=str(data.get("trace_id") or new_trace_id()),
            enabled=bool(data.get("enabled", False)),
            traced=bool(data.get("traced", False)),
            clock_offset_ns=int(data.get("clock_offset_ns", 0)),
        )


# ---------------------------------------------------------------------------
# Wire form of a span subtree
# ---------------------------------------------------------------------------
#
# Span.to_dict() is the human-facing form (durations in ms, no absolute
# timestamps); merging needs the raw nanosecond endpoints, so subtrees cross
# the process boundary in a separate wire form.


def span_to_wire(span: Span, shift_ns: int = 0) -> dict:
    """One span subtree with raw ``perf_counter_ns`` endpoints, recursively.

    ``shift_ns`` is added to every endpoint — the worker uses it to rebase
    its subtree onto the parent's clock before shipping.
    """
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "start_ns": span.start_ns + shift_ns,
        "end_ns": (span.end_ns if span.end_ns is not None else span.start_ns)
        + shift_ns,
        "children": [span_to_wire(child, shift_ns) for child in span.children],
    }


def wire_to_span(wire: dict, shift_ns: int = 0) -> Span:
    """Rebuild a :class:`Span` tree from its wire form, shifting timestamps.

    ``shift_ns`` is added to every endpoint — the worker ships subtrees
    already rebased onto the parent clock, so the parent grafts with 0.
    """
    span = Span.__new__(Span)
    span.name = str(wire.get("name", "?"))
    span.attrs = dict(wire.get("attrs") or {})
    span.start_ns = int(wire.get("start_ns", 0)) + shift_ns
    span.end_ns = int(wire.get("end_ns", wire.get("start_ns", 0))) + shift_ns
    span.children = [
        wire_to_span(child, shift_ns) for child in wire.get("children") or ()
    ]
    return span


def workers_in_trace(tree: Optional[dict]) -> List[str]:
    """The distinct worker labels appearing in a ``Span.to_dict`` tree.

    Used to attribute a slow request to the pool workers that served it;
    sorted for stable output, empty for purely in-process requests.
    """
    if not tree:
        return []
    found: set = set()
    stack = [tree]
    while stack:
        node = stack.pop()
        worker = (node.get("attrs") or {}).get("worker")
        if worker is not None:
            found.add(str(worker))
        stack.extend(node.get("children") or ())
    return sorted(found)


# ---------------------------------------------------------------------------
# Exact metric deltas (bucket-preserving, unlike metrics.snapshot_delta)
# ---------------------------------------------------------------------------


def _per_bucket(hist: dict) -> Tuple[List[float], List[int]]:
    """Bounds and per-bucket (non-cumulative) counts, overflow last."""
    bounds: List[float] = []
    per_bucket: List[int] = []
    previous = 0
    for bound, cumulative in hist.get("buckets") or []:
        bounds.append(float(bound))
        per_bucket.append(int(cumulative) - previous)
        previous = int(cumulative)
    per_bucket.append(int(hist.get("count", 0)) - previous)  # the +Inf bucket
    return bounds, per_bucket


def full_metrics_delta(before: dict, after: dict) -> dict:
    """Like :func:`repro.obs.metrics.snapshot_delta`, but lossless.

    Histogram entries keep their bucket bounds and *per-bucket* count
    deltas, so the parent can replay the worker's observations into a
    same-shaped histogram and the folded series sum exactly — bucket by
    bucket — to what a serial run would have recorded.  Gauges are dropped:
    they are process-local levels, meaningless summed across workers.
    """
    counters: Dict[str, float] = {}
    for series, value in after.get("counters", {}).items():
        diff = value - before.get("counters", {}).get(series, 0.0)
        if diff:
            counters[series] = diff
    histograms: Dict[str, dict] = {}
    for series, hist in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(series) or {}
        count = int(hist.get("count", 0)) - int(prior.get("count", 0))
        if not count:
            continue
        bounds, after_buckets = _per_bucket(hist)
        _, before_buckets = _per_bucket(prior) if prior else (bounds, [0] * len(after_buckets))
        if len(before_buckets) != len(after_buckets):
            before_buckets = [0] * len(after_buckets)
        histograms[series] = {
            "count": count,
            "sum": hist.get("sum", 0.0) - prior.get("sum", 0.0),
            "min": hist.get("min"),
            "max": hist.get("max"),
            "bounds": bounds,
            "bucket_deltas": [
                a - b for a, b in zip(after_buckets, before_buckets)
            ],
        }
    return {"counters": counters, "histograms": histograms}


def fold_worker_metrics(
    registry: MetricsRegistry, delta: dict, worker: str
) -> int:
    """Fold one worker's metric delta into ``registry`` under a ``worker`` label.

    Returns the number of series folded.  Series that already carry a
    ``worker`` label (a worker that itself fanned out) are folded under the
    original label rather than double-nested.
    """
    folded = 0
    for series, value in (delta.get("counters") or {}).items():
        name, labels = parse_series(series)
        labels.setdefault("worker", worker)
        registry.counter(name, **labels).inc(value)
        folded += 1
    for series, hist in (delta.get("histograms") or {}).items():
        name, labels = parse_series(series)
        labels.setdefault("worker", worker)
        bounds = tuple(hist.get("bounds") or ())
        target = registry.histogram(name, buckets=bounds or None, **labels)
        target.merge_delta(
            count=int(hist.get("count", 0)),
            total=float(hist.get("sum", 0.0)),
            bucket_deltas=hist.get("bucket_deltas") or (),
            observed_min=hist.get("min"),
            observed_max=hist.get("max"),
        )
        folded += 1
    return folded


# ---------------------------------------------------------------------------
# The upward half: the worker-telemetry envelope
# ---------------------------------------------------------------------------


class WorkerTelemetry:
    """What one pool task ships back beside its results.

    Plain-data (picklable) and already rebased: ``spans`` is the wire-form
    subtree on the *parent's* clock, ``metrics`` the lossless delta of what
    the chunk recorded, plus worker identity and resource samples.
    """

    __slots__ = (
        "pid",
        "meta",
        "tasks",
        "busy_ns",
        "spans",
        "metrics",
        "max_rss_kb",
        "cpu_seconds",
    )

    def __init__(
        self,
        pid: int,
        meta: dict,
        tasks: int,
        busy_ns: int,
        spans: Optional[dict],
        metrics: dict,
        max_rss_kb: int,
        cpu_seconds: float,
    ):
        self.pid = pid
        self.meta = meta
        self.tasks = tasks
        self.busy_ns = busy_ns
        self.spans = spans
        self.metrics = metrics
        self.max_rss_kb = max_rss_kb
        self.cpu_seconds = cpu_seconds


def _rusage_sample() -> Tuple[float, int]:
    """(cpu seconds, max rss kB) of this process; zeros where unsupported."""
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        return usage.ru_utime + usage.ru_stime, int(usage.ru_maxrss)
    except (ImportError, OSError):  # non-POSIX fallback
        return 0.0, 0


def run_instrumented(worker, chunk, carrier: TraceCarrier, meta: dict):
    """Run ``worker(chunk)`` inside the carrier's context; capture an envelope.

    The worker-process half of the fan-out protocol.  Returns
    ``(envelope, results)`` where ``envelope`` is ``None`` whenever the
    carrier says observability is off — the disabled path adds nothing but
    one attribute check to the task.
    """
    if not carrier.enabled:
        return None, worker(chunk)
    registry = get_registry()
    before = registry.snapshot()
    cpu_before, _ = _rusage_sample()
    start_ns = time.perf_counter_ns()
    root_wire: Optional[dict] = None
    if carrier.traced:
        with start_trace(WORKER_SPAN, trace_id=carrier.trace_id) as trace:
            if trace is not None:
                trace.root.set(worker=os.getpid(), tasks=len(chunk), **meta)
            results = worker(chunk)
        if trace is not None:
            shift = _wall_perf_offset_ns() - carrier.clock_offset_ns
            root_wire = span_to_wire(trace.root, shift)
    else:
        results = worker(chunk)
    busy_ns = time.perf_counter_ns() - start_ns
    cpu_after, rss_kb = _rusage_sample()
    envelope = WorkerTelemetry(
        pid=os.getpid(),
        meta=dict(meta),
        tasks=len(chunk),
        busy_ns=busy_ns,
        spans=root_wire,
        metrics=full_metrics_delta(before, registry.snapshot()),
        max_rss_kb=rss_kb,
        cpu_seconds=max(0.0, cpu_after - cpu_before),
    )
    return envelope, results


# -- module-level pool glue (must pickle by reference) ------------------------

_WRAPPED_WORKER = None
_WRAPPED_CARRIER: Optional[TraceCarrier] = None


def telemetry_init(worker, base_initializer, base_initargs, carrier_dict: dict) -> None:
    """Pool initializer: run the consumer's initializer, then arm telemetry.

    Stored module-globals make :func:`run_telemetry_chunk` picklable while
    the wrapped worker stays exactly the function the consumer registered.
    The worker process's kill switch is aligned with the parent's, so a
    disabled parent never pays worker-side recording either.
    """
    global _WRAPPED_WORKER, _WRAPPED_CARRIER
    carrier = TraceCarrier.from_dict(carrier_dict)
    state.set_enabled(carrier.enabled)
    if base_initializer is not None:
        base_initializer(*base_initargs)
    _WRAPPED_WORKER = worker
    _WRAPPED_CARRIER = carrier


def run_telemetry_chunk(payload):
    """Pool task: ``(meta, chunk)`` → ``(envelope, results)``."""
    meta, chunk = payload
    assert _WRAPPED_WORKER is not None and _WRAPPED_CARRIER is not None
    return run_instrumented(_WRAPPED_WORKER, chunk, _WRAPPED_CARRIER, meta)


# ---------------------------------------------------------------------------
# Parent-side collection and aggregation
# ---------------------------------------------------------------------------


def _percentile(ordered: List[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class FanoutTelemetry:
    """Parent-side collector for one fan-out (a ``run_waves``/``map_shards`` call).

    Owns the carrier shipped to workers, absorbs envelopes as chunks
    complete (grafting span subtrees under the dispatching span and folding
    metric deltas into the registry under a ``worker`` label), and
    aggregates the per-wave utilization and straggler statistics the
    ``warm`` response, massrun report, and ``repro top`` lanes are built
    from.  Serial runs feed the same chunk accounting through
    :meth:`record_local`, so utilization is reported in every mode.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        traced: Optional[bool] = None,
    ):
        self.carrier = TraceCarrier.capture(traced=traced)
        self.registry = registry if registry is not None else get_registry()
        self.max_workers = max_workers
        self.mode: Optional[str] = None
        self.workers: Dict[str, dict] = {}
        self.groups: List[dict] = []
        self._chunks: Dict[int, List[dict]] = {}
        self.grafted_spans = 0
        self.folded_series = 0

    # -- recording ----------------------------------------------------------

    def arm(self) -> None:
        """Refresh the carrier's trace/switch state at dispatch time.

        The collector is often constructed before the caller opens its
        trace; the scheduler calls this right before building pool
        payloads, so ``traced`` reflects whether a span is ambient *now*.
        """
        from repro.obs.trace import active_span

        self.carrier.enabled = state.ENABLED
        self.carrier.traced = state.ENABLED and active_span() is not None
        self.carrier.clock_offset_ns = _wall_perf_offset_ns()

    def payload(self, meta: dict, chunk) -> tuple:
        """The ``(meta, chunk)`` task payload for :func:`run_telemetry_chunk`."""
        return (dict(meta), chunk)

    def absorb(self, envelope: Optional[WorkerTelemetry], parent_span: Optional[Span], group: int) -> None:
        """Merge one worker envelope: graft spans, fold metrics, log the chunk."""
        if envelope is None:
            return
        label = str(envelope.pid)
        if envelope.spans is not None and parent_span is not None:
            parent_span.children.append(wire_to_span(envelope.spans))
            self.grafted_spans += 1
        if envelope.metrics:
            self.folded_series += fold_worker_metrics(
                self.registry, envelope.metrics, label
            )
        self._log_chunk(
            group,
            worker=label,
            tasks=envelope.tasks,
            busy_seconds=envelope.busy_ns / 1e9,
            cpu_seconds=envelope.cpu_seconds,
            max_rss_kb=envelope.max_rss_kb,
        )

    def record_local(self, group: int, tasks: int, busy_seconds: float) -> None:
        """Account one serially-executed chunk (the degrade/serial paths)."""
        cpu = 0.0
        self._log_chunk(
            group,
            worker=f"local:{os.getpid()}",
            tasks=tasks,
            busy_seconds=busy_seconds,
            cpu_seconds=cpu,
            max_rss_kb=0,
        )

    def _log_chunk(
        self,
        group: int,
        *,
        worker: str,
        tasks: int,
        busy_seconds: float,
        cpu_seconds: float,
        max_rss_kb: int,
    ) -> None:
        self._chunks.setdefault(group, []).append(
            {"worker": worker, "tasks": tasks, "busy_seconds": busy_seconds}
        )
        entry = self.workers.setdefault(
            worker,
            {
                "chunks": 0,
                "tasks": 0,
                "busy_seconds": 0.0,
                "cpu_seconds": 0.0,
                "max_rss_kb": 0,
            },
        )
        entry["chunks"] += 1
        entry["tasks"] += tasks
        entry["busy_seconds"] += busy_seconds
        entry["cpu_seconds"] += cpu_seconds
        entry["max_rss_kb"] = max(entry["max_rss_kb"], max_rss_kb)
        # The registry view of the same accounting, so a live server's
        # `repro top` worker lanes survive across fan-outs.
        self.registry.counter("fanout_chunks_total", worker=worker).inc()
        self.registry.histogram("fanout_busy_seconds", worker=worker).observe(
            busy_seconds
        )

    def end_group(self, group: int, *, wall_seconds: float, kind: str = "wave") -> None:
        """Close one barrier group (a wave, or the whole shard fan-out)."""
        chunks = self._chunks.get(group, [])
        busy = [chunk["busy_seconds"] for chunk in chunks]
        lanes = max(1, min(self.max_workers or 1, len(chunks)) if chunks else 1)
        total_busy = sum(busy)
        ordered = sorted(busy)
        median = _percentile(ordered, 0.5)
        self.groups.append(
            {
                "kind": kind,
                "index": group,
                "tasks": sum(chunk["tasks"] for chunk in chunks),
                "chunks": len(chunks),
                "wall_seconds": round(wall_seconds, 6),
                "busy_seconds": round(total_busy, 6),
                "busy_fraction": (
                    round(total_busy / (wall_seconds * lanes), 4)
                    if wall_seconds > 0
                    else None
                ),
                "skew": (
                    round(max(busy) / median, 4) if busy and median > 0 else None
                ),
            }
        )

    def reset(self) -> None:
        """Drop accumulated stats (the serial-fallback path starts over).

        Metric deltas already folded stay folded — a failed pool has by
        definition shipped few or none — but stats must not mix both runs.
        """
        self.workers.clear()
        self.groups.clear()
        self._chunks.clear()
        self.grafted_spans = 0

    # -- aggregation --------------------------------------------------------

    def chunk_busy_seconds(self) -> List[float]:
        return [
            chunk["busy_seconds"]
            for chunks in self._chunks.values()
            for chunk in chunks
        ]

    def utilization(self) -> Optional[float]:
        """Overall busy-fraction: Σ chunk busy / Σ (wave wall × lanes)."""
        denominator = 0.0
        busy = 0.0
        for group in self.groups:
            lanes = max(1, min(self.max_workers or 1, group["chunks"] or 1))
            denominator += group["wall_seconds"] * lanes
            busy += group["busy_seconds"]
        if denominator <= 0:
            return None
        return round(busy / denominator, 4)

    def straggler_stats(self) -> Optional[dict]:
        """Distribution of per-chunk busy time — the straggler picture."""
        busy = sorted(self.chunk_busy_seconds())
        if not busy:
            return None
        median = _percentile(busy, 0.5)
        return {
            "chunks": len(busy),
            "p50_ms": round(_percentile(busy, 0.5) * 1e3, 3),
            "p90_ms": round(_percentile(busy, 0.9) * 1e3, 3),
            "p99_ms": round(_percentile(busy, 0.99) * 1e3, 3),
            "max_ms": round(busy[-1] * 1e3, 3),
            "skew": round(busy[-1] / median, 4) if median > 0 else None,
        }

    def to_json_dict(self) -> dict:
        """The fan-out attribution block carried by reports and responses."""
        return {
            "trace_id": self.carrier.trace_id,
            "mode": self.mode,
            "max_workers": self.max_workers,
            "utilization": self.utilization(),
            "grafted_spans": self.grafted_spans,
            "folded_series": self.folded_series,
            "waves": list(self.groups),
            "workers": {
                worker: {
                    "chunks": entry["chunks"],
                    "tasks": entry["tasks"],
                    "busy_seconds": round(entry["busy_seconds"], 6),
                    "cpu_seconds": round(entry["cpu_seconds"], 6),
                    "max_rss_kb": entry["max_rss_kb"],
                }
                for worker, entry in sorted(self.workers.items())
            },
            "stragglers": self.straggler_stats(),
        }


def render_fanout(fanout: Optional[dict]) -> List[str]:
    """Human-readable lines for a :meth:`FanoutTelemetry.to_json_dict` block."""
    if not fanout:
        return []
    lines: List[str] = []
    utilization = fanout.get("utilization")
    lines.append(
        "fan-out: mode {}, {} worker slot(s), utilization {}".format(
            fanout.get("mode", "?"),
            fanout.get("max_workers", "?"),
            f"{100 * utilization:.1f}%" if utilization is not None else "n/a",
        )
    )
    workers = fanout.get("workers") or {}
    for worker, entry in sorted(workers.items()):
        lines.append(
            "  worker {:<12} {:>3} chunk(s) {:>4} task(s)  busy {:.3f}s"
            "  cpu {:.3f}s  rss {} kB".format(
                worker,
                entry.get("chunks", 0),
                entry.get("tasks", 0),
                entry.get("busy_seconds", 0.0),
                entry.get("cpu_seconds", 0.0),
                entry.get("max_rss_kb", 0),
            )
        )
    stragglers = fanout.get("stragglers")
    if stragglers:
        lines.append(
            "  stragglers: chunk busy p50 {p50_ms}ms  p90 {p90_ms}ms  "
            "p99 {p99_ms}ms  max {max_ms}ms  skew {skew}".format(**stragglers)
        )
    return lines
