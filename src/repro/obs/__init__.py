"""repro.obs — tracing, metrics, and telemetry for the analysis pipeline.

Three pieces, one import surface:

* :mod:`repro.obs.trace` — hierarchical spans recorded through an ambient
  context variable; ``"trace": true`` on any protocol request returns the
  span tree in-band.
* :mod:`repro.obs.metrics` — a process-global registry of labelled
  counters/gauges/histograms with snapshot/delta semantics, exported by the
  server's ``metrics`` method.
* :mod:`repro.obs.export` — Prometheus text exposition, Chrome trace-event
  JSON, and rotated per-request trace files.

Plus the performance observatory built on top of them:

* :mod:`repro.obs.profile` — a sampling profiler attributing wall-time to
  span stacks, with collapsed-stack/flamegraph/Chrome-sample exports.
* :mod:`repro.obs.history` — the append-only benchmark ledger behind
  ``repro bench`` and its regression verdicts.
* :mod:`repro.obs.slowlog` — tail-sampled slow-request exemplars and the
  per-method health windows behind the server's ``slowlog``/``health``
  methods.
* :mod:`repro.obs.remote` — cross-process telemetry for the scheduler's
  fan-out: trace carriers pickled into pool tasks, worker envelopes shipping
  span subtrees + metric deltas back, and the :class:`FanoutTelemetry`
  collector that grafts/folds them in the parent.
* :mod:`repro.obs.dashboard` — the ``repro top`` terminal dashboard frames
  built from a live server's metrics/health/slowlog responses.

``set_enabled(False)`` is the global kill switch; the disabled-path cost is
gated (≤5% on the fig2 workload) by ``benchmarks/test_obs_overhead.py``.
``docs/OBSERVABILITY.md`` catalogues every span and metric this package
records.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.obs.history import (
    BenchRecord,
    HistoryLedger,
    MetricPolicy,
    evaluate_metric,
)
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    parse_series,
    series_name,
    snapshot_delta,
)
from repro.obs.profile import (
    Profile,
    SamplingProfiler,
    flamegraph_html,
    flamegraph_svg,
)
from repro.obs.slowlog import HealthTracker, SlowLog
from repro.obs.state import is_enabled, set_enabled
from repro.obs.trace import (
    Span,
    Trace,
    active_span,
    filter_span_tree,
    new_trace_id,
    render_span_tree,
    span,
    start_trace,
)
from repro.obs.export import help_text, register_help
from repro.obs.remote import (
    FanoutTelemetry,
    TraceCarrier,
    WorkerTelemetry,
    render_fanout,
    workers_in_trace,
)

__all__ = [
    "BenchRecord",
    "FanoutTelemetry",
    "HealthTracker",
    "HistoryLedger",
    "MetricPolicy",
    "MetricsRegistry",
    "Profile",
    "SamplingProfiler",
    "SlowLog",
    "Span",
    "Trace",
    "TraceCarrier",
    "WorkerTelemetry",
    "active_span",
    "evaluate_metric",
    "filter_span_tree",
    "flamegraph_html",
    "flamegraph_svg",
    "get_registry",
    "help_text",
    "is_enabled",
    "new_trace_id",
    "parse_series",
    "register_help",
    "render_fanout",
    "render_span_tree",
    "series_name",
    "set_enabled",
    "snapshot_delta",
    "span",
    "stage",
    "start_trace",
    "workers_in_trace",
]


@contextmanager
def stage(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Span + ``stage_seconds{stage=name}`` histogram in one context manager.

    The shared idiom for pipeline stages (parse, typecheck, mir_lower,
    fixpoint, borrowck, focus_table): the span records into the active trace
    (if any) and the wall time always lands in the stage histogram, so the
    per-stage latency breakdown exists even for untraced traffic.
    """
    started = time.perf_counter()
    with span(name, **attrs) as sp:
        try:
            yield sp
        finally:
            get_registry().histogram("stage_seconds", stage=name).observe(
                time.perf_counter() - started
            )
