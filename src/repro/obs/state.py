"""Global observability kill switch shared by tracing and metrics.

A single module-level flag keeps the disabled path as close to free as the
interpreter allows: instrumented code does one attribute read before touching
any recorder state.  The flag exists for two callers — the overhead-gate
benchmark (which measures instrumented-vs-bare runs in one process) and
operators who want the pipeline stripped to the bone.
"""

from __future__ import annotations

ENABLED = True


def set_enabled(flag: bool) -> None:
    """Turn the whole observability substrate on or off process-wide."""
    global ENABLED
    ENABLED = bool(flag)


def is_enabled() -> bool:
    return ENABLED
