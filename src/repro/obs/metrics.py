"""The metrics registry: labelled counters, gauges, and histograms.

One process-global default registry (:func:`get_registry`) is the sink for
every instrumented layer — parse timings, fixpoint iteration counts, cache
hit/miss tallies, lock wait/hold times, per-method request latency — so the
server's ``metrics`` method, the CLI, and the load harness all read the same
numbers without threading a registry through every constructor.  Tests and
benchmarks that need isolation take a *snapshot* before the work under
observation and diff afterwards (:func:`snapshot_delta`): series are
monotone counters/histograms, so deltas compose even on a shared registry.

Series identity is ``name`` plus a sorted label set, rendered in the
Prometheus idiom (``cache_get_total{kind="record",tier="memory"}``).
Metric *objects* are interned per series and never dropped — instrumented
modules may cache handles — so :meth:`MetricsRegistry.reset` zeroes values
in place instead of discarding the objects.

Every mutating operation checks the global observability switch
(:mod:`repro.obs.state`) first and takes a per-metric lock, so the registry
is safe under the concurrent server's thread pool.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.obs import state

# Latency-shaped default buckets (seconds): 100µs to 10s, roughly 2.5× steps.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Count-shaped buckets for iteration/size histograms.
COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233)

_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value (the Prometheus text-format rules)."""
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n"}


def series_name(name: str, labels: Dict[str, str]) -> str:
    """The canonical ``name{k="v",...}`` rendering of one series.

    Label values are escaped (``\\``, ``"``, newline), so any string —
    including adversarial ones carrying quotes or commas — round-trips
    through :func:`parse_series`.
    """
    if not labels:
        return name
    body = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return f"{name}{{{body}}}"


def parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`series_name`, quote- and escape-aware.

    Values produced by :func:`series_name` are quoted with backslash
    escapes; the scanner honours them, so commas, quotes, braces, and
    newlines inside values parse back exactly.  Legacy unquoted values
    (pre-escaping snapshots) still parse as a fallback.
    """
    if "{" not in series:
        return series, {}
    name, _, rest = series.partition("{")
    body = rest[:-1] if rest.endswith("}") else rest
    labels: Dict[str, str] = {}
    index, length = 0, len(body)
    while index < length:
        equals = body.find("=", index)
        if equals == -1:
            break
        key = body[index:equals]
        index = equals + 1
        if index < length and body[index] == '"':
            index += 1
            chars: List[str] = []
            while index < length:
                char = body[index]
                if char == "\\" and index + 1 < length:
                    escaped = body[index + 1]
                    chars.append(_UNESCAPE.get(escaped, "\\" + escaped))
                    index += 2
                    continue
                if char == '"':
                    index += 1
                    break
                chars.append(char)
                index += 1
            labels[key] = "".join(chars)
        else:
            comma = body.find(",", index)
            if comma == -1:
                comma = length
            labels[key] = body[index:comma].strip('"')
            index = comma
        if index < length and body[index] == ",":
            index += 1
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not state.ENABLED:
            return
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Gauge:
    """A value that goes up and down (queue depths, open connections)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        if not state.ENABLED:
            return
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not state.ENABLED:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    Buckets hold *per-bucket* counts internally; snapshots render them
    cumulatively (Prometheus ``le`` semantics, with the implicit ``+Inf``).
    """

    __slots__ = ("_lock", "buckets", "_bucket_counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self._lock = threading.Lock()
        self.buckets = tuple(sorted(buckets))
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        if not state.ENABLED:
            return
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._bucket_counts[bisect_left(self.buckets, value)] += 1

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.buckets) + 1)
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None

    def merge_delta(
        self,
        count: int,
        total: float,
        bucket_deltas,
        observed_min: Optional[float] = None,
        observed_max: Optional[float] = None,
    ) -> None:
        """Add another histogram's per-bucket delta into this one.

        The cross-process fold (:mod:`repro.obs.remote`): ``bucket_deltas``
        are *non-cumulative* counts aligned to this histogram's buckets with
        the ``+Inf`` overflow last, so worker-side observations land in
        exactly the buckets they would have filled locally and folded series
        reconcile bucket-for-bucket against a serial run.
        """
        if not state.ENABLED:
            return
        with self._lock:
            self.count += count
            self.sum += total
            if observed_min is not None and (self.min is None or observed_min < self.min):
                self.min = observed_min
            if observed_max is not None and (self.max is None or observed_max > self.max):
                self.max = observed_max
            for index, delta in enumerate(bucket_deltas):
                if index < len(self._bucket_counts):
                    self._bucket_counts[index] += int(delta)

    def snapshot_dict(self) -> dict:
        with self._lock:
            cumulative: List[List[object]] = []
            running = 0
            for bound, bucket_count in zip(self.buckets, self._bucket_counts):
                running += bucket_count
                cumulative.append([bound, running])
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": (self.sum / self.count) if self.count else None,
                "buckets": cumulative,
            }


class MetricsRegistry:
    """Thread-safe interning registry of labelled metrics."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[_SeriesKey, Counter] = {}
        self._gauges: Dict[_SeriesKey, Gauge] = {}
        self._histograms: Dict[_SeriesKey, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, str]) -> _SeriesKey:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, **labels: str) -> Counter:
        key = self._key(name, labels)
        found = self._counters.get(key)
        if found is not None:
            return found
        with self._lock:
            return self._counters.setdefault(key, Counter())

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = self._key(name, labels)
        found = self._gauges.get(key)
        if found is not None:
            return found
        with self._lock:
            return self._gauges.setdefault(key, Gauge())

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None, **labels: str
    ) -> Histogram:
        key = self._key(name, labels)
        found = self._histograms.get(key)
        if found is not None:
            return found
        with self._lock:
            return self._histograms.setdefault(
                key, Histogram(buckets if buckets is not None else DEFAULT_BUCKETS)
            )

    def snapshot(self) -> dict:
        """A point-in-time copy: ``{"counters": {series: value}, ...}``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                series_name(name, dict(labels)): counter.value
                for (name, labels), counter in sorted(counters.items())
            },
            "gauges": {
                series_name(name, dict(labels)): gauge.value
                for (name, labels), gauge in sorted(gauges.items())
            },
            "histograms": {
                series_name(name, dict(labels)): histogram.snapshot_dict()
                for (name, labels), histogram in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every series in place (interned handles stay valid)."""
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric.reset()


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two snapshots of the *same* registry.

    Counters and histogram count/sum subtract; gauges take their ``after``
    value (they are levels, not flows).  Series absent from ``before`` are
    treated as zero; unchanged counter series are dropped from the result.
    """
    counters = {}
    for series, value in after.get("counters", {}).items():
        diff = value - before.get("counters", {}).get(series, 0.0)
        if diff:
            counters[series] = diff
    histograms = {}
    for series, hist in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(series, {})
        count = hist.get("count", 0) - prior.get("count", 0)
        total = hist.get("sum", 0.0) - prior.get("sum", 0.0)
        if count:
            histograms[series] = {
                "count": count,
                "sum": total,
                "mean": total / count,
            }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry every layer records into."""
    return _DEFAULT_REGISTRY
