"""Sampling profiler: where wall-time goes, attributed to span stacks.

A :class:`SamplingProfiler` runs a daemon thread that wakes ``hz`` times a
second and records, for each profiled thread, the stack of *span names*
currently open on that thread (published by :mod:`repro.obs.trace` while a
profiler is attached).  Samples taken while no trace is active land under
the synthetic ``(untraced)`` root, so the profile always accounts for 100%
of observed wall-time.

Attributing to spans rather than raw Python frames is deliberate: the span
catalog (``docs/OBSERVABILITY.md``) is the vocabulary the rest of the
observability stack already speaks — the flamegraph rows line up with the
``stage_seconds`` histogram and the in-band trace trees.  ``code_frames=True``
additionally appends the sampled thread's in-repo Python frames below the
span stack for finer-grained hot-spot hunting.

The profiler integrates with the global kill switch: it refuses to start
while ``repro.obs.state`` is disabled, and stops sampling if the switch is
flipped mid-run.  When no profiler is attached the traced path pays one
module-global read per span and the untraced path pays nothing — the ≤5%
overhead gate in ``benchmarks/test_obs_overhead.py`` covers both.

Exports: collapsed-stack text (``frame;frame;frame count`` — the format
``flamegraph.pl`` and speedscope ingest), a standalone flamegraph as SVG or
HTML, and a merge into a Chrome trace-event document (``stackFrames`` +
``samples`` sections sharing the trace's clock base, so Perfetto shows the
samples under the span rows).
"""

from __future__ import annotations

import sys
import threading
import time
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs import state
from repro.obs.trace import _publish_stacks, thread_span_stack

UNTRACED = "(untraced)"

Stack = Tuple[str, ...]


class Profile:
    """An immutable-ish bag of stack samples plus their timestamps.

    ``counts`` maps a root-first stack of frame names to its sample count;
    ``events`` keeps the per-sample ``perf_counter_ns`` timestamps (bounded
    by ``max_events``) so the profile can be merged onto a Chrome trace's
    timeline.  Counts are never dropped — only timestamps are.
    """

    __slots__ = ("hz", "counts", "events", "started_ns", "ended_ns", "max_events", "dropped_events")

    def __init__(self, hz: float = 0.0, max_events: int = 100_000):
        self.hz = hz
        self.counts: Dict[Stack, int] = {}
        self.events: List[Tuple[int, Stack]] = []
        self.started_ns: Optional[int] = None
        self.ended_ns: Optional[int] = None
        self.max_events = max_events
        self.dropped_events = 0

    @property
    def total_samples(self) -> int:
        return sum(self.counts.values())

    @property
    def duration_seconds(self) -> float:
        if self.started_ns is None or self.ended_ns is None:
            return 0.0
        return (self.ended_ns - self.started_ns) / 1e9

    def add(self, stack: Stack, ts_ns: Optional[int] = None) -> None:
        if not stack:
            stack = (UNTRACED,)
        self.counts[stack] = self.counts.get(stack, 0) + 1
        if ts_ns is not None:
            if len(self.events) < self.max_events:
                self.events.append((ts_ns, stack))
            else:
                self.dropped_events += 1

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------

    def root_attribution(self) -> Dict[str, float]:
        """Fraction of samples per root frame name (sums to 1.0 when any)."""
        total = self.total_samples
        if total == 0:
            return {}
        by_root: Dict[str, int] = {}
        for stack, count in self.counts.items():
            by_root[stack[0]] = by_root.get(stack[0], 0) + count
        return {name: count / total for name, count in sorted(by_root.items())}

    def attributed_fraction(self, names: Iterable[str]) -> float:
        """Fraction of samples whose root frame is one of ``names``."""
        wanted = set(names)
        return sum(
            fraction for name, fraction in self.root_attribution().items() if name in wanted
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_collapsed(self) -> str:
        """Collapsed-stack text: one ``frame;frame;frame count`` line per stack.

        Frame names have ``;`` and newlines replaced (they would corrupt the
        format); lines are sorted so output is deterministic.
        """
        lines = []
        for stack, count in sorted(self.counts.items()):
            frames = ";".join(_collapse_frame(frame) for frame in stack)
            lines.append(f"{frames} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_collapsed(cls, text: str, hz: float = 0.0) -> "Profile":
        profile = cls(hz=hz)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            frames, _, count = line.rpartition(" ")
            if not frames or not count.isdigit():
                continue
            stack = tuple(frames.split(";"))
            profile.counts[stack] = profile.counts.get(stack, 0) + int(count)
        return profile

    def to_dict(self) -> dict:
        return {
            "hz": self.hz,
            "total_samples": self.total_samples,
            "duration_seconds": round(self.duration_seconds, 6),
            "dropped_events": self.dropped_events,
            "stacks": [
                {"frames": list(stack), "count": count}
                for stack, count in sorted(self.counts.items())
            ],
            "root_attribution": {
                name: round(fraction, 6)
                for name, fraction in self.root_attribution().items()
            },
        }


def _collapse_frame(frame: str) -> str:
    return frame.replace(";", ":").replace("\n", " ")


class SamplingProfiler:
    """Timer-driven span-stack sampler; use as a context manager.

    ``hz`` picks the sampling rate (97 by default — a prime, so the sampler
    does not phase-lock with millisecond-periodic work).  ``thread_ids``
    selects which threads to sample; the default is the thread that calls
    :meth:`start`, which keeps attribution crisp for CLI workloads.

    The kill switch wins: when ``repro.obs`` is disabled the profiler
    neither publishes span stacks nor starts its thread, and a mid-run
    ``set_enabled(False)`` stops sampling at the next tick.
    """

    def __init__(
        self,
        hz: float = 97.0,
        thread_ids: Optional[Iterable[int]] = None,
        code_frames: bool = False,
        max_events: int = 100_000,
    ):
        self.hz = max(1.0, float(hz))
        self._explicit_threads = tuple(thread_ids) if thread_ids is not None else None
        self.code_frames = code_frames
        self.profile = Profile(hz=self.hz, max_events=max_events)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._started:
            return self
        if not state.ENABLED:
            # Kill switch: stay inert — an empty profile, no thread, no
            # span-stack publication.
            return self
        self._started = True
        self._targets = self._explicit_threads or (threading.get_ident(),)
        _publish_stacks(True)
        self.profile.started_ns = time.perf_counter_ns()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        if self._started:
            self._stop.set()
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self.profile.ended_ns = time.perf_counter_ns()
            _publish_stacks(False)
            self._started = False
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling loop -------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            if not state.ENABLED:  # kill switch flipped mid-run
                break
            ts = time.perf_counter_ns()
            frames = sys._current_frames() if self.code_frames else None
            for tid in self._targets:
                stack: Stack = thread_span_stack(tid)
                if frames is not None:
                    stack = stack + _repro_code_frames(frames.get(tid))
                self.profile.add(stack, ts)


def _repro_code_frames(frame, limit: int = 48) -> Stack:
    """In-repo Python frames of one sampled thread, outermost first."""
    names: List[str] = []
    while frame is not None and len(names) < limit:
        filename = frame.f_code.co_filename
        if "repro" in filename and "profile.py" not in filename:
            names.append("py:" + frame.f_code.co_name)
        frame = frame.f_back
    return tuple(reversed(names))


# ---------------------------------------------------------------------------
# Flamegraph rendering
# ---------------------------------------------------------------------------


class _FrameNode:
    __slots__ = ("name", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.children: Dict[str, "_FrameNode"] = {}


def _build_trie(profile: Profile) -> _FrameNode:
    root = _FrameNode("all")
    for stack, count in sorted(profile.counts.items()):
        root.count += count
        node = root
        for frame in stack:
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _FrameNode(frame)
            child.count += count
            node = child
    return root


def _frame_color(name: str) -> str:
    """Deterministic warm palette: same frame, same color, any process."""
    digest = zlib.crc32(name.encode("utf-8"))
    hue = digest % 55  # red..yellow band
    lightness = 48 + (digest >> 8) % 12
    return f"hsl({hue},72%,{lightness}%)"


def _svg_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;").replace('"', "&quot;")
    )


def flamegraph_svg(
    profile: Profile, title: str = "repro profile", width: int = 1200
) -> str:
    """A standalone flamegraph SVG (icicle layout: root row on top).

    Rect widths are proportional to sample counts; every rect carries a
    ``<title>`` tooltip with the frame name, sample count, and percentage.
    Rendering is deterministic — same profile, byte-identical SVG.
    """
    root = _build_trie(profile)
    row_height = 18
    total = max(1, root.count)

    def depth_of(node: _FrameNode) -> int:
        if not node.children:
            return 1
        return 1 + max(depth_of(child) for child in node.children.values())

    depth = depth_of(root)
    height = (depth + 2) * row_height + 8
    rects: List[str] = []

    def emit(node: _FrameNode, x: float, level: int) -> None:
        w = width * node.count / total
        if w < 0.25:
            return
        pct = 100.0 * node.count / total
        label = _svg_escape(node.name)
        y = (level + 1) * row_height + 4
        rects.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{w:.2f}" height="{row_height - 1}" '
            f'fill="{_frame_color(node.name)}" rx="1">'
            f"<title>{label} — {node.count} samples ({pct:.1f}%)</title></rect>"
        )
        if w > 30:
            text = label if len(label) * 7 < w else label[: max(1, int(w / 7) - 1)] + "…"
            rects.append(
                f'<text x="{x + 3:.2f}" y="{y + row_height - 5}" '
                f'font-size="11" font-family="monospace">{_svg_escape(text)}</text>'
            )
        rects.append("</g>")
        cx = x
        for child in sorted(node.children.values(), key=lambda n: n.name):
            emit(child, cx, level + 1)
            cx += width * child.count / total

    emit(root, 0.0, 0)
    header = (
        f'<text x="4" y="14" font-size="12" font-family="monospace">'
        f"{_svg_escape(title)} — {profile.total_samples} samples"
        f"{'' if not profile.duration_seconds else f' over {profile.duration_seconds:.2f}s'}"
        f"</text>"
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<rect width="100%" height="100%" fill="#fdfdf6"/>{header}{"".join(rects)}</svg>'
    )


def flamegraph_html(profile: Profile, title: str = "repro profile") -> str:
    """The SVG flamegraph wrapped in a minimal standalone HTML page."""
    svg = flamegraph_svg(profile, title=title)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_svg_escape(title)}</title></head>\n"
        f"<body style=\"margin:0;background:#fdfdf6\">{svg}</body></html>\n"
    )


# ---------------------------------------------------------------------------
# Chrome trace merge
# ---------------------------------------------------------------------------


def attach_profile_to_chrome(
    document: dict, profile: Profile, base_ns: Optional[int] = None
) -> dict:
    """Merge a profile into a Chrome trace-event document, in place.

    Adds the ``stackFrames`` table and ``samples`` array of the Chrome
    object format.  ``base_ns`` is the ``perf_counter_ns`` origin of the
    document's ``traceEvents`` timestamps (the trace root's ``start_ns``);
    it defaults to the profile's own start so a profile also stands alone.
    """
    base = base_ns if base_ns is not None else (profile.started_ns or 0)
    frame_ids: Dict[Stack, str] = {}
    stack_frames: Dict[str, dict] = {}

    def intern(stack: Stack) -> str:
        known = frame_ids.get(stack)
        if known is not None:
            return known
        frame = {"name": stack[-1], "category": "repro"}
        if len(stack) > 1:
            frame["parent"] = intern(stack[:-1])
        fid = str(len(stack_frames) + 1)
        stack_frames[fid] = frame
        frame_ids[stack] = fid
        return fid

    samples = []
    for ts_ns, stack in profile.events:
        samples.append(
            {
                "cpu": 0,
                "tid": 1,
                "ts": round((ts_ns - base) / 1e3, 3),
                "name": "sample",
                "sf": intern(stack),
                "weight": 1,
            }
        )
    document["stackFrames"] = stack_frames
    document["samples"] = samples
    return document
