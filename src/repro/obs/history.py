"""Persistent benchmark history: an append-only JSONL ledger plus verdicts.

Every benchmark run appends :class:`BenchRecord` lines to a ledger file
(canonically ``benchmarks/reports/history/ledger.jsonl``).  A record is one
measured metric from one run: run id, wall-clock timestamp (passed in by
the runner — the ledger never reads the clock itself), git sha, metric
name, value, unit, and a fingerprint of the configuration that produced it,
so values measured under different configs are never compared.

Appends are line-atomic under a cooperative lock file, so concurrent
runners (two ``repro bench`` invocations, or CI shards) interleave whole
records rather than corrupting each other; reads tolerate and count
corrupt lines rather than failing, because a ledger that survived a crash
is still mostly good data.

Regression detection is deliberately simple and explainable: the baseline
for a metric is the **median of the previous up-to-K values** under the
same config fingerprint, and the latest value is compared against it with
a per-metric tolerance and direction (:class:`MetricPolicy`).  Verdicts
are ``ok`` / ``regressed`` / ``improved`` / ``insufficient`` (fewer than
two points).  ``docs/BENCHMARKING.md`` documents the policy knobs.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

LEDGER_FILENAME = "ledger.jsonl"

# Lock files older than this are presumed abandoned by a dead process and
# broken; benchmark appends take milliseconds, so 30s is generous.
STALE_LOCK_SECONDS = 30.0


def git_sha(repo_root: Optional[Union[str, Path]] = None) -> str:
    """The current commit's short sha, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_metadata(duration_seconds: Optional[float] = None) -> dict:
    """Provenance stamped into benchmark reports: sha, interpreter, host."""
    meta = {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "hostname": socket.gethostname(),
        "platform": sys.platform,
    }
    if duration_seconds is not None:
        meta["duration_seconds"] = round(duration_seconds, 6)
    return meta


def config_fingerprint(config: Optional[dict]) -> str:
    """A short stable digest of a config dict; ``"-"`` for no config."""
    if not config:
        return "-"
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


class BenchRecord:
    """One measured metric from one benchmark run — one ledger line."""

    __slots__ = ("run_id", "timestamp", "git_sha", "metric", "value", "unit", "config")

    def __init__(
        self,
        run_id: str,
        timestamp: float,
        git_sha: str,
        metric: str,
        value: float,
        unit: str = "",
        config: str = "-",
    ):
        self.run_id = run_id
        self.timestamp = float(timestamp)
        self.git_sha = git_sha
        self.metric = metric
        self.value = float(value)
        self.unit = unit
        self.config = config

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "git_sha": self.git_sha,
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
            "config": self.config,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        return cls(
            run_id=str(data["run_id"]),
            timestamp=float(data["timestamp"]),
            git_sha=str(data.get("git_sha", "unknown")),
            metric=str(data["metric"]),
            value=float(data["value"]),
            unit=str(data.get("unit", "")),
            config=str(data.get("config", "-")),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BenchRecord({self.metric}={self.value}{self.unit} @ {self.run_id})"


class FileLock:
    """A portable cooperative lock: ``O_CREAT | O_EXCL`` on a lock file.

    Works on every platform and filesystem the repo targets (no ``fcntl``
    dependency), and self-heals: a lock file older than
    ``STALE_LOCK_SECONDS`` is treated as abandoned and broken.
    """

    def __init__(self, path: Union[str, Path], timeout: float = 10.0, poll: float = 0.02):
        self.path = Path(path)
        self.timeout = timeout
        self.poll = poll
        self._held = False

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(str(self.path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise TimeoutError(f"could not acquire lock {self.path}")
                time.sleep(self.poll)
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()}\n")
            self._held = True
            return

    def _break_if_stale(self) -> None:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return
        if age > STALE_LOCK_SECONDS:
            try:
                self.path.unlink()
            except OSError:
                pass

    def release(self) -> None:
        if self._held:
            self._held = False
            try:
                self.path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class HistoryLedger:
    """The append-only JSONL benchmark ledger under one directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.path = self.directory / LEDGER_FILENAME
        self.lock_path = self.directory / (LEDGER_FILENAME + ".lock")

    def append(self, records: Union[BenchRecord, Iterable[BenchRecord]]) -> int:
        """Append records as whole lines under the lock; returns the count."""
        if isinstance(records, BenchRecord):
            records = [records]
        lines = [
            json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
            for record in records
        ]
        if not lines:
            return 0
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = "".join(line + "\n" for line in lines)
        with FileLock(self.lock_path):
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
        return len(lines)

    def read(self) -> List[BenchRecord]:
        """Every valid record, in file order; corrupt lines are skipped."""
        records, _ = self.read_with_errors()
        return records

    def read_with_errors(self) -> "tuple[List[BenchRecord], int]":
        records: List[BenchRecord] = []
        corrupt = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return records, corrupt
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(BenchRecord.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                corrupt += 1
        return records, corrupt

    def trajectories(self, config: Optional[str] = None) -> Dict[str, List[BenchRecord]]:
        """Per-metric record lists, timestamp-ordered, optionally one config."""
        by_metric: Dict[str, List[BenchRecord]] = {}
        for record in self.read():
            if config is not None and record.config != config:
                continue
            by_metric.setdefault(record.metric, []).append(record)
        for series in by_metric.values():
            series.sort(key=lambda r: (r.timestamp, r.run_id))
        return by_metric


# ---------------------------------------------------------------------------
# Regression policy and verdicts
# ---------------------------------------------------------------------------


class MetricPolicy:
    """How one tracked metric is judged.

    ``direction`` is ``"lower"`` (latencies — smaller is better) or
    ``"higher"`` (speedups/throughput).  ``tolerance`` is the allowed
    relative drift before a verdict flips; ``window`` is K, the number of
    *previous* values whose median forms the baseline.  ``gate=False``
    metrics still appear in reports but never fail the CI gate — absolute
    wall-time metrics vary across machines, ratio metrics do not.
    """

    __slots__ = ("metric", "direction", "tolerance", "window", "gate", "unit", "note")

    def __init__(
        self,
        metric: str,
        direction: str = "lower",
        tolerance: float = 0.10,
        window: int = 5,
        gate: bool = False,
        unit: str = "",
        note: str = "",
    ):
        if direction not in ("lower", "higher"):
            raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
        self.metric = metric
        self.direction = direction
        self.tolerance = tolerance
        self.window = max(1, window)
        self.gate = gate
        self.unit = unit
        self.note = note


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def evaluate_metric(records: List[BenchRecord], policy: MetricPolicy) -> dict:
    """The regression verdict for one metric's timestamp-ordered records.

    The latest value is compared against the median of the up-to-``window``
    values immediately before it.  With fewer than two points there is
    nothing to compare, so the verdict is ``insufficient`` (never a gate
    failure — a brand-new metric must not break CI).
    """
    values = [record.value for record in records]
    if len(values) < 2:
        return {
            "metric": policy.metric,
            "verdict": "insufficient",
            "n": len(values),
            "latest": values[-1] if values else None,
            "baseline": None,
            "ratio": None,
            "tolerance": policy.tolerance,
            "direction": policy.direction,
            "unit": policy.unit,
            "gate": policy.gate,
        }
    latest = values[-1]
    window = values[max(0, len(values) - 1 - policy.window) : -1]
    baseline = _median(window)
    ratio = latest / baseline if baseline else None
    verdict = "ok"
    if baseline:
        drift = (latest - baseline) / baseline
        if policy.direction == "lower":
            if drift > policy.tolerance:
                verdict = "regressed"
            elif drift < -policy.tolerance:
                verdict = "improved"
        else:
            if drift < -policy.tolerance:
                verdict = "regressed"
            elif drift > policy.tolerance:
                verdict = "improved"
    return {
        "metric": policy.metric,
        "verdict": verdict,
        "n": len(values),
        "latest": latest,
        "baseline": baseline,
        "ratio": round(ratio, 6) if ratio is not None else None,
        "tolerance": policy.tolerance,
        "direction": policy.direction,
        "unit": policy.unit,
        "gate": policy.gate,
    }


SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 24) -> str:
    """A unicode trend strip for a value series (last ``width`` points)."""
    if not values:
        return ""
    tail = values[-width:]
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return SPARK_GLYPHS[3] * len(tail)
    span = hi - lo
    return "".join(
        SPARK_GLYPHS[min(len(SPARK_GLYPHS) - 1, int((v - lo) / span * len(SPARK_GLYPHS)))]
        for v in tail
    )


# ---------------------------------------------------------------------------
# Backfill: fold existing report JSONs into the ledger format
# ---------------------------------------------------------------------------


def flatten_numeric(data, prefix: str = "") -> Dict[str, float]:
    """Every numeric leaf of a JSON document as ``dotted.path -> value``.

    Booleans are excluded (they are flags, not measurements); lists index
    numerically.  This is what lets the pre-ledger ``reports/*.json`` files
    join the history without a per-file extractor.
    """
    flat: Dict[str, float] = {}
    if isinstance(data, bool):
        return flat
    if isinstance(data, (int, float)):
        flat[prefix or "value"] = float(data)
        return flat
    if isinstance(data, dict):
        for key in sorted(data):
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_numeric(data[key], path))
        return flat
    if isinstance(data, list):
        for index, item in enumerate(data):
            path = f"{prefix}.{index}" if prefix else str(index)
            flat.update(flatten_numeric(item, path))
    return flat


def backfill_reports(
    report_dir: Union[str, Path],
    ledger: HistoryLedger,
    run_id: str,
    timestamp: float,
    sha: Optional[str] = None,
    skip: Iterable[str] = ("run_meta",),
) -> int:
    """Ingest every ``*.json`` report in a directory into the ledger.

    Each file contributes records named ``<stem>.<dotted.path>``; the
    ``run_meta`` subtree (and any other ``skip`` keys) is provenance, not
    measurement, and is excluded.  Returns the number of records appended.
    """
    directory = Path(report_dir)
    sha = sha or git_sha()
    skipset = set(skip)
    records: List[BenchRecord] = []
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(data, dict):
            data = {k: v for k, v in data.items() if k not in skipset}
        for metric, value in sorted(flatten_numeric(data).items()):
            records.append(
                BenchRecord(
                    run_id=run_id,
                    timestamp=timestamp,
                    git_sha=sha,
                    metric=f"{path.stem}.{metric}",
                    value=value,
                    config="backfill",
                )
            )
    return ledger.append(records)
