"""Hierarchical tracing: spans, traces, and the ambient recorder.

The design goal is a *cheap* disabled path.  ``span(name)`` consults one
``contextvars.ContextVar``; when no trace is active (the overwhelmingly
common case — tracing is opt-in per request) it returns a shared null
context manager and allocates nothing.  Only inside ``start_trace`` does a
``with span(...)`` actually record: a :class:`Span` with monotonic
``perf_counter_ns`` endpoints, attached to its parent through the context
variable, so nesting follows the dynamic call structure across the whole
pipeline (parse → typecheck → lower → fixpoint → cache) without threading a
recorder argument through every layer.

Context variables are per-thread (each server thread handles one request at
a time), so concurrent requests record into disjoint trees.

A finished :class:`Trace` renders three ways: ``to_dict`` (the in-band span
tree returned for ``"trace": true`` requests, with per-span ``self_ms`` that
telescopes exactly to the root duration), ``to_chrome_events`` (Chrome
``about:tracing`` / Perfetto complete events), and plain text via
:func:`render_span_tree`.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import state


def new_trace_id() -> str:
    """A fresh 16-hex-digit request/trace identifier."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed, attributed node in a trace tree."""

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.children: List["Span"] = []

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes, e.g. results known only at exit."""
        self.attrs.update(attrs)

    def finish(self) -> None:
        if self.end_ns is None:
            self.end_ns = time.perf_counter_ns()

    @property
    def duration_ms(self) -> float:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return (end - self.start_ns) / 1e6

    @property
    def self_ms(self) -> float:
        """Time spent in this span minus time attributed to its children.

        Summed over a whole tree this telescopes to exactly the root
        duration — the invariant the in-band trace consumers rely on.
        """
        return self.duration_ms - sum(child.duration_ms for child in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_ms": round(self.duration_ms, 6),
            "self_ms": round(self.self_ms, 6),
            "children": [child.to_dict() for child in self.children],
        }


class Trace:
    """A root span plus the id that correlates it with logs and responses."""

    __slots__ = ("trace_id", "root")

    def __init__(self, name: str, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.root = Span(name)

    def finish(self) -> None:
        self.root.finish()

    def spans(self) -> List[Span]:
        return list(self.root.walk())

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "root": self.root.to_dict()}

    def to_chrome_events(self) -> List[dict]:
        """Chrome trace-event "complete" (``ph: X``) events, µs timestamps.

        Spans carrying a ``worker`` attribute (subtrees grafted by
        :mod:`repro.obs.remote`) — and everything beneath them — render on
        their own thread lane (tid 2+, one per worker, with ``thread_name``
        metadata events), so a fanned-out trace shows true wave parallelism
        instead of one flat lane.  A purely in-process trace keeps the
        historical single-lane shape with no metadata events.
        """
        base = self.root.start_ns
        events: List[dict] = []
        lanes: Dict[str, int] = {}

        def emit(span: Span, tid: int) -> None:
            worker = span.attrs.get("worker")
            if worker is not None:
                tid = lanes.setdefault(str(worker), len(lanes) + 2)
            end = span.end_ns if span.end_ns is not None else span.start_ns
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round((span.start_ns - base) / 1e3, 3),
                "dur": round((end - span.start_ns) / 1e3, 3),
                "pid": 1,
                "tid": tid,
                "args": dict(span.attrs),
            })
            for child in span.children:
                emit(child, tid)

        emit(self.root, 1)
        if lanes:
            metadata = [{
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": "coordinator"},
            }]
            for worker, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
                metadata.append({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"worker {worker}"},
                })
            events = metadata + events
        return events


# The ambient recorder: the innermost open span of this thread's active
# trace, or None when tracing is off (the fast path).
_ACTIVE: ContextVar[Optional[Span]] = ContextVar("repro_obs_active_span", default=None)


# ---------------------------------------------------------------------------
# Span-stack publication for the sampling profiler
# ---------------------------------------------------------------------------
#
# The sampling profiler (repro.obs.profile) runs on its *own* thread, and a
# context variable cannot be read across threads.  While at least one
# profiler is attached, span enter/exit additionally mirrors the open-span
# names into a plain thread-keyed dict the sampler can read.  The publish
# flag is a single module global, so the traced path pays one extra global
# read per span when no profiler is running — and the untraced path pays
# nothing at all (it never reaches _SpanContext).

_PUBLISH_STACKS = False
_THREAD_STACKS: Dict[int, List[str]] = {}
_PUBLISH_LOCK = threading.Lock()
_PUBLISH_COUNT = 0


def _publish_stacks(attach: bool) -> None:
    """Reference-count profiler attachment; publication is on while > 0."""
    global _PUBLISH_STACKS, _PUBLISH_COUNT
    with _PUBLISH_LOCK:
        _PUBLISH_COUNT += 1 if attach else -1
        _PUBLISH_COUNT = max(0, _PUBLISH_COUNT)
        _PUBLISH_STACKS = _PUBLISH_COUNT > 0
        if not _PUBLISH_STACKS:
            _THREAD_STACKS.clear()


def thread_span_stack(thread_id: int) -> Tuple[str, ...]:
    """The open-span names of one thread, root first (empty when untraced).

    Only meaningful while a profiler is attached; the copy is taken under
    the GIL, so the sampler sees a consistent (if momentarily stale) stack.
    """
    stack = _THREAD_STACKS.get(thread_id)
    return tuple(stack) if stack else ()


def _stack_push(name: str) -> bool:
    _THREAD_STACKS.setdefault(threading.get_ident(), []).append(name)
    return True


def _stack_pop() -> None:
    stack = _THREAD_STACKS.get(threading.get_ident())
    if stack:
        stack.pop()


def active_span() -> Optional[Span]:
    """The innermost open span, for attaching attributes from deep layers."""
    return _ACTIVE.get()


class _NullContext:
    """Shared no-op context manager: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL = _NullContext()


class _SpanContext:
    __slots__ = ("_span", "_token", "_pushed")

    def __init__(self, parent: Span, name: str, attrs: Dict[str, Any]):
        child = Span(name, attrs)
        parent.children.append(child)
        self._span = child
        self._pushed = False

    def __enter__(self) -> Span:
        self._token = _ACTIVE.set(self._span)
        if _PUBLISH_STACKS:
            self._pushed = _stack_push(self._span.name)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.finish()
        _ACTIVE.reset(self._token)
        if self._pushed:
            _stack_pop()
        return False


def span(name: str, **attrs: Any):
    """Open a child span of the active trace; a no-op when none is active.

    Yields the :class:`Span` (or ``None`` when disabled), so callers guard
    exit-time attributes with ``if sp is not None``.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return _NULL
    return _SpanContext(parent, name, attrs)


class _TraceContext:
    __slots__ = ("_trace", "_token", "_pushed")

    def __init__(self, name: str, trace_id: Optional[str]):
        self._trace = Trace(name, trace_id)
        self._pushed = False

    def __enter__(self) -> Trace:
        self._token = _ACTIVE.set(self._trace.root)
        if _PUBLISH_STACKS:
            self._pushed = _stack_push(self._trace.root.name)
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._trace.finish()
        _ACTIVE.reset(self._token)
        if self._pushed:
            _stack_pop()
        return False


def start_trace(name: str, trace_id: Optional[str] = None):
    """Activate tracing for the dynamic extent of the ``with`` block.

    Yields the :class:`Trace` (or ``None`` when observability is globally
    disabled).  Nesting is deliberate: a ``start_trace`` inside an active
    trace starts a *new* independent trace — request boundaries, not call
    boundaries, decide trace identity.
    """
    if not state.ENABLED:
        return _NULL
    return _TraceContext(name, trace_id)


def filter_span_tree(
    tree: dict,
    min_self_ms: float = 0.0,
    max_depth: Optional[int] = None,
) -> Tuple[dict, int]:
    """Prune a ``Span.to_dict`` tree for readable rendering.

    Drops spans deeper than ``max_depth`` (root is depth 0) and spans whose
    ``self_ms`` is below ``min_self_ms`` — unless a retained descendant
    needs them as structure.  The root always survives.  Returns the pruned
    copy plus how many spans were hidden, so the renderer can say so
    instead of silently looking complete.
    """

    def prune(node: dict, depth: int) -> Tuple[Optional[dict], int]:
        hidden = 0
        kept_children: List[dict] = []
        for child in node.get("children", ()):
            if max_depth is not None and depth + 1 > max_depth:
                hidden += sum(1 for _ in _count_spans(child))
                continue
            kept, child_hidden = prune(child, depth + 1)
            hidden += child_hidden
            if kept is not None:
                kept_children.append(kept)
        significant = node.get("self_ms", 0.0) >= min_self_ms
        if depth > 0 and not significant and not kept_children:
            return None, hidden + 1
        out = dict(node, children=kept_children)
        return out, hidden

    def _count_spans(node: dict):
        yield node
        for child in node.get("children", ()):
            yield from _count_spans(child)

    pruned, hidden = prune(tree, 0)
    assert pruned is not None  # the root always survives
    return pruned, hidden


def render_span_tree(tree: dict, indent: int = 0, out: Optional[List[str]] = None) -> str:
    """Human-readable indented rendering of a ``Span.to_dict`` tree."""
    lines = out if out is not None else []
    attrs = tree.get("attrs") or {}
    rendered_attrs = (
        " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
        if attrs
        else ""
    )
    lines.append(
        "{}{}  {:.3f}ms (self {:.3f}ms){}".format(
            "  " * indent,
            tree.get("name", "?"),
            tree.get("duration_ms", 0.0),
            tree.get("self_ms", 0.0),
            rendered_attrs,
        )
    )
    for child in tree.get("children", ()):
        render_span_tree(child, indent + 1, lines)
    return "\n".join(lines)
