"""Diagnostics and source-location tracking shared by every compiler stage.

The reproduction follows the paper's pipeline: surface MiniRust source is
lexed, parsed, type checked, lowered to a MIR-style control-flow graph, and
then analyzed for information flow.  Every stage reports problems through the
same :class:`Diagnostic` type so that tools built on top (the slicer, the IFC
checker, the evaluation harness) can surface errors uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, tracked as line/column pairs.

    Lines and columns are 1-based, matching what editors display.  ``Span``
    objects are attached to tokens, AST nodes, and MIR locations so that
    analysis results (for example a backward slice) can be mapped back to the
    source the user wrote.
    """

    start_line: int = 0
    start_col: int = 0
    end_line: int = 0
    end_col: int = 0

    @staticmethod
    def point(line: int, col: int) -> "Span":
        """Create a zero-width span at a single position."""
        return Span(line, col, line, col)

    def merge(self, other: "Span") -> "Span":
        """Return the smallest span covering both ``self`` and ``other``."""
        if self.is_dummy():
            return other
        if other.is_dummy():
            return self
        start = min((self.start_line, self.start_col), (other.start_line, other.start_col))
        end = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return Span(start[0], start[1], end[0], end[1])

    def is_dummy(self) -> bool:
        """True when the span carries no real position information."""
        return self == DUMMY_SPAN

    def contains_line(self, line: int) -> bool:
        """True when ``line`` is covered by this span."""
        return self.start_line <= line <= self.end_line

    def contains(self, line: int, col: int) -> bool:
        """Whether a 1-based cursor position falls inside this span.

        Spans are half-open in columns (``end_col`` is the column *after* the
        last character, matching the lexer), so a cursor sitting on the first
        character of a token hits it and one sitting just past it does not.
        Dummy spans contain nothing.
        """
        if self.is_dummy():
            return False
        return (self.start_line, self.start_col) <= (line, col) < (self.end_line, self.end_col)

    def contains_span(self, other: "Span") -> bool:
        """Whether ``other`` lies entirely within this span."""
        if self.is_dummy() or other.is_dummy():
            return False
        return (
            (self.start_line, self.start_col) <= (other.start_line, other.start_col)
            and (other.end_line, other.end_col) <= (self.end_line, self.end_col)
        )

    def tightness(self) -> Tuple[int, int]:
        """An ordering key for "how small is this span": (lines, columns).

        Used to pick the *innermost* of several spans containing a cursor —
        the one covering the fewest lines, breaking ties on column width.
        """
        return (
            self.end_line - self.start_line,
            (self.end_col - self.start_col) if self.end_line == self.start_line else self.end_col,
        )

    def end_point(self) -> "Span":
        """A minimal span at this span's closing position (its last column).

        Used to give synthetic control-flow instructions (the function's
        return block, gotos out of a block) a real position — the closing
        brace — without claiming the whole construct as their source range.
        """
        if self.is_dummy():
            return self
        return Span(self.end_line, max(1, self.end_col - 1), self.end_line, self.end_col)

    def to_tuple(self) -> Tuple[int, int, int, int]:
        """The JSON-friendly ``[start_line, start_col, end_line, end_col]``."""
        return (self.start_line, self.start_col, self.end_line, self.end_col)

    @staticmethod
    def from_tuple(data) -> "Span":
        return Span(int(data[0]), int(data[1]), int(data[2]), int(data[3]))

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.is_dummy():
            return "<unknown>"
        return f"{self.start_line}:{self.start_col}"


DUMMY_SPAN = Span(0, 0, 0, 0)


class Severity(Enum):
    """How serious a diagnostic is."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class Diagnostic:
    """A single compiler message with an optional source location."""

    severity: Severity
    message: str
    span: Span = DUMMY_SPAN
    notes: tuple = ()

    def render(self) -> str:
        """Format the diagnostic the way a command-line compiler would."""
        loc = "" if self.span.is_dummy() else f" at {self.span}"
        lines = [f"{self.severity.value}{loc}: {self.message}"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.render()


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class LexError(ReproError):
    """Raised when the lexer encounters a character it cannot tokenize."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


class ParseError(ReproError):
    """Raised when the parser encounters a malformed program."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


class TypeError_(ReproError):
    """Raised when type checking fails.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TypeError`; the public alias :data:`TypeCheckError` is preferred.
    """

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


TypeCheckError = TypeError_


class BorrowError(ReproError):
    """Raised when the (lightweight) ownership checks reject a program."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


class LoweringError(ReproError):
    """Raised when AST-to-MIR lowering hits an unsupported construct."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


class EvalError(ReproError):
    """Raised by the interpreter for runtime failures (panics)."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


class AnalysisError(ReproError):
    """Raised when an information flow analysis cannot proceed."""

    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


class QueryError(ReproError):
    """A service query failed in a way clients can dispatch on.

    Carries a stable machine-readable ``code`` (``unknown_function``,
    ``unknown_variable``, ``position_out_of_range``, ...) alongside the
    human-readable message, so protocol layers can return typed errors
    instead of opaque failure strings.
    """

    # Stable error codes; protocol responses surface these verbatim.
    UNKNOWN_FUNCTION = "unknown_function"
    UNKNOWN_VARIABLE = "unknown_variable"
    UNKNOWN_UNIT = "unknown_unit"
    UNKNOWN_WORKSPACE = "unknown_workspace"
    NO_WORKSPACE = "no_workspace"
    POSITION_OUT_OF_RANGE = "position_out_of_range"
    NO_PLACE_AT_POSITION = "no_place_at_position"
    INVALID_PARAMS = "invalid_params"

    def __init__(self, message: str, code: str = "query_error", span: Span = DUMMY_SPAN):
        super().__init__(message)
        self.code = code
        self.span = span
        self.diagnostic = Diagnostic(Severity.ERROR, message, span)


@dataclass
class DiagnosticSink:
    """Accumulates diagnostics across a compilation session.

    Stages append to a shared sink so a caller can decide whether to abort
    after each stage (``raise_if_errors``) or keep going and report everything
    at the end.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(self, message: str, span: Span = DUMMY_SPAN, notes: Iterable[str] = ()) -> Diagnostic:
        diag = Diagnostic(Severity.ERROR, message, span, tuple(notes))
        self.diagnostics.append(diag)
        return diag

    def warning(self, message: str, span: Span = DUMMY_SPAN, notes: Iterable[str] = ()) -> Diagnostic:
        diag = Diagnostic(Severity.WARNING, message, span, tuple(notes))
        self.diagnostics.append(diag)
        return diag

    def note(self, message: str, span: Span = DUMMY_SPAN) -> Diagnostic:
        diag = Diagnostic(Severity.NOTE, message, span)
        self.diagnostics.append(diag)
        return diag

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def raise_if_errors(self, exc_class=ReproError) -> None:
        """Raise ``exc_class`` with a combined message if any error was recorded.

        The first error's span is attached to the raised exception so
        callers (the CLI, fuzz repro rendering) can point at the offending
        source position even for multi-diagnostic failures.
        """
        if self.has_errors():
            errors = self.errors
            message = "\n".join(d.render() for d in errors)
            error = exc_class(message)
            if getattr(error, "span", DUMMY_SPAN) == DUMMY_SPAN:
                error.span = errors[0].span
            raise error

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)

    def clear(self) -> None:
        self.diagnostics.clear()

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)


def source_excerpt(source: str, span: Span, context: int = 1) -> str:
    """A numbered source excerpt with the span underlined, compiler-style.

    Shows ``context`` lines either side of the span and a caret line under
    the offending columns (``^`` across the span on its first line; spans
    covering several lines underline to the end of the first line).  Returns
    an empty string for dummy spans or positions outside the source, so
    callers can append it unconditionally.
    """
    if span.is_dummy():
        return ""
    lines = source.splitlines()
    if span.start_line < 1 or span.start_line > len(lines):
        return ""
    first = max(1, span.start_line - context)
    last = min(len(lines), max(span.end_line, span.start_line) + context)
    width = len(str(last))
    out: List[str] = []
    for number in range(first, last + 1):
        text = lines[number - 1]
        out.append(f"  {number:>{width}} | {text}")
        if number == span.start_line:
            start_col = max(1, span.start_col)
            if span.end_line == span.start_line and span.end_col > span.start_col:
                caret_width = span.end_col - span.start_col
            else:
                caret_width = max(1, len(text) - start_col + 1)
            out.append(
                f"  {'':>{width}} | " + " " * (start_col - 1) + "^" * max(1, caret_width)
            )
    return "\n".join(out)


def render_error_with_source(
    error: Exception, source: str, filename: str = "<input>"
) -> str:
    """``line:column`` plus a source excerpt for any span-carrying error.

    Works on every :class:`ReproError` subclass that records a ``span``
    (parse, typecheck, lowering, eval, query errors); errors without a usable
    span fall back to the plain message.  This is how shrunk fuzz repros stay
    debuggable from the CLI: ``repro fuzz repro`` and the top-level error
    path both print through here.
    """
    span = getattr(error, "span", None)
    header = f"error: {error}"
    if isinstance(span, Span) and not span.is_dummy():
        header = f"error at {filename}:{span.start_line}:{span.start_col}: {error}"
        excerpt = source_excerpt(source, span)
        if excerpt:
            return f"{header}\n{excerpt}"
    return header


def first_error(diags: Iterable[Diagnostic]) -> Optional[Diagnostic]:
    """Return the first error severity diagnostic, or ``None``."""
    for diag in diags:
        if diag.severity is Severity.ERROR:
            return diag
    return None
