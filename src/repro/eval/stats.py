"""Statistics over dependency-set sizes: the numbers behind Figures 2–4.

The paper's quantitative evaluation (Section 5.2) reports, for pairs of
analysis conditions, the distribution of *percentage increases* in dependency
set size per variable: the fraction of variables with no difference, and the
median of the non-zero differences.  It additionally reports a per-crate
correlation (R² ≈ 0.79 between a crate's number of analysed variables and its
number of non-zero differences) and a linear-regression interaction test
showing Mut-blind × Ref-blind has no significant interaction.

This module implements those computations over the raw
``(crate, function, variable) → size`` tables produced by
:mod:`repro.eval.experiments`.  numpy/scipy are used when available; the
median/fraction computations fall back to pure Python so the core library has
no hard dependency on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

# One process-wide answer to "is numpy available": the same guarded import
# the vectorized dataflow kernels use, hoisted to module level so the
# regression below and the tier-3 engine can never disagree about it.
from repro.dataflow.vecbitset import HAVE_NUMPY, np


VarKey = Tuple[str, str, str]  # (crate, function, variable)


def percent_differences(
    baseline: Mapping[VarKey, int], other: Mapping[VarKey, int]
) -> Dict[VarKey, float]:
    """Per-variable percentage increase of ``other`` relative to ``baseline``.

    Follows the paper's formula: for baseline size ``b`` and other size ``o``,
    the difference is ``(o - b) / b`` (as a percentage).  Variables missing
    from either table are skipped; a zero baseline (which can only happen for
    never-written unit temporaries) is clamped to 1 to keep the ratio finite.
    """
    out: Dict[VarKey, float] = {}
    for key, base_size in baseline.items():
        if key not in other:
            continue
        other_size = other[key]
        denominator = max(base_size, 1)
        out[key] = 100.0 * (other_size - base_size) / denominator
    return out


@dataclass
class DiffSummary:
    """Headline statistics of one condition comparison (Section 5.2 style)."""

    label: str
    total: int
    num_zero: int
    num_nonzero: int
    median_nonzero_percent: float
    mean_nonzero_percent: float
    max_percent: float

    @property
    def fraction_zero(self) -> float:
        return self.num_zero / self.total if self.total else 1.0

    @property
    def fraction_nonzero(self) -> float:
        return self.num_nonzero / self.total if self.total else 0.0

    def row(self) -> Dict[str, object]:
        return {
            "comparison": self.label,
            "variables": self.total,
            "identical": self.num_zero,
            "identical_pct": round(100.0 * self.fraction_zero, 1),
            "nonzero": self.num_nonzero,
            "nonzero_pct": round(100.0 * self.fraction_nonzero, 1),
            "median_nonzero_increase_pct": round(self.median_nonzero_percent, 1),
            "mean_nonzero_increase_pct": round(self.mean_nonzero_percent, 1),
            "max_increase_pct": round(self.max_percent, 1),
        }


def median(values: Sequence[float]) -> float:
    """The interpolated median of ``values`` (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


_median = median  # backwards-compatible private alias


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``samples`` (nearest-rank, 0 ≤ f ≤ 1).

    The single latency-percentile implementation shared by the perf harness
    (:mod:`repro.eval.perf`), the load harness (:mod:`repro.eval.load`) and
    the benchmark suite.  Nearest-rank keeps every reported value an actual
    observed sample, which matters when tails are sparse.

    Total on degenerate input, by contract:

    * empty ``samples`` → ``0.0`` (never an ``IndexError``),
    * a single sample → that sample, for every ``fraction``,
    * ``fraction`` outside ``[0, 1]`` → clamped to the min/max sample.

    For non-empty input the result is always one of the samples, lies
    between ``min(samples)`` and ``max(samples)``, and is monotone in
    ``fraction`` — the invariants pinned by ``tests/test_stats.py``.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def latency_summary_ms(
    samples_seconds: Sequence[float],
    fractions: Sequence[float] = (0.50, 0.95, 0.99),
    digits: int = 4,
) -> Dict[str, float]:
    """Latency percentiles in milliseconds, keyed ``p50``/``p95``/... .

    Takes samples in *seconds* (what ``time.perf_counter`` differences give)
    and reports milliseconds, the unit every harness table prints.

    Total like :func:`percentile`: an empty input yields every requested
    key with value ``0.0``, and a single sample yields that sample (in ms)
    at every key — so report renderers never special-case empty windows.
    """
    ordered = sorted(samples_seconds)
    return {
        f"p{int(round(fraction * 100))}": round(percentile(ordered, fraction) * 1e3, digits)
        for fraction in fractions
    }


def summarize_differences(
    differences: Mapping[VarKey, float], label: str = ""
) -> DiffSummary:
    """Summarise a per-variable difference table: %-identical, median non-zero."""
    values = list(differences.values())
    nonzero = [v for v in values if abs(v) > 1e-9]
    return DiffSummary(
        label=label,
        total=len(values),
        num_zero=len(values) - len(nonzero),
        num_nonzero=len(nonzero),
        median_nonzero_percent=_median(nonzero),
        mean_nonzero_percent=(sum(nonzero) / len(nonzero)) if nonzero else 0.0,
        max_percent=max(values) if values else 0.0,
    )


def histogram(
    differences: Mapping[VarKey, float],
    num_bins: int = 20,
    log_scale: bool = True,
    include_zero_bin: bool = True,
) -> List[Tuple[str, int]]:
    """Bin the non-zero percentage differences, Figure 2/3 style.

    With ``log_scale`` the bins are logarithmically spaced between the
    smallest and largest positive difference (the paper's x-axis is a log
    scale "with zero added for comparison"); a dedicated ``0`` bin is
    prepended when ``include_zero_bin``.
    """
    values = list(differences.values())
    positive = sorted(v for v in values if v > 1e-9)
    zero_count = sum(1 for v in values if abs(v) <= 1e-9)

    bins: List[Tuple[str, int]] = []
    if include_zero_bin:
        bins.append(("0", zero_count))
    if not positive:
        return bins

    low = max(positive[0], 1e-3)
    high = max(positive[-1], low * 1.0001)
    edges: List[float] = []
    for index in range(num_bins + 1):
        if log_scale:
            log_low, log_high = math.log10(low), math.log10(high)
            edges.append(10 ** (log_low + (log_high - log_low) * index / num_bins))
        else:
            edges.append(low + (high - low) * index / num_bins)

    counts = [0] * num_bins
    for value in positive:
        placed = False
        for index in range(num_bins):
            if value <= edges[index + 1] + 1e-12:
                counts[index] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    for index in range(num_bins):
        label = f"({edges[index]:.2g}, {edges[index + 1]:.2g}]"
        bins.append((label, counts[index]))
    return bins


def per_crate_nonzero_counts(
    differences: Mapping[VarKey, float]
) -> Dict[str, int]:
    """Number of non-zero differences per crate (the Figure 4 breakdown)."""
    out: Dict[str, int] = {}
    for (crate, _fn, _var), value in differences.items():
        if abs(value) > 1e-9:
            out[crate] = out.get(crate, 0) + 1
        else:
            out.setdefault(crate, 0)
    return out


def per_crate_variable_counts(keys: Iterable[VarKey]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for crate, _fn, _var in keys:
        out[crate] = out.get(crate, 0) + 1
    return out


def crate_correlation(differences: Mapping[VarKey, float]) -> float:
    """R² between per-crate variable counts and non-zero-difference counts.

    The paper reports R² = 0.79 for this correlation (Section 5.4.1): larger
    crates have more non-zero differences.
    """
    nonzero = per_crate_nonzero_counts(differences)
    totals = per_crate_variable_counts(differences.keys())
    crates = sorted(totals)
    if len(crates) < 2:
        return 1.0
    xs = [float(totals[c]) for c in crates]
    ys = [float(nonzero.get(c, 0)) for c in crates]
    return _r_squared(xs, ys)


def _r_squared(xs: Sequence[float], ys: Sequence[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    r = cov / math.sqrt(var_x * var_y)
    return r * r


@dataclass
class RegressionTerm:
    """One coefficient of the interaction regression."""

    name: str
    coefficient: float
    std_error: float
    t_statistic: float
    p_value: float

    def significant(self, alpha: float = 0.001) -> bool:
        return self.p_value < alpha


@dataclass
class InteractionRegression:
    """OLS of dependency-set size on the Mut-blind / Ref-blind indicators.

    Reproduces the Section 5.2 check: each ablation is individually
    significant while their interaction is not.
    """

    terms: List[RegressionTerm] = field(default_factory=list)
    n_observations: int = 0

    def term(self, name: str) -> RegressionTerm:
        for term in self.terms:
            if term.name == name:
                return term
        raise KeyError(name)


def interaction_regression(
    sizes_by_condition: Mapping[Tuple[bool, bool], Mapping[VarKey, int]]
) -> InteractionRegression:
    """Fit ``size ~ mut_blind + ref_blind + mut_blind:ref_blind``.

    ``sizes_by_condition`` maps ``(mut_blind, ref_blind)`` flag pairs to the
    per-variable size tables measured under that condition (whole-program
    disabled), i.e. the 2×2 sub-grid of the paper's 2³ design.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("interaction_regression requires numpy and scipy")
    try:
        from scipy import stats
    except ImportError as exc:  # pragma: no cover - scipy is installed in CI
        raise RuntimeError("interaction_regression requires numpy and scipy") from exc

    rows: List[Tuple[float, float, float]] = []
    ys: List[float] = []
    for (mut_blind, ref_blind), sizes in sizes_by_condition.items():
        for _key, size in sizes.items():
            rows.append((1.0, 1.0 if mut_blind else 0.0, 1.0 if ref_blind else 0.0))
            ys.append(float(size))
    X = np.array([[c, m, r, m * r] for c, m, r in rows])
    y = np.array(ys)
    n, k = X.shape

    beta, residuals, rank, _sv = np.linalg.lstsq(X, y, rcond=None)
    fitted = X @ beta
    resid = y - fitted
    dof = max(n - k, 1)
    sigma2 = float(resid @ resid) / dof
    xtx_inv = np.linalg.pinv(X.T @ X)
    std_errors = np.sqrt(np.maximum(np.diag(xtx_inv) * sigma2, 1e-30))
    t_stats = beta / std_errors
    p_values = 2.0 * stats.t.sf(np.abs(t_stats), dof)

    names = ["intercept", "mut_blind", "ref_blind", "mut_blind:ref_blind"]
    terms = [
        RegressionTerm(
            name=name,
            coefficient=float(beta[i]),
            std_error=float(std_errors[i]),
            t_statistic=float(t_stats[i]),
            p_value=float(p_values[i]),
        )
        for i, name in enumerate(names)
    ]
    return InteractionRegression(terms=terms, n_observations=n)
