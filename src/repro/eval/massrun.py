"""Mass evaluation: batch-run program corpora through the full oracle battery.

This is the batch API a code-generation pipeline would hit millions of times:
ingest a corpus of MiniRust programs (fuzz seed sweeps at any scale, plus any
committed ``.mrs`` directory), deduplicate by content digest, fan every
program through the five-oracle battery of :mod:`repro.fuzz.oracles` — which
itself exercises both engines (bitset + object) under both the Modular and
Whole-program conditions — on the process-pool shard fan-out of
:func:`repro.service.scheduler.map_shards`, and aggregate the verdicts into
one machine-readable report:

* **per-oracle pass rates** — the paper's modular-summaries thesis under
  load: if per-function summaries compose, these hold at corpus scale;
* **per-feature breakdowns** keyed on the generator's feature histograms,
  judged against :data:`repro.fuzz.generator.GENERATOR_FEATURES` so corpus
  coverage is a measured quantity with an explicit "missing" list;
* **precision distributions** (per-variable dependency-set sizes under the
  Modular condition) and **wall-time percentiles** per program;
* a per-program **session snapshot digest** (the canonical
  :meth:`~repro.service.session.AnalysisSession.snapshot` JSON hashed), so
  two corpus runs can be diffed program-by-program without storing outputs.

Failures are written as self-contained repro artifacts (the same format as
``repro fuzz`` — replay with ``repro fuzz repro ARTIFACT.json``), and each
run can append a ``massrun`` row to the benchmark history ledger so pass
rate and throughput trend in ``repro bench report``.

Everything written lands strictly under the user-supplied ``--out-dir`` /
``--ledger-dir`` roots, created idempotently, with program-derived file
names routed through the path-traversal guard.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.eval.corpus import (
    Corpus,
    CorpusProgram,
    ingest_corpus,
    safe_artifact_path,
)
from repro.eval.stats import percentile
from repro.fuzz.generator import GENERATOR_FEATURES, GENERATOR_VERSION
from repro.obs import metrics as obs_metrics
from repro.obs import span as obs_span
from repro.obs import remote as obs_remote
from repro.service.scheduler import map_shards

REPORT_KIND = "repro-mass-eval"
REPORT_VERSION = 1
REPORT_NAME = "massrun_report.json"
FAILURE_DIR = "failures"

#: Report keys that vary run-to-run on identical inputs (timing, host paths,
#: ledger provenance).  Golden tests and doc replays compare reports with
#: these removed — everything else is deterministic in (corpus, config).
VOLATILE_KEYS = ("timing", "ledger", "out_dir")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass
class MassRunConfig:
    """One mass-evaluation run: corpus recipe, fan-out, and output roots."""

    count: int = 0  # fuzz seed-sweep size (0 = only the committed dirs)
    seed: int = 0
    size: str = "small"
    dirs: Sequence[str] = ()  # committed .mrs corpus directories
    workers: int = 0  # 0/1 = serial; >1 = process-pool fan-out
    chunk_size: int = 8
    engine: str = "bitset"  # dataflow substrate for the probe analyses
    oracles: Optional[Sequence[str]] = None  # None = the default battery
    inject: Optional[str] = None  # injected always-wrong oracle (self-test)
    max_snapshot_variables: int = 4
    out_dir: Optional[str] = None  # report + manifest + failure artifacts
    ledger_dir: Optional[str] = None  # bench-history ledger for the massrun row

    def oracle_names(self) -> List[str]:
        from repro.fuzz.campaign import CampaignConfig

        # Reuse the campaign's validation (unknown oracle/injection names
        # raise the same error text everywhere).
        return CampaignConfig(oracles=self.oracles, inject=self.inject).oracle_names()

    def to_json_dict(self) -> dict:
        return {
            "count": self.count,
            "seed": self.seed,
            "size": self.size,
            "dirs": [str(Path(d).name) for d in self.dirs],
            "workers": self.workers,
            "engine": self.engine,
            "oracles": self.oracle_names(),
            "max_snapshot_variables": self.max_snapshot_variables,
        }


# ---------------------------------------------------------------------------
# Per-program evaluation (runs inside worker processes)
# ---------------------------------------------------------------------------

_WORKER_ORACLES: Optional[List[str]] = None
_WORKER_SNAPSHOT_VARS: int = 4
_WORKER_ENGINE_NAME: str = "bitset"


def _init_eval_worker(
    oracle_names: List[str], snapshot_vars: int, engine: str = "bitset"
) -> None:
    global _WORKER_ORACLES, _WORKER_SNAPSHOT_VARS, _WORKER_ENGINE_NAME
    _WORKER_ORACLES = list(oracle_names)
    _WORKER_SNAPSHOT_VARS = snapshot_vars
    _WORKER_ENGINE_NAME = engine


def evaluate_program(
    task: dict, oracles: Sequence[str], snapshot_vars: int = 4, engine: str = "bitset"
) -> dict:
    """Run the battery (plus precision/snapshot probes) on one corpus member.

    Pure function of its inputs; returns a JSON-ready verdict record.  Any
    crash outside the battery (snapshot/precision probes) is folded into the
    record rather than raised, so one hostile program cannot sink a shard.
    """
    from repro.fuzz.oracles import run_battery

    started = time.perf_counter()
    verdicts = run_battery(
        task["source"],
        crate_name=task.get("crate_name", "fuzzed"),
        oracles=list(oracles),
        seed=int(task.get("seed", 0)),
    )
    ok = all(verdict.ok for verdict in verdicts)
    record = {
        "name": task["name"],
        "digest": task["digest"],
        "origin": task.get("origin", "fuzz"),
        "seed": int(task.get("seed", 0)),
        "loc": int(task.get("loc", 0)),
        "features": task.get("features") or {},
        "ok": ok,
        "verdicts": [verdict.to_json_dict() for verdict in verdicts],
        "snapshot_digest": None,
        "precision": None,
    }
    if ok:
        try:
            record["snapshot_digest"], record["precision"] = _verdict_probes(
                task["source"], task.get("crate_name", "fuzzed"), snapshot_vars,
                engine=engine,
            )
        except Exception as error:  # probe crash = failing program, not a crash
            record["ok"] = False
            record["verdicts"].append(
                {
                    "oracle": "snapshot",
                    "ok": False,
                    "detail": f"crash: {type(error).__name__}: {error}",
                }
            )
    record["seconds"] = time.perf_counter() - started
    return record


def _verdict_probes(
    source: str, crate_name: str, snapshot_vars: int, engine: str = "bitset"
) -> Tuple[str, dict]:
    """The per-program verdict token and precision sample.

    The snapshot digest commits to every analyze record and slice the
    workspace can answer (cache-independent, byte-stable); precision is the
    distribution of per-variable dependency-set sizes under Modular, run on
    the selected ``engine`` tier — all tiers must report identical sizes, so
    an ``--engine vector`` mass run is also an at-scale differential pass.
    """
    import dataclasses as _dataclasses

    from repro.core.config import MODULAR
    from repro.service.session import AnalysisSession

    session = AnalysisSession(local_crate=crate_name)
    session.open_unit("eval", source)
    digest = session.snapshot_digest(max_variables_per_function=snapshot_vars)
    sizes: List[int] = []
    analyze = session.analyze(config=_dataclasses.replace(MODULAR, engine=engine))
    for fn_record in analyze["functions"].values():
        sizes.extend(fn_record["dependency_sizes"].values())
    precision = {
        "variables": len(sizes),
        "total_deps": sum(sizes),
        "mean_deps": round(sum(sizes) / len(sizes), 4) if sizes else 0.0,
        "max_deps": max(sizes) if sizes else 0,
    }
    return digest, precision


def _eval_shard(tasks: List[dict]) -> List[dict]:
    """Module-level shard worker (picklable) for :func:`map_shards`."""
    assert _WORKER_ORACLES is not None
    return [
        evaluate_program(
            task, _WORKER_ORACLES, _WORKER_SNAPSHOT_VARS, engine=_WORKER_ENGINE_NAME
        )
        for task in tasks
    ]


def _task_of(program: CorpusProgram) -> dict:
    return {
        "name": program.name,
        "source": program.source,
        "digest": program.digest,
        "origin": program.origin,
        "crate_name": program.crate_name,
        "seed": program.seed,
        "loc": program.loc(),
        "features": program.features,
    }


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _aggregate_oracles(results: Sequence[dict]) -> Dict[str, dict]:
    counts: Dict[str, Dict[str, int]] = {}
    for result in results:
        for verdict in result["verdicts"]:
            bucket = counts.setdefault(verdict["oracle"], {"pass": 0, "fail": 0})
            bucket["pass" if verdict["ok"] else "fail"] += 1
    out: Dict[str, dict] = {}
    for oracle, bucket in sorted(counts.items()):
        total = bucket["pass"] + bucket["fail"]
        out[oracle] = {
            "pass": bucket["pass"],
            "fail": bucket["fail"],
            "rate": round(bucket["pass"] / total, 6) if total else None,
        }
    return out


def _aggregate_features(results: Sequence[dict]) -> Tuple[Dict[str, dict], List[str]]:
    """Per-feature buckets over every feature the generator can emit.

    Every known feature appears (a bucket with zeroes is visible, not
    silently dropped); features seen in ingested histograms but unknown to
    the generator are kept too, so foreign corpora still aggregate.
    """
    buckets: Dict[str, Dict[str, int]] = {
        feature: {"programs": 0, "occurrences": 0, "failed_programs": 0}
        for feature in GENERATOR_FEATURES
    }
    with_features = 0
    for result in results:
        features = result.get("features") or {}
        if features:
            with_features += 1
        for feature, occurrences in features.items():
            bucket = buckets.setdefault(
                feature, {"programs": 0, "occurrences": 0, "failed_programs": 0}
            )
            bucket["programs"] += 1
            bucket["occurrences"] += int(occurrences)
            if not result["ok"]:
                bucket["failed_programs"] += 1
    out = {
        feature: dict(bucket, pass_rate=(
            round(1.0 - bucket["failed_programs"] / bucket["programs"], 6)
            if bucket["programs"]
            else None
        ))
        for feature, bucket in sorted(buckets.items())
    }
    missing = sorted(
        feature
        for feature in GENERATOR_FEATURES
        if with_features and out[feature]["programs"] == 0
    )
    return out, missing


def _distribution(values: Sequence[float], unit_scale: float = 1.0) -> Optional[dict]:
    if not values:
        return None
    scaled = [value * unit_scale for value in values]
    return {
        "min": round(min(scaled), 4),
        "p50": round(percentile(scaled, 0.50), 4),
        "p95": round(percentile(scaled, 0.95), 4),
        "p99": round(percentile(scaled, 0.99), 4),
        "max": round(max(scaled), 4),
        "mean": round(sum(scaled) / len(scaled), 4),
    }


@dataclass
class MassRunReport:
    """The aggregate outcome of one mass-evaluation run."""

    config: MassRunConfig
    corpus: Corpus
    results: List[dict] = field(default_factory=list)
    mode: str = "serial"
    fanout_error: Optional[str] = None
    fanout: Optional[dict] = None  # FanoutTelemetry.to_json_dict() when fanned out
    elapsed_seconds: float = 0.0
    report_path: Optional[str] = None
    manifest_path: Optional[str] = None
    ledger: Optional[dict] = None

    @property
    def failures(self) -> List[dict]:
        return [result for result in self.results if not result["ok"]]

    @property
    def pass_rate(self) -> Optional[float]:
        if not self.results:
            return None
        passed = sum(1 for result in self.results if result["ok"])
        return round(passed / len(self.results), 6)

    def passed(self) -> bool:
        return bool(self.results) and not self.failures

    def to_json_dict(self) -> dict:
        features, missing = _aggregate_features(self.results)
        per_program_seconds = [result["seconds"] for result in self.results]
        mean_deps = [
            result["precision"]["mean_deps"]
            for result in self.results
            if result.get("precision")
        ]
        max_deps = [
            float(result["precision"]["max_deps"])
            for result in self.results
            if result.get("precision")
        ]
        failures = [
            {
                "name": result["name"],
                "digest": result["digest"],
                "origin": result["origin"],
                "seed": result["seed"],
                "oracle": next(
                    (v["oracle"] for v in result["verdicts"] if not v["ok"]), None
                ),
                "detail": next(
                    (v["detail"] for v in result["verdicts"] if not v["ok"]), ""
                ),
                "artifact": result.get("artifact"),
            }
            for result in self.failures
        ]
        throughput = (
            round(len(self.results) / self.elapsed_seconds, 4)
            if self.elapsed_seconds > 0
            else None
        )
        return {
            "kind": REPORT_KIND,
            "version": REPORT_VERSION,
            "generator_version": GENERATOR_VERSION,
            "config": self.config.to_json_dict(),
            "corpus": {
                "programs": len(self.corpus),
                "duplicates": self.corpus.duplicates,
                "total_loc": self.corpus.total_loc(),
                "manifest_digest": self.corpus.manifest_digest(),
            },
            "pass_rate": self.pass_rate,
            "oracles": _aggregate_oracles(self.results),
            "features": features,
            "features_missing": missing,
            "precision": {
                "mean_deps": _distribution(mean_deps),
                "max_deps": _distribution(max_deps),
            },
            "failures": failures,
            "programs": [
                {
                    "name": result["name"],
                    "digest": result["digest"],
                    "ok": result["ok"],
                    "snapshot_digest": result["snapshot_digest"],
                }
                for result in self.results
            ],
            "timing": {
                "wall_seconds": round(self.elapsed_seconds, 3),
                "mode": self.mode,
                "workers": self.config.workers,
                "fanout_error": self.fanout_error,
                # Under the volatile `timing` key on purpose: per-worker
                # attribution varies run to run and must not reach goldens.
                "fanout": self.fanout,
                "per_program_ms": _distribution(per_program_seconds, 1000.0),
                "programs_per_second": throughput,
            },
            "out_dir": self.report_path and str(Path(self.report_path).parent),
            "ledger": self.ledger,
        }


def strip_volatile(report: dict) -> dict:
    """A copy of a report dict with run-to-run-varying keys removed.

    What remains is a pure function of (corpus bytes, run config): golden
    tests and documentation replays compare exactly this.
    """
    out = {key: value for key, value in report.items() if key not in VOLATILE_KEYS}
    out["failures"] = [
        {key: value for key, value in failure.items() if key != "artifact"}
        for failure in report.get("failures", [])
    ]
    return out


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


def run_mass_evaluation(
    config: MassRunConfig, corpus: Optional[Corpus] = None
) -> MassRunReport:
    """Ingest (or accept) a corpus, fan it through the battery, aggregate.

    Writes ``massrun_report.json``, the corpus manifest, and per-failure
    repro artifacts under ``config.out_dir`` (if given), and appends a
    ``massrun`` row to the bench-history ledger under ``config.ledger_dir``
    (if given).  Never raises on program failures — those are data; raises
    only on configuration errors (unknown oracles, missing corpus dirs,
    empty corpus).
    """
    oracle_names = config.oracle_names()
    # Fail fast on a bad engine name or a vector run without numpy — a
    # configuration error, not a per-program verdict.
    try:
        import dataclasses as _dataclasses

        from repro.core.config import MODULAR

        _dataclasses.replace(MODULAR, engine=config.engine)
        if config.engine == "vector":
            from repro.dataflow.vecbitset import require_numpy

            require_numpy("the vector mass-evaluation engine (--engine vector)")
    except (ValueError, RuntimeError) as error:
        raise ReproError(str(error))
    if corpus is None:
        with obs_span("massrun_ingest", count=config.count, dirs=len(config.dirs)):
            corpus = ingest_corpus(
                count=config.count,
                seed=config.seed,
                size=config.size,
                dirs=config.dirs,
            )
    if not corpus.programs:
        raise ReproError(
            "mass evaluation needs a non-empty corpus "
            "(pass --count N for a fuzz sweep and/or --dir DIR)"
        )

    report = MassRunReport(config=config, corpus=corpus)
    registry = obs_metrics.get_registry()
    started = time.perf_counter()
    telemetry = (
        obs_remote.FanoutTelemetry(max_workers=config.workers, registry=registry)
        if config.workers and config.workers > 1
        else None
    )
    with obs_span(
        "massrun", programs=len(corpus.programs), workers=config.workers
    ):
        mode, results, error = map_shards(
            _eval_shard,
            [_task_of(program) for program in corpus.programs],
            max_workers=config.workers,
            chunk_size=config.chunk_size,
            initializer=_init_eval_worker,
            initargs=(oracle_names, config.max_snapshot_variables, config.engine),
            telemetry=telemetry,
        )
    report.mode = mode
    report.fanout_error = error
    report.fanout = telemetry.to_json_dict() if telemetry is not None else None
    report.results = results
    report.elapsed_seconds = time.perf_counter() - started

    program_seconds = registry.histogram(
        "massrun_program_seconds", buckets=obs_metrics.DEFAULT_BUCKETS
    )
    for result in results:
        registry.counter(
            "massrun_programs_total", ok=str(result["ok"]).lower()
        ).inc()
        program_seconds.observe(result["seconds"])
    registry.histogram("stage_seconds", stage="massrun").observe(
        report.elapsed_seconds
    )

    if config.out_dir is not None:
        _write_outputs(report, config)
    if config.ledger_dir is not None:
        report.ledger = _record_ledger(report, config)
    return report


def _write_outputs(report: MassRunReport, config: MassRunConfig) -> None:
    """Report + manifest + failure artifacts, all under ``out_dir``."""
    from repro.fuzz.campaign import write_repro_artifact
    from repro.fuzz.generator import profile

    out_dir = Path(config.out_dir)
    report.manifest_path = str(report.corpus.write_manifest(out_dir))
    failure_root = safe_artifact_path(out_dir, FAILURE_DIR)
    generator_config = (
        profile(config.size).to_json_dict() if config.count > 0 else None
    )
    for result in report.results:
        if result["ok"]:
            continue
        failing = next((v for v in result["verdicts"] if not v["ok"]), None)
        result["artifact"] = write_repro_artifact(
            failure_root,
            seed=result["seed"],
            oracle=failing["oracle"] if failing else "unknown",
            detail=failing["detail"] if failing else "",
            source=next(
                program.source
                for program in report.corpus.programs
                if program.digest == result["digest"]
            ),
            size=config.size,
            crate_name=next(
                program.crate_name
                for program in report.corpus.programs
                if program.digest == result["digest"]
            ),
            generator_config=generator_config if result["origin"] == "fuzz" else None,
            name=f"massrun_repro_{result['name']}",
        )
    report_path = safe_artifact_path(out_dir, REPORT_NAME)
    report_path.write_text(
        json.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    report.report_path = str(report_path)


def _record_ledger(report: MassRunReport, config: MassRunConfig) -> dict:
    """One ``massrun`` row per metric into the bench-history ledger, so pass
    rate and throughput trend in ``repro bench report`` (the pass rate is a
    gated ratio metric; see :data:`repro.eval.bench.TRACKED`)."""
    from repro.eval.bench import record_run
    from repro.obs.history import HistoryLedger

    data = report.to_json_dict()
    timing = data["timing"]
    metrics = {
        "massrun.pass_rate": float(data["pass_rate"] or 0.0),
        "massrun.programs": float(len(report.results)),
    }
    if timing["programs_per_second"] is not None:
        metrics["massrun.programs_per_second"] = timing["programs_per_second"]
    per_program = timing["per_program_ms"]
    if per_program is not None:
        metrics["massrun.p50_ms"] = per_program["p50"]
        metrics["massrun.p95_ms"] = per_program["p95"]
    ledger = HistoryLedger(config.ledger_dir)
    run_id, appended = record_run(
        ledger,
        metrics,
        timestamp=time.time(),
        config={
            "suite": ["massrun"],
            "count": config.count,
            "size": config.size,
            "workers": config.workers,
            "engine": config.engine,
            "dirs": sorted(str(Path(d).name) for d in config.dirs),
        },
    )
    return {"run_id": run_id, "records": appended, "ledger": str(ledger.path)}


# ---------------------------------------------------------------------------
# Gate + rendering (`repro eval run --gate`, `repro eval report`)
# ---------------------------------------------------------------------------


def gate_problems(report_data: dict) -> List[str]:
    """Why this report should fail a CI gate (empty = clean).

    Any oracle failure gates; so does a feature the generator can emit that
    no program in a feature-annotated corpus exercised — a corpus that
    silently stopped covering part of the grammar is a coverage regression
    even at a 100% pass rate.
    """
    problems: List[str] = []
    for oracle, counts in report_data.get("oracles", {}).items():
        if counts.get("fail"):
            problems.append(f"oracle {oracle}: {counts['fail']} failing program(s)")
    missing = report_data.get("features_missing") or []
    if missing:
        problems.append(f"empty feature buckets: {', '.join(missing)}")
    if not report_data.get("programs"):
        problems.append("no programs were evaluated")
    return problems


def render_mass_report(data: dict) -> str:
    """The human-readable ``repro eval report`` rendering."""
    from repro.fuzz.campaign import render_oracle_counts

    corpus = data.get("corpus", {})
    timing = data.get("timing") or {}
    lines = [
        "mass evaluation: {} programs ({} duplicate(s) removed, {} LOC total)".format(
            corpus.get("programs", "?"),
            corpus.get("duplicates", 0),
            corpus.get("total_loc", "?"),
        ),
    ]
    if timing:
        lines.append(
            "  {} mode, {} worker(s), {}s wall, {} programs/s".format(
                timing.get("mode", "?"),
                timing.get("workers", "?"),
                timing.get("wall_seconds", "?"),
                timing.get("programs_per_second", "?"),
            )
        )
        fanout = timing.get("fanout")
        if fanout:
            from repro.obs.remote import render_fanout

            lines.extend("  " + line for line in render_fanout(fanout))
    rate = data.get("pass_rate")
    lines.append(
        f"  pass rate: {100 * rate:.2f}%" if rate is not None else "  pass rate: n/a"
    )
    lines.append("")
    lines.append("oracle battery:")
    lines.extend(
        render_oracle_counts(
            {
                oracle: {"pass": counts["pass"], "fail": counts["fail"]}
                for oracle, counts in data.get("oracles", {}).items()
            }
        )
    )
    features = data.get("features", {})
    if features:
        lines.append("")
        lines.append(
            f"{'feature':<20} {'programs':>9} {'occurrences':>12} {'pass rate':>10}"
        )
        for feature, bucket in sorted(
            features.items(), key=lambda kv: (-kv[1]["programs"], kv[0])
        ):
            rate = bucket.get("pass_rate")
            lines.append(
                "{:<20} {:>9} {:>12} {:>10}".format(
                    feature,
                    bucket["programs"],
                    bucket["occurrences"],
                    f"{100 * rate:.1f}%" if rate is not None else "-",
                )
            )
    missing = data.get("features_missing") or []
    if missing:
        lines.append("")
        lines.append(f"EMPTY feature buckets: {', '.join(missing)}")
    precision = data.get("precision") or {}
    mean_deps = precision.get("mean_deps")
    if mean_deps:
        lines.append("")
        lines.append(
            "precision (mean deps/variable): p50 {p50}  p95 {p95}  max {max}".format(
                **mean_deps
            )
        )
    per_program = timing.get("per_program_ms")
    if per_program:
        lines.append(
            "per-program wall (ms):          p50 {p50}  p95 {p95}  max {max}".format(
                **per_program
            )
        )
    failures = data.get("failures", [])
    if failures:
        lines.append("")
        lines.append("failures:")
        for failure in failures[:20]:
            lines.append(
                f"  {failure['name']} [{failure['oracle']}] {failure['detail']}"
            )
            if failure.get("artifact"):
                lines.append(f"    replay: repro fuzz repro {failure['artifact']}")
        if len(failures) > 20:
            lines.append(f"  ... and {len(failures) - 20} more")
    return "\n".join(lines)


def load_report(path) -> dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("kind") != REPORT_KIND:
        raise ReproError(
            f"{path} is not a mass-evaluation report (kind={data.get('kind')!r})"
        )
    return data
