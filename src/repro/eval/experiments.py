"""Experiment runner: dependency-set sizes per variable per condition.

This is the data-collection half of Section 5: for every crate in the corpus
and every analysis condition, run the information flow analysis on every
function of the crate and record, for every local variable, the size of its
dependency set at the function exit.  The resulting tables feed the
statistics (:mod:`repro.eval.stats`) and the report rendering
(:mod:`repro.eval.report`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import (
    AnalysisConfig,
    MODULAR,
    MUT_BLIND,
    REF_BLIND,
    WHOLE_PROGRAM,
    condition_name,
)
from repro.core.engine import FlowEngine
from repro.eval.corpus import GeneratedCrate, generate_corpus
from repro.eval.stats import VarKey, percent_differences, summarize_differences
from repro.lang.typeck import CheckedProgram, check_program
from repro.mir.lower import LoweredProgram, lower_program


@dataclass
class ConditionRun:
    """Results of running one analysis condition over the whole corpus."""

    condition: AnalysisConfig
    # (crate, function, variable) -> dependency set size at exit.
    sizes: Dict[VarKey, int] = field(default_factory=dict)
    # (crate, function) -> wall-clock analysis time in seconds.
    function_times: Dict[Tuple[str, str], float] = field(default_factory=dict)
    total_seconds: float = 0.0

    @property
    def name(self) -> str:
        return condition_name(self.condition)

    def median_function_time(self) -> float:
        times = sorted(self.function_times.values())
        if not times:
            return 0.0
        mid = len(times) // 2
        if len(times) % 2 == 1:
            return times[mid]
        return (times[mid - 1] + times[mid]) / 2.0

    def num_variables(self) -> int:
        return len(self.sizes)


@dataclass
class ExperimentData:
    """All condition runs over one corpus, plus boundary-crossing metadata."""

    corpus: List[GeneratedCrate]
    runs: Dict[str, ConditionRun] = field(default_factory=dict)
    # (crate, function, variable) -> whether the variable's flow involves a
    # call across a crate boundary (collected under the Whole-program run).
    hits_boundary: Dict[VarKey, bool] = field(default_factory=dict)

    def run(self, condition: AnalysisConfig) -> ConditionRun:
        return self.runs[condition_name(condition)]

    def sizes(self, condition: AnalysisConfig) -> Dict[VarKey, int]:
        return self.run(condition).sizes

    def condition_names(self) -> List[str]:
        return sorted(self.runs)

    def comparison(
        self, baseline: AnalysisConfig, other: AnalysisConfig
    ) -> Dict[VarKey, float]:
        """Percentage increases of ``other`` relative to ``baseline``."""
        return percent_differences(self.sizes(baseline), self.sizes(other))


def _prepare_crate(
    crate: GeneratedCrate,
) -> Tuple[CheckedProgram, LoweredProgram]:
    checked = check_program(crate.program)
    lowered = lower_program(checked)
    return checked, lowered


def run_conditions(
    corpus: Sequence[GeneratedCrate],
    conditions: Sequence[AnalysisConfig],
    collect_boundaries: bool = True,
) -> ExperimentData:
    """Analyse every crate of ``corpus`` under every condition.

    Type checking and lowering are shared across conditions (they do not
    depend on the analysis configuration), mirroring how the paper re-runs
    only the analysis under its 8 conditions.
    """
    data = ExperimentData(corpus=list(corpus))
    prepared = [(crate, *_prepare_crate(crate)) for crate in corpus]

    for condition in conditions:
        run = ConditionRun(condition=condition)
        start_total = time.perf_counter()
        for crate, checked, lowered in prepared:
            engine = FlowEngine(checked, lowered=lowered, config=condition)
            for fn_name in engine.local_function_names():
                start = time.perf_counter()
                result = engine.analyze_function(fn_name)
                elapsed = time.perf_counter() - start
                run.function_times[(crate.name, fn_name)] = elapsed
                for variable, size in result.dependency_sizes().items():
                    run.sizes[(crate.name, fn_name, variable)] = size
                if collect_boundaries and condition.whole_program:
                    boundary_locs = result.boundary_call_locations()
                    for local in result.body.locals:
                        label = (
                            "<return>"
                            if local.index == 0
                            else (local.name or f"_{local.index}")
                        )
                        key = (crate.name, fn_name, label)
                        from repro.mir.ir import Place

                        deps = result.exit_theta.read_conflicts(
                            Place.from_local(local.index)
                        )
                        data.hits_boundary[key] = bool(deps & boundary_locs)
        run.total_seconds = time.perf_counter() - start_total
        data.runs[run.name] = run
    return data


def primary_experiment_conditions() -> List[AnalysisConfig]:
    """The conditions needed for Figures 2–4 plus the interaction regression."""
    return [
        MODULAR,
        WHOLE_PROGRAM,
        MUT_BLIND,
        REF_BLIND,
        AnalysisConfig(mut_blind=True, ref_blind=True),
    ]


def run_full_experiment(
    scale: float = 1.0,
    conditions: Optional[Sequence[AnalysisConfig]] = None,
    corpus: Optional[Sequence[GeneratedCrate]] = None,
) -> ExperimentData:
    """Generate the corpus (or use the provided one) and run the conditions."""
    chosen_corpus = list(corpus) if corpus is not None else generate_corpus(scale=scale)
    chosen_conditions = (
        list(conditions) if conditions is not None else primary_experiment_conditions()
    )
    return run_conditions(chosen_corpus, chosen_conditions)


@dataclass
class BoundaryStudy:
    """The Section 5.4.2 study: how often flows cross crate boundaries and
    whether Modular-vs-Whole-program differences concentrate there."""

    total_variables: int
    boundary_variables: int
    nonzero_with_boundary: int
    nonzero_without_boundary: int

    @property
    def fraction_boundary(self) -> float:
        return self.boundary_variables / self.total_variables if self.total_variables else 0.0

    @property
    def nonzero_rate_with_boundary(self) -> float:
        return (
            self.nonzero_with_boundary / self.boundary_variables
            if self.boundary_variables
            else 0.0
        )

    @property
    def nonzero_rate_without_boundary(self) -> float:
        non_boundary = self.total_variables - self.boundary_variables
        return self.nonzero_without_boundary / non_boundary if non_boundary else 0.0

    def row(self) -> Dict[str, object]:
        return {
            "variables": self.total_variables,
            "hit_crate_boundary_pct": round(100.0 * self.fraction_boundary, 1),
            "nonzero_diff_rate_with_boundary_pct": round(
                100.0 * self.nonzero_rate_with_boundary, 2
            ),
            "nonzero_diff_rate_without_boundary_pct": round(
                100.0 * self.nonzero_rate_without_boundary, 2
            ),
        }


def crate_boundary_study(data: ExperimentData) -> BoundaryStudy:
    """Compute the Section 5.4.2 numbers from a completed experiment."""
    differences = data.comparison(WHOLE_PROGRAM, MODULAR)
    total = 0
    boundary = 0
    nonzero_with = 0
    nonzero_without = 0
    for key, diff in differences.items():
        total += 1
        hits = data.hits_boundary.get(key, False)
        if hits:
            boundary += 1
            if abs(diff) > 1e-9:
                nonzero_with += 1
        else:
            if abs(diff) > 1e-9:
                nonzero_without += 1
    return BoundaryStudy(
        total_variables=total,
        boundary_variables=boundary,
        nonzero_with_boundary=nonzero_with,
        nonzero_without_boundary=nonzero_without,
    )
