"""Evaluation harness: corpus, experiments, statistics, and report rendering.

Section 5 of the paper evaluates the precision of the modular analysis on 10
large Rust crates.  We cannot ship those crates (nor rustc), so this package
provides the substituted pipeline end to end:

* :mod:`repro.eval.corpus` — a deterministic generator of synthetic MiniRust
  "crates" whose code-style parameters mirror the qualitative findings of
  Section 5.3 (immutable-reference-heavy APIs, permission-threading helpers,
  partially-used inputs, disjoint ``&mut`` parameters, extern boundaries),
* :mod:`repro.eval.metrics` — Table 1 style dataset statistics,
* :mod:`repro.eval.experiments` — runs the analysis conditions over the
  corpus and produces per-variable dependency-set sizes,
* :mod:`repro.eval.stats` — percentage-difference distributions, medians,
  crate-level correlation and the interaction regression of Section 5.2,
* :mod:`repro.eval.report` — text renderings of every table and figure,
* :mod:`repro.eval.perf` — the performance comparison of Section 5.1,
* :mod:`repro.eval.massrun` — the mass-evaluation harness: batch-run
  program corpora (fuzz sweeps + committed ``.mrs`` directories, content-
  deduplicated) through the full oracle battery with aggregate gates.
"""

from repro.eval.corpus import (
    Corpus,
    CorpusProgram,
    CrateSpec,
    GeneratedCrate,
    PAPER_CRATE_SPECS,
    dedup_programs,
    generate_corpus,
    generate_crate,
    ingest_corpus,
    load_corpus_dir,
    program_digest,
    safe_artifact_path,
)
from repro.eval.massrun import (
    MassRunConfig,
    MassRunReport,
    gate_problems,
    run_mass_evaluation,
    strip_volatile,
)
from repro.eval.metrics import CrateMetrics, collect_metrics, dataset_table
from repro.eval.experiments import (
    ConditionRun,
    ExperimentData,
    run_conditions,
    run_full_experiment,
    crate_boundary_study,
)
from repro.eval.stats import (
    DiffSummary,
    percent_differences,
    summarize_differences,
    histogram,
    crate_correlation,
    interaction_regression,
)
from repro.eval.report import (
    render_table1,
    render_table2,
    render_figure2,
    render_figure3,
    render_figure4,
)

__all__ = [
    "ConditionRun",
    "Corpus",
    "CorpusProgram",
    "CrateMetrics",
    "CrateSpec",
    "DiffSummary",
    "ExperimentData",
    "GeneratedCrate",
    "MassRunConfig",
    "MassRunReport",
    "PAPER_CRATE_SPECS",
    "collect_metrics",
    "crate_boundary_study",
    "crate_correlation",
    "dataset_table",
    "dedup_programs",
    "gate_problems",
    "generate_corpus",
    "generate_crate",
    "ingest_corpus",
    "load_corpus_dir",
    "program_digest",
    "run_mass_evaluation",
    "safe_artifact_path",
    "strip_volatile",
    "histogram",
    "interaction_regression",
    "percent_differences",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_table1",
    "render_table2",
    "run_conditions",
    "run_full_experiment",
    "summarize_differences",
]
