"""Dataset statistics: the reproduction of Table 1.

Table 1 reports, per crate: lines of code, number of variables analysed,
number of functions, and the average number of MIR instructions per function.
We compute the same metrics over the generated corpus — LOC over the
generated source, and the MIR metrics over the lowered bodies of each crate's
local functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.eval.corpus import GeneratedCrate
from repro.lang.typeck import CheckedProgram, check_program
from repro.mir.lower import LoweredProgram, lower_program


@dataclass
class CrateMetrics:
    """Table 1 metrics for one crate."""

    name: str
    purpose: str
    loc: int
    num_variables: int
    num_functions: int
    avg_instrs_per_fn: float

    def row(self) -> Dict[str, object]:
        return {
            "crate": self.name,
            "purpose": self.purpose,
            "loc": self.loc,
            "vars": self.num_variables,
            "funcs": self.num_functions,
            "avg_instrs_per_fn": round(self.avg_instrs_per_fn, 1),
        }


@dataclass
class DatasetMetrics:
    """Metrics for the whole corpus, plus totals."""

    crates: List[CrateMetrics] = field(default_factory=list)

    def totals(self) -> Dict[str, object]:
        return {
            "crate": "Total",
            "purpose": "",
            "loc": sum(c.loc for c in self.crates),
            "vars": sum(c.num_variables for c in self.crates),
            "funcs": sum(c.num_functions for c in self.crates),
            "avg_instrs_per_fn": round(
                sum(c.avg_instrs_per_fn * c.num_functions for c in self.crates)
                / max(1, sum(c.num_functions for c in self.crates)),
                1,
            ),
        }

    def sorted_by_variables(self) -> List[CrateMetrics]:
        """Table 1 orders crates by increasing number of variables analysed."""
        return sorted(self.crates, key=lambda c: c.num_variables)


def metrics_for_crate(
    generated: GeneratedCrate,
    checked: Optional[CheckedProgram] = None,
    lowered: Optional[LoweredProgram] = None,
) -> CrateMetrics:
    """Compute Table 1 metrics for one generated crate."""
    checked = checked if checked is not None else check_program(generated.program)
    lowered = lowered if lowered is not None else lower_program(checked)
    bodies = lowered.bodies_in_crate(generated.name)
    num_functions = len(bodies)
    num_variables = sum(len(body.locals) for body in bodies)
    total_instrs = sum(body.num_instructions() for body in bodies)
    return CrateMetrics(
        name=generated.name,
        purpose=generated.spec.description,
        loc=generated.loc(),
        num_variables=num_variables,
        num_functions=num_functions,
        avg_instrs_per_fn=total_instrs / max(1, num_functions),
    )


def collect_metrics(corpus: Sequence[GeneratedCrate]) -> DatasetMetrics:
    """Compute the Table 1 metrics for the whole corpus."""
    return DatasetMetrics(crates=[metrics_for_crate(crate) for crate in corpus])


def dataset_table(corpus: Sequence[GeneratedCrate]) -> List[Dict[str, object]]:
    """Table 1 as a list of row dictionaries (ordered by #variables), with
    the total row appended — the structure the benchmark harness prints."""
    metrics = collect_metrics(corpus)
    rows = [crate.row() for crate in metrics.sorted_by_variables()]
    rows.append(metrics.totals())
    return rows
