"""The registered benchmark suite behind ``repro bench``.

This is the glue between the measurement functions that already exist in
:mod:`repro.eval.perf` / :mod:`repro.eval.load` and the persistent history
ledger in :mod:`repro.obs.history`.  It owns three things:

* **The suite registry** (:data:`BENCH_SUITE`): named benchmarks, each a
  function from a scale factor to a flat ``metric -> value`` dict.  Adding
  a benchmark means adding one entry here (plus its policies below) — the
  runner, ledger, report, and CI gate pick it up automatically.
* **The tracked-metric policies** (:data:`TRACKED`): direction, tolerance,
  baseline window, and whether the metric participates in the CI gate.
  Only *ratio* metrics (speedups) gate by default — they are
  machine-independent, so a laptop and a CI runner share one ledger
  without false alarms; absolute wall-time metrics are recorded and
  reported but never fail the build.  ``docs/BENCHMARKING.md`` is the
  policy's prose twin.
* **The report**: per-metric trajectories with a sparkline trend and a
  regression verdict from :func:`repro.obs.history.evaluate_metric`, plus
  the gate that turns ``regressed`` verdicts on gated metrics into a
  non-zero exit.
"""

from __future__ import annotations

import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.history import (
    BenchRecord,
    HistoryLedger,
    MetricPolicy,
    config_fingerprint,
    evaluate_metric,
    git_sha,
    sparkline,
)

# ---------------------------------------------------------------------------
# Suite registry
# ---------------------------------------------------------------------------

BenchFn = Callable[[float], Dict[str, float]]


def _bench_theta_join(scale: float) -> Dict[str, float]:
    from repro.dataflow.vecbitset import HAVE_NUMPY
    from repro.eval.perf import theta_join_microbenchmark

    joins = max(50, int(2000 * scale))
    bench = theta_join_microbenchmark(joins=joins)
    metrics = {
        "theta_join.speedup": bench.speedup,
        "theta_join.object_us_per_join": bench.object_seconds / bench.joins * 1e6,
        "theta_join.bitset_us_per_join": bench.bitset_seconds / bench.joins * 1e6,
    }
    if HAVE_NUMPY:
        # The vector tier is measured at multi-word scale (128 places ×
        # 128 locations = 2 words/row): the matrix shape it exists for.
        # The default-size pair above keeps the legacy trajectories stable.
        big = theta_join_microbenchmark(places=128, locations_per_place=64, joins=joins)
        metrics["theta_join.vector_speedup"] = big.vector_speedup
        metrics["theta_join.vector_us_per_join"] = (
            big.vector_seconds / big.joins * 1e6
        )
    return metrics


def _bench_fig2(scale: float) -> Dict[str, float]:
    from repro.dataflow.vecbitset import HAVE_NUMPY
    from repro.eval.perf import compare_engines, compare_fig2_vector

    engines = ("object", "bitset", "vector") if HAVE_NUMPY else ("object", "bitset")
    cmp = compare_engines(scale=scale, rounds=2, engines=engines)
    metrics = {
        "fig2.engine_speedup": cmp.speedup,
        "fig2.object_seconds": cmp.object_seconds,
        "fig2.bitset_seconds": cmp.bitset_seconds,
        "fig2.functions": float(cmp.functions),
    }
    if cmp.vector_seconds is not None:
        # Corpus-only ratio: informational (small bodies are not the vector
        # tier's target shape); the gated ratio below runs the SCC-wave
        # driver over the corpus + large fuzz bodies.
        metrics["fig2.corpus_vector_speedup"] = cmp.vector_speedup
        metrics["fig2.corpus_vector_seconds"] = cmp.vector_seconds
        wave = compare_fig2_vector(scale=scale, rounds=2)
        metrics["fig2.vector_speedup"] = wave.vector_speedup
        metrics["fig2.vector_seconds"] = wave.vector_seconds
        metrics["fig2.wave_workers"] = float(wave.workers)
    return metrics


def _bench_focus(scale: float) -> Dict[str, float]:
    from repro.eval.perf import measure_focus_latency
    from repro.eval.stats import latency_summary_ms

    latency = measure_focus_latency(scale=scale)
    cold = latency_summary_ms(latency.cold_seconds, fractions=(0.50, 0.95))
    warm = latency_summary_ms(latency.warm_seconds, fractions=(0.50, 0.95))
    return {
        "focus.warm_speedup": latency.speedup,
        "focus.cold_p50_ms": cold["p50"],
        "focus.cold_p95_ms": cold["p95"],
        "focus.warm_p50_ms": warm["p50"],
        "focus.warm_p95_ms": warm["p95"],
        "focus.queries": float(latency.queries),
    }


def _bench_load(scale: float) -> Dict[str, float]:
    from repro.eval.load import run_load_study

    report = run_load_study(scale=scale, client_counts=(1, 4))
    top = report.runs[-1]
    return {
        "load.throughput_rps": top.throughput_rps,
        "load.p50_ms": top.latency_ms(0.50),
        "load.p99_ms": top.latency_ms(0.99),
        "load.errors": float(sum(run.errors for run in report.runs)),
        "load.consistent": 1.0 if report.cross_run_consistent else 0.0,
    }


BENCH_SUITE: Dict[str, BenchFn] = {
    "theta_join": _bench_theta_join,
    "fig2": _bench_fig2,
    "focus": _bench_focus,
    "load": _bench_load,
}


# ---------------------------------------------------------------------------
# Tracked-metric policies
# ---------------------------------------------------------------------------

def _ratio(metric: str, tolerance: float = 0.30) -> MetricPolicy:
    return MetricPolicy(
        metric, direction="higher", tolerance=tolerance, window=5, gate=True, unit="x"
    )


def _latency(metric: str, tolerance: float = 0.75) -> MetricPolicy:
    return MetricPolicy(
        metric, direction="lower", tolerance=tolerance, window=5, gate=False, unit="ms"
    )


TRACKED: Dict[str, MetricPolicy] = {
    policy.metric: policy
    for policy in (
        _ratio("theta_join.speedup"),
        _ratio("theta_join.vector_speedup"),
        _ratio("fig2.engine_speedup"),
        _ratio("fig2.vector_speedup"),
        _ratio("focus.warm_speedup", tolerance=0.40),
        # Corpus-only vector ratio: visible trend, never gated — tiny bodies
        # sit below the vectorization crossover by design.
        MetricPolicy(
            "fig2.corpus_vector_speedup", direction="higher", tolerance=0.75,
            window=5, gate=False, unit="x",
        ),
        MetricPolicy(
            "load.throughput_rps", direction="higher", tolerance=0.75,
            window=5, gate=False, unit="req/s",
        ),
        MetricPolicy(
            "theta_join.object_us_per_join", direction="lower", tolerance=0.75, unit="us"
        ),
        MetricPolicy(
            "theta_join.bitset_us_per_join", direction="lower", tolerance=0.75, unit="us"
        ),
        MetricPolicy(
            "theta_join.vector_us_per_join", direction="lower", tolerance=0.75, unit="us"
        ),
        MetricPolicy("fig2.object_seconds", direction="lower", tolerance=0.75, unit="s"),
        MetricPolicy("fig2.bitset_seconds", direction="lower", tolerance=0.75, unit="s"),
        MetricPolicy("fig2.vector_seconds", direction="lower", tolerance=0.75, unit="s"),
        _latency("focus.cold_p50_ms"),
        _latency("focus.warm_p50_ms"),
        _latency("load.p50_ms"),
        _latency("load.p99_ms"),
        # Mass-evaluation harness (`repro eval run`): the pass rate is a
        # machine-independent ratio, so it gates — any drop below the
        # baseline (normally 1.0) is a real oracle regression, not noise.
        # Throughput and latency are hardware-bound: report-only.
        MetricPolicy(
            "massrun.pass_rate", direction="higher", tolerance=0.001,
            window=5, gate=True, unit="",
        ),
        MetricPolicy(
            "massrun.programs_per_second", direction="higher", tolerance=0.75,
            window=5, gate=False, unit="prog/s",
        ),
        _latency("massrun.p50_ms"),
        _latency("massrun.p95_ms"),
    )
}

# Metrics outside TRACKED still get recorded and reported with this policy:
# visible trend, generous tolerance, never gated.
DEFAULT_POLICY = MetricPolicy("*", direction="lower", tolerance=1.0, window=5, gate=False)


def policy_for(metric: str) -> MetricPolicy:
    found = TRACKED.get(metric)
    if found is not None:
        return found
    return MetricPolicy(
        metric,
        direction=DEFAULT_POLICY.direction,
        tolerance=DEFAULT_POLICY.tolerance,
        window=DEFAULT_POLICY.window,
        gate=False,
    )


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

def new_run_id() -> str:
    return uuid.uuid4().hex[:12]


def run_suite(
    scale: float = 0.15,
    only: Optional[List[str]] = None,
) -> Tuple[Dict[str, float], dict]:
    """Execute the (selected) suite; returns metrics plus the run config.

    Unknown ``--only`` names raise — a typo must not silently record an
    empty run into the ledger.
    """
    names = list(only) if only else sorted(BENCH_SUITE)
    unknown = [name for name in names if name not in BENCH_SUITE]
    if unknown:
        raise KeyError(
            f"unknown benchmark(s) {unknown}; registered: {sorted(BENCH_SUITE)}"
        )
    metrics: Dict[str, float] = {}
    for name in names:
        metrics.update(BENCH_SUITE[name](scale))
    config = {"suite": sorted(names), "scale": scale}
    return metrics, config


def record_run(
    ledger: HistoryLedger,
    metrics: Dict[str, float],
    timestamp: float,
    run_id: Optional[str] = None,
    sha: Optional[str] = None,
    config: Optional[dict] = None,
) -> Tuple[str, int]:
    """Append one run's metrics to the ledger; returns (run_id, records)."""
    rid = run_id or new_run_id()
    sha = sha or git_sha()
    fingerprint = config_fingerprint(config)
    records = [
        BenchRecord(
            run_id=rid,
            timestamp=timestamp,
            git_sha=sha,
            metric=metric,
            value=value,
            unit=policy_for(metric).unit,
            config=fingerprint,
        )
        for metric, value in sorted(metrics.items())
    ]
    ledger.append(records)
    return rid, len(records)


# ---------------------------------------------------------------------------
# Report + gate
# ---------------------------------------------------------------------------

def bench_report(ledger: HistoryLedger) -> dict:
    """Trajectories, sparklines, and verdicts for every metric in a ledger.

    Each metric is judged only against records sharing the config
    fingerprint of its *latest* record — a smoke-scale CI run never gets
    compared against a full-scale local run.
    """
    trajectories = ledger.trajectories()
    rows = []
    for metric, records in sorted(trajectories.items()):
        latest_config = records[-1].config
        comparable = [record for record in records if record.config == latest_config]
        verdict = evaluate_metric(comparable, policy_for(metric))
        values = [record.value for record in comparable]
        rows.append(
            dict(
                verdict,
                trend=sparkline(values),
                values=[round(v, 6) for v in values[-10:]],
                config=latest_config,
                runs=len(comparable),
                tracked=metric in TRACKED,
            )
        )
    failures = [
        row["metric"]
        for row in rows
        if row["gate"] and row["verdict"] == "regressed"
    ]
    return {
        "metrics": rows,
        "gate": {"ok": not failures, "failures": failures},
    }


def render_bench_report(report: dict) -> str:
    """The human-readable ``repro bench report`` table."""
    lines = ["Benchmark history (ledger trajectories, baseline = median of last K):", ""]
    header = (
        f"  {'metric':34} {'runs':>4}  {'latest':>12}  {'baseline':>12}  "
        f"{'trend':24}  verdict"
    )
    lines.append(header)
    for row in report["metrics"]:
        latest = row["latest"]
        baseline = row["baseline"]
        unit = row.get("unit", "")
        gate_mark = "*" if row["gate"] else " "
        lines.append(
            "  {:34} {:>4}  {:>12}  {:>12}  {:24}  {}{}".format(
                row["metric"][:34],
                row["runs"],
                f"{latest:.4g}{unit}" if latest is not None else "-",
                f"{baseline:.4g}{unit}" if baseline is not None else "-",
                row["trend"][:24],
                row["verdict"],
                gate_mark,
            )
        )
    lines.append("")
    lines.append("  (* = gated metric: a 'regressed' verdict fails `repro bench report --gate`)")
    gate = report["gate"]
    if gate["ok"]:
        lines.append("  gate: ok")
    else:
        lines.append(f"  gate: FAILED — regressed: {', '.join(gate['failures'])}")
    return "\n".join(lines)
