"""Text rendering of the paper's tables and figures.

Each ``render_*`` function takes the data produced by
:mod:`repro.eval.experiments` / :mod:`repro.eval.metrics` and returns a plain
text block printing the same rows or series as the paper's artefact, so the
benchmark harness (and EXPERIMENTS.md) can show paper-vs-measured
side by side.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import MODULAR, MUT_BLIND, REF_BLIND, WHOLE_PROGRAM
from repro.eval.corpus import GeneratedCrate
from repro.eval.experiments import ExperimentData, crate_boundary_study
from repro.eval.metrics import dataset_table
from repro.eval.stats import (
    crate_correlation,
    histogram,
    per_crate_nonzero_counts,
    per_crate_variable_counts,
    summarize_differences,
)


def _format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _bar(count: int, max_count: int, width: int = 40) -> str:
    if max_count <= 0:
        return ""
    filled = int(round(width * count / max_count))
    return "#" * filled


# ---------------------------------------------------------------------------
# Table 1 and Table 2
# ---------------------------------------------------------------------------


def render_table1(corpus: Sequence[GeneratedCrate]) -> str:
    """Table 1: dataset statistics (LOC, #vars, #funcs, avg instrs/func)."""
    rows = dataset_table(corpus)
    header = (
        "Table 1 (reproduced): dataset of crates used to evaluate information "
        "flow precision, ordered by number of variables analysed.\n"
    )
    return header + _format_table(rows)


def render_table2(corpus: Sequence[GeneratedCrate]) -> str:
    """Table 2: per-crate build/generation configuration."""
    rows = []
    for crate in corpus:
        spec = crate.spec
        rows.append(
            {
                "project": spec.name,
                "seed": spec.seed,
                "functions": spec.total_functions(),
                "features": spec.features,
                "paper_commit": (spec.commit[:12] + "...") if spec.commit else "",
            }
        )
    header = (
        "Table 2 (reproduced): generation configuration per crate "
        "(the substituted analogue of the paper's build configuration).\n"
    )
    return header + _format_table(rows)


# ---------------------------------------------------------------------------
# Figures 2-4
# ---------------------------------------------------------------------------


def render_figure2(data: ExperimentData, num_bins: int = 14) -> str:
    """Figure 2: distribution of Whole-program vs Modular differences."""
    differences = data.comparison(WHOLE_PROGRAM, MODULAR)
    summary = summarize_differences(differences, label="Modular vs Whole-program")
    bins = histogram(differences, num_bins=num_bins)
    max_count = max((count for _label, count in bins), default=0)

    lines = [
        "Figure 2 (reproduced): distribution of % difference in dependency set "
        "size between Whole-program and Modular analyses.",
        "",
        f"  variables analysed: {summary.total}",
        f"  identical dependency sets: {summary.num_zero} "
        f"({100.0 * summary.fraction_zero:.1f}%)   [paper: 94%]",
        f"  median non-zero increase: {summary.median_nonzero_percent:.1f}% "
        f"  [paper: 7%]",
        "",
        "  % difference (log-scale bins)      count",
    ]
    for label, count in bins:
        lines.append(f"  {label:>22}  {count:>8}  {_bar(count, max_count)}")
    return "\n".join(lines)


def render_figure3(data: ExperimentData, num_bins: int = 14) -> str:
    """Figure 3: non-zero difference distributions for the three comparisons."""
    comparisons = [
        ("Modular - Whole-program", WHOLE_PROGRAM, MODULAR, "6% non-zero, median 7%"),
        ("Mut-blind - Modular", MODULAR, MUT_BLIND, "39% non-zero, median 50%"),
        ("Ref-blind - Modular", MODULAR, REF_BLIND, "17% non-zero, median 56%"),
    ]
    lines = [
        "Figure 3 (reproduced): distribution of non-zero % increases in "
        "dependency set size for each condition vs its baseline.",
        "",
    ]
    for label, baseline, other, paper in comparisons:
        differences = data.comparison(baseline, other)
        summary = summarize_differences(differences, label=label)
        bins = [
            (bin_label, count)
            for bin_label, count in histogram(differences, num_bins=num_bins, include_zero_bin=False)
        ]
        max_count = max((count for _b, count in bins), default=0)
        lines.append(f"  {label}  [paper: {paper}]")
        lines.append(
            f"    non-zero: {summary.num_nonzero}/{summary.total} "
            f"({100.0 * summary.fraction_nonzero:.1f}%), "
            f"median {summary.median_nonzero_percent:.1f}%, "
            f"mean {summary.mean_nonzero_percent:.1f}%"
        )
        for bin_label, count in bins:
            lines.append(f"      {bin_label:>22}  {count:>7}  {_bar(count, max_count, 30)}")
        lines.append("")
    return "\n".join(lines)


def render_figure4(data: ExperimentData) -> str:
    """Figure 4: per-crate breakdown of Mut-blind vs Modular differences."""
    differences = data.comparison(MODULAR, MUT_BLIND)
    nonzero = per_crate_nonzero_counts(differences)
    totals = per_crate_variable_counts(differences.keys())
    r_squared = crate_correlation(differences)
    rows = []
    for crate in sorted(totals, key=lambda c: totals[c]):
        rows.append(
            {
                "crate": crate,
                "variables": totals[crate],
                "nonzero_diffs": nonzero.get(crate, 0),
                "nonzero_pct": round(100.0 * nonzero.get(crate, 0) / max(totals[crate], 1), 1),
            }
        )
    header = (
        "Figure 4 (reproduced): per-crate counts of non-zero differences "
        "between Modular and Mut-blind.\n"
        f"Correlation (R^2) between #variables and #non-zero differences: "
        f"{r_squared:.2f}   [paper: 0.79]\n"
    )
    return header + _format_table(rows)


def render_boundary_study(data: ExperimentData) -> str:
    """Section 5.4.2: crate-boundary crossing and its effect on precision."""
    study = crate_boundary_study(data)
    lines = [
        "Section 5.4.2 (reproduced): crate-boundary study.",
        f"  variables whose flow reaches a crate boundary: "
        f"{100.0 * study.fraction_boundary:.1f}%   [paper: 96%]",
        f"  non-zero Modular-vs-Whole-program rate (boundary hit): "
        f"{100.0 * study.nonzero_rate_with_boundary:.2f}%   [paper: 6.6%]",
        f"  non-zero Modular-vs-Whole-program rate (no boundary): "
        f"{100.0 * study.nonzero_rate_without_boundary:.2f}%   [paper: 0.6%]",
    ]
    return "\n".join(lines)


def render_summary_table(data: ExperimentData) -> str:
    """A compact comparison table covering all headline numbers (Section 5.2)."""
    rows = []
    for label, baseline, other, paper_nonzero, paper_median in [
        ("Whole-program -> Modular", WHOLE_PROGRAM, MODULAR, 6.0, 7.0),
        ("Modular -> Mut-blind", MODULAR, MUT_BLIND, 39.0, 50.0),
        ("Modular -> Ref-blind", MODULAR, REF_BLIND, 17.0, 56.0),
    ]:
        summary = summarize_differences(data.comparison(baseline, other), label=label)
        row = summary.row()
        row["paper_nonzero_pct"] = paper_nonzero
        row["paper_median_pct"] = paper_median
        rows.append(row)
    return "Section 5.2 headline comparison (measured vs paper):\n" + _format_table(rows)
